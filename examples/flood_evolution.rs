//! Watch the disaster substrate evolve: storm intensity, flood coverage,
//! road-network fragmentation and factor vectors hour by hour — the
//! "external support" (weather service + satellite imaging) MobiRescue
//! consumes.
//!
//! ```text
//! cargo run --release --example flood_evolution
//! ```

use mobirescue::disaster::hurricane::Hurricane;
use mobirescue::disaster::scenario::DisasterScenario;
use mobirescue::roadnet::connectivity::largest_component_size;
use mobirescue::roadnet::generator::CityConfig;

fn main() {
    let city = CityConfig::small().build(42);
    let scenario = DisasterScenario::new(&city, Hurricane::florence(), 42);
    let tl = scenario.hurricane().timeline;
    let total_landmarks = city.network.num_landmarks();
    let total_segments = city.network.num_segments();

    println!(
        "{} over a {}-landmark city; disaster days {}..{}",
        scenario.hurricane().name,
        total_landmarks,
        tl.disaster_start_day,
        tl.disaster_end_day
    );
    println!(
        "\n{:>8} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "day", "intensity", "precip mm/h", "flooded %", "operable %", "largest SCC %"
    );
    for day in (tl.disaster_start_day.saturating_sub(2)..tl.total_days).step_by(1) {
        let hour = day * 24 + 12;
        if hour >= scenario.total_hours() {
            break;
        }
        let intensity = tl.intensity(hour);
        let factors = scenario.factors_at(city.center, hour);
        let flooded = scenario.flood().flooded_fraction(hour);
        let condition = scenario.network_condition(&city.network, hour);
        let operable = condition.operable_count() as f64 / total_segments as f64;
        let scc = largest_component_size(&city.network, &condition) as f64 / total_landmarks as f64;
        println!(
            "{:>8} {:>10.2} {:>12.2} {:>11.1}% {:>11.1}% {:>13.1}%",
            scenario.hurricane().day_label(day),
            intensity,
            factors.precipitation_mm_h,
            flooded * 100.0,
            operable * 100.0,
            scc * 100.0
        );
        // Stop once the city has fully recovered.
        if day > tl.disaster_end_day + 3 && flooded == 0.0 {
            println!("(fully recovered)");
            break;
        }
    }

    // The factor vector MobiRescue's SVM reads, at three contrasting spots.
    let peak = tl.peak_hour();
    println!("\nfactor vectors h = (precipitation, wind, altitude) at the rain peak:");
    for (name, pos) in [
        ("downtown basin", city.center),
        ("north-east edge", city.center.offset_m(3_500.0, 3_500.0)),
        ("south-west edge", city.center.offset_m(-3_500.0, -3_500.0)),
    ] {
        let f = scenario.factors_at(pos, peak);
        println!(
            "  {name:<16} ({:>5.1} mm/h, {:>4.1} mph, {:>5.1} m)  flooded: {}",
            f.precipitation_mm_h,
            f.wind_mph,
            f.altitude_m,
            scenario.is_flooded(pos, peak)
        );
    }
}
