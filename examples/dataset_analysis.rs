//! The paper's Section-III dataset analysis, end to end: data cleaning,
//! trip inference, vehicle flow rates, hospital-delivery detection and
//! rescued labelling — then the observations the system design rests on.
//!
//! ```text
//! cargo run --release --example dataset_analysis
//! ```

use mobirescue::core::analysis::DatasetAnalysis;
use mobirescue::core::scenario::ScenarioConfig;

fn main() {
    let scenario = ScenarioConfig::small().florence().build(81);
    println!(
        "analyzing {} GPS pings of {} people over {} days ...",
        scenario.generated.dataset.pings.len(),
        scenario.generated.dataset.num_people(),
        scenario.disaster.total_hours() / 24
    );
    let analysis = DatasetAnalysis::run(&scenario);

    println!("\n-- pipeline --");
    println!(
        "cleaning: kept {}, dropped {} out-of-bounds, {} redundant",
        analysis.cleaning.kept, analysis.cleaning.out_of_bounds, analysis.cleaning.redundant
    );
    println!("inferred {} vehicle trips", analysis.num_trips);
    println!(
        "detected {} hospital deliveries, {} of them flood rescues",
        analysis.deliveries_per_day.iter().sum::<usize>(),
        analysis.rescues.len()
    );

    println!("\n-- Observation 1: impact differs per region --");
    for f in &analysis.region_factors {
        println!(
            "  {}: precipitation {:.1} mm/h, wind {:.0} mph, altitude {:.0} m",
            f.region, f.precipitation_mm_h, f.wind_mph, f.altitude_m
        );
    }
    match analysis.table1(&scenario) {
        Some(t) => println!(
            "  flow correlations: precipitation {:+.3}, wind {:+.3}, altitude {:+.3} \
             (paper: -0.897 / -0.781 / +0.739)",
            t.precipitation, t.wind, t.altitude
        ),
        None => println!("  correlations undefined"),
    }

    println!("\n-- Observation 2: movement collapses, deliveries spike --");
    let tl = scenario.hurricane().timeline;
    for day in tl.disaster_start_day.saturating_sub(3)..(tl.disaster_end_day + 4) {
        let flow: f64 = scenario
            .city
            .regions
            .region_ids()
            .map(|r| {
                analysis
                    .flow
                    .region_daily_avg(&scenario.city.regions, r, day)
            })
            .sum::<f64>()
            / scenario.city.regions.num_regions() as f64;
        println!(
            "  {} ({}): avg flow {:.2} veh/h, {} hospital deliveries",
            scenario.hurricane().day_label(day),
            tl.phase_of_day(day),
            flow,
            analysis.deliveries_per_day[day as usize]
        );
    }

    println!("\n-- Figure 4: rescued people per region --");
    for r in scenario.city.regions.region_ids() {
        let marker = if r == scenario.city.downtown_region() {
            " (downtown)"
        } else {
            ""
        };
        println!(
            "  {}: {}{}",
            r,
            analysis.rescued_per_region[r.index()],
            marker
        );
    }
}
