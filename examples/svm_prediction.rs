//! Train and inspect the SVM rescue-request predictor (Section IV-B),
//! including the Section IV-C5 extension to a different factor set.
//!
//! ```text
//! cargo run --release --example svm_prediction
//! ```

use mobirescue::core::predictor::{
    evaluate_per_segment, mine_rescues, people_positions_at, PredictorConfig, RequestPredictor,
};
use mobirescue::core::scenario::ScenarioConfig;
use mobirescue::disaster::factors::{EarthquakeFactors, FactorSet, HurricaneFactors};
use mobirescue::mobility::map_match::MapMatcher;

fn main() {
    // `cargo run --example svm_prediction -- medium [seed]` for a larger run.
    let args: Vec<String> = std::env::args().collect();
    let medium = args.iter().any(|a| a == "medium");
    let seed: u64 = args
        .iter()
        .filter_map(|a| a.parse().ok())
        .next_back()
        .unwrap_or(11);
    let base = if medium {
        ScenarioConfig::medium()
    } else {
        ScenarioConfig::small()
    };
    let michael = base.clone().michael().build(seed);
    let florence = base.florence().build(seed);

    // Train on Michael's mined ground truth.
    let predictor = RequestPredictor::train_on(&michael, &PredictorConfig::default());
    println!(
        "trained on {}: {} examples, decision threshold {:.3}",
        predictor.trained_on(),
        predictor.num_training_examples(),
        predictor.threshold()
    );

    // Per-person predictions on Florence's busiest day.
    let matcher = MapMatcher::new(&florence.city.network);
    let rescues = mine_rescues(&florence);
    let day = mobirescue::core::training::busiest_request_day(&rescues).expect("rescues");
    let eval = evaluate_per_segment(&florence, &matcher, &rescues, day, |pos, hour| {
        predictor.predict(&florence.disaster.factors_at(pos, hour))
    });
    println!(
        "\ncross-storm evaluation on {} (day {day}):",
        florence.hurricane().name
    );
    println!(
        "  overall: TP {} FP {} TN {} FN {}",
        eval.overall.tp, eval.overall.fp, eval.overall.tn, eval.overall.fn_
    );
    println!(
        "  per-segment mean accuracy {:.3}, precision {:.3} over {} informative segments",
        eval.mean_accuracy(),
        eval.mean_precision(),
        eval.accuracies().len()
    );

    // Predicted request distribution (Equation 2), scanning the disaster
    // window for the hour the Michael-trained model flags the most demand
    // (Florence's own peak exceeds anything Michael showed the RBF, so the
    // strongest predictions land on the storm's rising edge).
    let tl = florence.hurricane().timeline;
    let peak = tl.peak_hour();
    let (hour, distribution) = ((tl.disaster_start_day * 24)..(tl.disaster_end_day + 1) * 24)
        .step_by(3)
        .map(|h| (h, predictor.predict_distribution(&florence, &matcher, h)))
        .max_by(|a, b| {
            let ta: f64 = a.1.iter().sum();
            let tb: f64 = b.1.iter().sum();
            ta.partial_cmp(&tb).expect("counts are never NaN")
        })
        .expect("disaster window is non-empty");
    let total: f64 = distribution.iter().sum();
    let hot = distribution
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("counts are never NaN"))
        .map(|(i, &n)| (i, n))
        .expect("non-empty network");
    println!(
        "\npredicted distribution peaks at hour {hour} (rain peak {peak}): {total} potential \
         requests, hottest segment E{} with {}",
        hot.0, hot.1
    );
    let positions = people_positions_at(&florence, hour);
    println!("  (from the live positions of {} people)", positions.len());

    // Section IV-C5: the factor set is pluggable per disaster type.
    let hurricane_factors = HurricaneFactors;
    let quake_factors = EarthquakeFactors;
    let p = florence.city.center;
    println!(
        "\nfactor-set extension at the city center (hour {peak}):\n  {:?} = {:?}\n  {:?} = {:?}",
        hurricane_factors.names(),
        hurricane_factors.compute(&florence.disaster, p, peak),
        quake_factors.names(),
        quake_factors.compute(&florence.disaster, p, peak),
    );
}
