//! The Section-V dispatch comparison: MobiRescue vs the *Rescue* and
//! *Schedule* baselines on one simulated disaster day.
//!
//! ```text
//! cargo run --release --example dispatch_comparison [-- medium]
//! ```

use mobirescue::core::experiment::{run_comparison, ExperimentConfig};

fn main() {
    let medium = std::env::args().any(|a| a == "medium");
    let config = if medium {
        ExperimentConfig::medium(42)
    } else {
        ExperimentConfig::small(42)
    };
    println!("running comparison (this trains the predictor and the RL policy) ...");
    let cmp = run_comparison(&config);
    println!(
        "experiment day: {} with {} rescue requests, {} teams\n",
        cmp.florence.hurricane().day_label(cmp.experiment_day),
        cmp.num_requests,
        config.sim.num_teams
    );

    println!(
        "{:<12} {:>7} {:>7} {:>12} {:>12} {:>9}",
        "method", "served", "timely", "median delay", "median T13", "avg teams"
    );
    for m in &cmp.results {
        let delay = m.outcome.driving_delay_cdf();
        let timeliness = m.outcome.timeliness_cdf();
        let serving = m.outcome.avg_serving_teams_per_hour();
        println!(
            "{:<12} {:>7} {:>7} {:>11.0}s {:>11.0}s {:>9.1}",
            m.name,
            m.outcome.total_served(),
            m.outcome.total_timely_served(),
            if delay.is_empty() {
                f64::NAN
            } else {
                delay.quantile(0.5)
            },
            if timeliness.is_empty() {
                f64::NAN
            } else {
                timeliness.quantile(0.5)
            },
            serving.iter().sum::<f64>() / serving.len().max(1) as f64,
        );
    }

    println!(
        "\nprediction (per-segment means): MobiRescue accuracy {:.3} precision {:.3}; \
         Rescue accuracy {:.3} precision {:.3}",
        cmp.prediction_mr.mean_accuracy(),
        cmp.prediction_mr.mean_precision(),
        cmp.prediction_rescue.mean_accuracy(),
        cmp.prediction_rescue.mean_precision()
    );
    println!(
        "offline training: {} episodes on Hurricane Michael, reward {:.1} → {:.1}",
        cmp.training.episodes.len(),
        cmp.training
            .episodes
            .first()
            .map(|e| e.reward)
            .unwrap_or(0.0),
        cmp.training
            .episodes
            .last()
            .map(|e| e.reward)
            .unwrap_or(0.0),
    );
}
