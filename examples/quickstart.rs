//! Quickstart: build a small disaster scenario, train MobiRescue, and
//! dispatch rescue teams for one simulated day.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mobirescue::core::predictor::{mine_rescues, PredictorConfig, RequestPredictor};
use mobirescue::core::rl_dispatch::{MobiRescueDispatcher, RlDispatchConfig};
use mobirescue::core::scenario::ScenarioConfig;
use mobirescue::core::training::{busiest_request_day, requests_on_day, train_offline};
use mobirescue::mobility::map_match::MapMatcher;
use mobirescue::sim::types::SimConfig;

fn main() {
    let seed = 42;

    // 1. Build the training disaster (Hurricane Michael) and the
    //    evaluation disaster (Hurricane Florence) over the same city.
    println!("building scenarios ...");
    let michael = ScenarioConfig::small().michael().build(seed);
    let florence = ScenarioConfig::small().florence().build(seed);
    println!(
        "  city: {} landmarks, {} segments, {} hospitals",
        florence.city.network.num_landmarks(),
        florence.city.network.num_segments(),
        florence.city.hospitals.len()
    );
    println!(
        "  population: {} people, {} GPS pings",
        florence.generated.dataset.num_people(),
        florence.generated.dataset.pings.len()
    );

    // 2. Train the SVM rescue-request predictor on Michael's mined ground
    //    truth (Section IV-B).
    let predictor = RequestPredictor::train_on(&michael, &PredictorConfig::default());
    println!(
        "trained SVM on {} ({} examples)",
        predictor.trained_on(),
        predictor.num_training_examples()
    );

    // 3. Train the RL dispatch policy offline on Michael (Section IV-C4).
    let mut sim = SimConfig::paper(0);
    sim.num_teams = 8;
    let (policy, report) = train_offline(
        &michael,
        Some(predictor.clone()),
        RlDispatchConfig::default(),
        &sim,
        4,
    );
    for e in &report.episodes {
        println!(
            "  episode day {}: {}/{} served, reward {:.1}",
            e.day, e.served, e.requests, e.reward
        );
    }

    // 4. Evaluate on Florence's busiest request day.
    let matcher = MapMatcher::new(&florence.city.network);
    let rescues = mine_rescues(&florence);
    let day = busiest_request_day(&rescues).expect("florence has rescues");
    let requests = requests_on_day(&florence, &matcher, &rescues, day);
    println!(
        "evaluating on {} ({} requests) ...",
        florence.hurricane().day_label(day),
        requests.len()
    );
    let mut dispatcher = MobiRescueDispatcher::with_policy(
        &florence,
        Some(predictor),
        RlDispatchConfig::default(),
        policy,
    );
    sim.start_hour = day * 24;
    let outcome = mobirescue::sim::run(
        &florence.city,
        &florence.conditions,
        &requests,
        &mut dispatcher,
        &sim,
    );

    println!(
        "served {}/{} requests ({} timely within 30 min)",
        outcome.total_served(),
        requests.len(),
        outcome.total_timely_served()
    );
    let cdf = outcome.timeliness_cdf();
    if !cdf.is_empty() {
        println!(
            "median rescue timeliness: {:.1} min",
            cdf.quantile(0.5) / 60.0
        );
    }
}
