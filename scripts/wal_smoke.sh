#!/usr/bin/env bash
# WAL crash smoke: kill -9 a journaled `serve --listen` in the middle of
# a load run, restart it from the same --wal-dir, and prove that nothing
# the server ACKed was lost.
#
# The proof is a ledger diff: `loadgen --acked-ids` records the id of
# every request the server promised durable (an Ack is only sent after
# the journal append is fsynced under `--fsync always`). After the
# kill -9 and restart, the recovered service prints its durable intake
# (`recovered: epochs E accepted A journal_seq S`); every ledger entry
# must be covered by that count — acked-but-lost means a broken WAL.
#
#   scripts/wal_smoke.sh
#
# Exits non-zero if the server fails to recover, nothing was acked
# before the kill (the smoke proved nothing), or the durable count
# after recovery does not cover the ledger.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p mobirescue-net --bin serve -p mobirescue-bench --bin loadgen"
cargo build --release -q -p mobirescue-net --bin serve -p mobirescue-bench --bin loadgen

wal_dir="$(mktemp -d)"
serve_log="$(mktemp)"
restart_log="$(mktemp)"
ledger="$(mktemp)"
loadgen_log="$(mktemp)"
serve_pid=""
trap 'kill -9 "$serve_pid" 2>/dev/null || true; rm -rf "$wal_dir"; rm -f "$serve_log" "$restart_log" "$ledger" "$loadgen_log"' EXIT

echo "==> serve --listen 127.0.0.1:0 --wal-dir ... --fsync always"
./target/release/serve --listen 127.0.0.1:0 --wal-dir "$wal_dir" --fsync always \
    --epochs 500 --period-ms 50 --quiet > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$serve_log")"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "FAIL: serve never printed its listen address" >&2
    cat "$serve_log" >&2
    exit 1
fi

echo "==> loadgen --addr $addr --acked-ids (open loop, 6s)"
./target/release/loadgen --addr "$addr" --rate 150 --duration-ms 6000 \
    --acked-ids "$ledger" --quiet > /dev/null 2> "$loadgen_log" &
loadgen_pid=$!

sleep 2.5
echo "==> kill -9 $serve_pid mid-load"
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

# The generator notices the dead socket, drains the ACKs it already got,
# and still writes the ledger; its non-zero exit is expected here.
wait "$loadgen_pid" || true

acked="$(wc -l < "$ledger")"
if [[ "$acked" -eq 0 ]]; then
    echo "FAIL: nothing was acked before the kill; the smoke proved nothing" >&2
    cat "$loadgen_log" >&2
    exit 1
fi
echo "ledger: $acked request(s) acked before the crash"

echo "==> restart serve from the same --wal-dir"
./target/release/serve --listen 127.0.0.1:0 --wal-dir "$wal_dir" --fsync always \
    --epochs 2 --period-ms 50 --quiet > "$restart_log" 2>&1 || {
    echo "FAIL: restarted serve exited non-zero" >&2
    cat "$restart_log" >&2
    exit 1
}
recovered="$(sed -n 's/^recovered: //p' "$restart_log")"
if [[ -z "$recovered" ]]; then
    echo "FAIL: restarted serve never printed its recovery line" >&2
    cat "$restart_log" >&2
    exit 1
fi
read -r _ epochs _ accepted _ journal_seq <<< "$recovered"
echo "recovered: $epochs epoch(s) from the snapshot, $accepted accepted durable, journal seq $journal_seq"

if [[ "$journal_seq" -eq 0 && "$accepted" -eq 0 ]]; then
    echo "FAIL: recovery restored nothing despite $acked acked request(s)" >&2
    exit 1
fi
if [[ "$accepted" -lt "$acked" ]]; then
    echo "FAIL: $acked request(s) were acked but only $accepted survived the kill -9" >&2
    exit 1
fi
echo "wal_smoke: OK — zero acked-but-lost across the kill -9 restart ($acked acked <= $accepted durable)"
