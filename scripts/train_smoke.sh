#!/usr/bin/env bash
# Train smoke: runs `serve --train` — the accelerated online-learning
# loop — and asserts the loop actually closed: at least one self-trained
# candidate was submitted to the guarded rollout pipeline, and the
# train.* metrics are live in the exported dump. The binary itself
# asserts transition conservation and that trainer state survives its
# mid-run snapshot/restore; this script is the CI proof those asserts
# ran.
#
#   scripts/train_smoke.sh [EPOCHS]     # default: 24 epochs

set -euo pipefail
cd "$(dirname "$0")/.."

EPOCHS="${1:-24}"

echo "==> cargo build --release -p mobirescue-net --bin serve"
cargo build --release -q -p mobirescue-net --bin serve

metrics="$(mktemp)"
out="$(mktemp)"
trap 'rm -f "$metrics" "$out"' EXIT

echo "==> serve --train --epochs $EPOCHS"
./target/release/serve --train --epochs "$EPOCHS" --metrics-out "$metrics" | tee "$out"

failures=0
if ! grep -q "serve train demo complete" "$out"; then
    echo "FAIL: the train run did not complete" >&2
    failures=$((failures + 1))
fi

metric() { # metric NAME -> value of `c NAME <v>` in the mrobs dump
    sed -n "s/^c $1 \([0-9]*\)$/\1/p" "$metrics" | head -n 1
}

submitted="$(metric train.candidates_submitted)"
steps="$(metric train.steps)"
offered="$(metric train.transitions_offered)"
echo "metrics: train.steps $steps, transitions offered $offered, candidates submitted $submitted"
if [[ -z "$submitted" || "$submitted" -eq 0 ]]; then
    echo "FAIL: no self-trained candidate reached the rollout gate" >&2
    failures=$((failures + 1))
fi
if [[ -z "$steps" || "$steps" -eq 0 ]]; then
    echo "FAIL: train.steps is zero — the trainer never learned" >&2
    failures=$((failures + 1))
fi
if [[ -z "$offered" || "$offered" -eq 0 ]]; then
    echo "FAIL: no transitions were ever tapped into the trainer" >&2
    failures=$((failures + 1))
fi

if [[ "$failures" -gt 0 ]]; then
    echo "train_smoke: $failures failure(s)" >&2
    exit 1
fi
echo "train_smoke: OK"
