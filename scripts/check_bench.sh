#!/usr/bin/env bash
# Bench-regression gate: re-runs the per-epoch routing benchmark and the
# TCP serving load test, comparing both against their committed
# baselines (BENCH_routing.json, BENCH_serve.json).
#
#   scripts/check_bench.sh              # gate against all baselines
#   MAX_SLOWDOWN_PCT=40 scripts/check_bench.sh   # loosen the timing gate
#   SERVE_GATE=0 scripts/check_bench.sh          # skip the serving gate
#   ROUTING_GATE=0 SERVE_GATE=0 scripts/check_bench.sh   # scale gate only
#
# The routing gate fails (non-zero exit) when either:
#   * the `checksum` differs from the baseline — the routing *results*
#     changed, which is never acceptable from a perf-only change; or
#   * `cached_single_thread` per-epoch time regressed more than
#     MAX_SLOWDOWN_PCT percent (default 25) against the baseline. The
#     single-thread figure is gated because it is the least
#     machine-dependent of the timings, and the gate takes the best of
#     BENCH_RUNS (default 3) full benchmark runs — the minimum is far
#     more stable against scheduler noise than any single run.
#
# The serving gate boots `serve --listen` on an ephemeral port, replays
# the mined request stream through `loadgen` at the baseline's nominal
# rate, and fails when either:
#   * the client-observed p99 request→ACK latency exceeds the SLO the
#     baseline itself declares in `p99_slo_ms` (override with
#     SERVE_P99_SLO_MS); or
#   * the client-observed p99.9 request→ACK latency exceeds the tail SLO
#     the baseline declares in `p999_slo_ms` (override with
#     SERVE_P999_SLO_MS) — the tail where fsync stalls hide; or
#   * the shed rate exceeds the baseline's `max_shed_pct` ceiling
#     (override with SERVE_MAX_SHED_PCT); or
#   * either process exits non-zero — a hung drain is a failure, not a
#     timeout to shrug at.
#
# The scale gate re-runs the metro-scale world benchmark (bench_scale)
# for the presets in SCALE_PRESETS (default "medium metro"; CI gates
# only `medium` to stay within the smoke budget) and fails when either:
#   * any preset's snapshot `checksum` differs from the baseline row —
#     engine behavior changed at scale; or
#   * any preset's `epoch_ms` regressed more than SCALE_MAX_SLOWDOWN_PCT
#     percent (default: MAX_SLOWDOWN_PCT) over the best of SCALE_RUNS
#     (default 2) runs.
# Disable with SCALE_GATE=0.
#
# To re-bless the baselines after an intentional change:
#
#   scripts/bench_routing.sh            # rewrites BENCH_routing.json
#   scripts/loadgen_smoke.sh --bless    # rewrites BENCH_serve.json
#   scripts/bench_scale.sh --bless      # rewrites BENCH_scale.json
#
# and commit the new baseline together with the change and a rationale
# (in particular, explain any checksum change — it means different
# routes or distances, not just different timings).

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="BENCH_routing.json"
MAX_SLOWDOWN_PCT="${MAX_SLOWDOWN_PCT:-25}"
BENCH_RUNS="${BENCH_RUNS:-3}"

fresh="$(mktemp)"
serve_log=""
fresh_serve=""
fresh_scale=""
trap 'rm -f "$fresh" "$serve_log" "$fresh_serve" "$fresh_scale"' EXIT

# Extract `"key": value` scalars from the flat JSON the benchmark emits.
field() { # field FILE KEY
    sed -n "s/^.*\"$2\": \([0-9.]*\).*$/\1/p" "$1" | head -n 1
}

failures=0

if [[ "${ROUTING_GATE:-1}" != "0" ]]; then
    if [[ ! -f "$BASELINE" ]]; then
        echo "check_bench: no baseline $BASELINE; run scripts/bench_routing.sh first" >&2
        exit 1
    fi

    echo "==> cargo build --release -p mobirescue-bench --bin bench_routing"
    cargo build --release -q -p mobirescue-bench --bin bench_routing

    new_checksum=""
    new_ms=""
    for run in $(seq 1 "$BENCH_RUNS"); do
        echo "==> running routing benchmark ($run/$BENCH_RUNS)"
        ./target/release/bench_routing > "$fresh"
        run_checksum="$(field "$fresh" checksum)"
        run_ms="$(field "$fresh" cached_single_thread)"
        if [[ -n "$new_checksum" && "$run_checksum" != "$new_checksum" ]]; then
            echo "FAIL: checksum not even stable across runs ($run_checksum vs $new_checksum)" >&2
            exit 1
        fi
        new_checksum="$run_checksum"
        if [[ -z "$new_ms" ]] || awk -v a="$run_ms" -v b="$new_ms" 'BEGIN { exit !(a < b) }'; then
            new_ms="$run_ms"
        fi
    done

    base_checksum="$(field "$BASELINE" checksum)"
    base_ms="$(field "$BASELINE" cached_single_thread)"

    if [[ -z "$base_checksum" || -z "$base_ms" ]]; then
        echo "check_bench: baseline $BASELINE is missing checksum/cached_single_thread;" >&2
        echo "             re-bless it with scripts/bench_routing.sh" >&2
        exit 1
    fi

    echo "checksum: baseline $base_checksum, fresh $new_checksum"
    if [[ "$new_checksum" != "$base_checksum" ]]; then
        echo "FAIL: routing checksum changed — results differ from the baseline" >&2
        failures=$((failures + 1))
    fi

    echo "cached_single_thread per-epoch ms: baseline $base_ms, fresh $new_ms (gate: +${MAX_SLOWDOWN_PCT}%)"
    if ! awk -v new="$new_ms" -v base="$base_ms" -v pct="$MAX_SLOWDOWN_PCT" \
            'BEGIN { exit !(new <= base * (1 + pct / 100)) }'; then
        echo "FAIL: cached_single_thread regressed more than ${MAX_SLOWDOWN_PCT}% vs baseline" >&2
        failures=$((failures + 1))
    fi
fi

# ---------------------------------------------------------------------
# Serving SLO gate: serve --listen + loadgen against BENCH_serve.json.
# ---------------------------------------------------------------------

SERVE_BASELINE="BENCH_serve.json"
if [[ "${SERVE_GATE:-1}" != "0" ]]; then
    if [[ ! -f "$SERVE_BASELINE" ]]; then
        echo "check_bench: no baseline $SERVE_BASELINE; run scripts/loadgen_smoke.sh --bless" >&2
        exit 1
    fi
    slo_ms="${SERVE_P99_SLO_MS:-$(field "$SERVE_BASELINE" p99_slo_ms)}"
    p999_slo_ms="${SERVE_P999_SLO_MS:-$(field "$SERVE_BASELINE" p999_slo_ms)}"
    max_shed="${SERVE_MAX_SHED_PCT:-$(field "$SERVE_BASELINE" max_shed_pct)}"
    rate="$(field "$SERVE_BASELINE" target_rps)"
    duration="$(field "$SERVE_BASELINE" duration_ms)"
    if [[ -z "$slo_ms" || -z "$p999_slo_ms" || -z "$max_shed" || -z "$rate" || -z "$duration" ]]; then
        echo "check_bench: $SERVE_BASELINE is missing p99_slo_ms/p999_slo_ms/max_shed_pct/target_rps/duration_ms;" >&2
        echo "             re-bless it with scripts/loadgen_smoke.sh --bless" >&2
        exit 1
    fi

    echo "==> cargo build --release -p mobirescue-net --bin serve -p mobirescue-bench --bin loadgen"
    cargo build --release -q -p mobirescue-net --bin serve -p mobirescue-bench --bin loadgen

    serve_log="$(mktemp)"
    fresh_serve="$(mktemp)"
    echo "==> serve --listen 127.0.0.1:0 (small scenario)"
    ./target/release/serve --listen 127.0.0.1:0 --epochs 250 --period-ms 100 --quiet \
        > "$serve_log" 2>&1 &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$serve_log")"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "FAIL: serve never printed its listen address" >&2
        cat "$serve_log" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi

    echo "==> loadgen --addr $addr --rate $rate --duration-ms $duration"
    if ! ./target/release/loadgen --addr "$addr" --rate "$rate" \
            --duration-ms "$duration" --quiet > "$fresh_serve"; then
        echo "FAIL: loadgen exited non-zero" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    if ! wait "$serve_pid"; then
        echo "FAIL: serve exited non-zero" >&2
        cat "$serve_log" >&2
        exit 1
    fi

    p99="$(field "$fresh_serve" rtt_p99_ms)"
    p999="$(field "$fresh_serve" rtt_p999_ms)"
    shed="$(field "$fresh_serve" shed_rate_pct)"
    sent="$(field "$fresh_serve" sent)"
    lost="$(field "$fresh_serve" lost)"
    echo "serve: sent $sent, lost $lost, p99 ${p99}ms (SLO ${slo_ms}ms), p999 ${p999}ms (SLO ${p999_slo_ms}ms), shed ${shed}% (cap ${max_shed}%)"
    if [[ -z "$p99" || -z "$p999" || -z "$shed" ]]; then
        echo "FAIL: loadgen report is missing rtt_p99_ms/rtt_p999_ms/shed_rate_pct" >&2
        failures=$((failures + 1))
    else
        if ! awk -v v="$p99" -v cap="$slo_ms" 'BEGIN { exit !(v <= cap) }'; then
            echo "FAIL: p99 request latency ${p99}ms exceeds the ${slo_ms}ms SLO" >&2
            failures=$((failures + 1))
        fi
        if ! awk -v v="$p999" -v cap="$p999_slo_ms" 'BEGIN { exit !(v <= cap) }'; then
            echo "FAIL: p99.9 request latency ${p999}ms exceeds the ${p999_slo_ms}ms tail SLO" >&2
            failures=$((failures + 1))
        fi
        if ! awk -v v="$shed" -v cap="$max_shed" 'BEGIN { exit !(v <= cap) }'; then
            echo "FAIL: shed rate ${shed}% exceeds the ${max_shed}% ceiling" >&2
            failures=$((failures + 1))
        fi
        if [[ "$lost" != "0" ]]; then
            echo "FAIL: $lost request(s) were never answered" >&2
            failures=$((failures + 1))
        fi
    fi
fi

# ---------------------------------------------------------------------
# Scale gate: bench_scale vs BENCH_scale.json (exact per-preset snapshot
# checksum + epoch-latency ceiling).
# ---------------------------------------------------------------------

SCALE_BASELINE="BENCH_scale.json"
if [[ "${SCALE_GATE:-1}" != "0" ]]; then
    if [[ ! -f "$SCALE_BASELINE" ]]; then
        echo "check_bench: no baseline $SCALE_BASELINE; run scripts/bench_scale.sh --bless" >&2
        exit 1
    fi
    SCALE_MAX_SLOWDOWN_PCT="${SCALE_MAX_SLOWDOWN_PCT:-$MAX_SLOWDOWN_PCT}"
    SCALE_RUNS="${SCALE_RUNS:-2}"
    read -r -a scale_presets <<< "${SCALE_PRESETS:-medium metro}"

    # Extract `"key": value` from the named preset's row in the `worlds`
    # array (values may be bare numbers or quoted checksums).
    scale_field() { # scale_field FILE PRESET KEY
        awk -v preset="$2" -v key="$3" '
            $0 ~ "\"preset\": \"" preset "\"" { in_row = 1; next }
            in_row && match($0, "\"" key "\": \"?[0-9a-fx.]+") {
                v = substr($0, RSTART, RLENGTH)
                sub(/.*: "?/, "", v)
                print v
                exit
            }
            in_row && /^    \}/ { exit }
        ' "$1"
    }

    echo "==> cargo build --release -p mobirescue-bench --bin bench_scale"
    cargo build --release -q -p mobirescue-bench --bin bench_scale

    fresh_scale="$(mktemp)"
    declare -A scale_checksum scale_ms
    for run in $(seq 1 "$SCALE_RUNS"); do
        echo "==> running scale benchmark ($run/$SCALE_RUNS: ${scale_presets[*]})"
        ./target/release/bench_scale "${scale_presets[@]}" > "$fresh_scale"
        for preset in "${scale_presets[@]}"; do
            run_checksum="$(scale_field "$fresh_scale" "$preset" checksum)"
            run_ms="$(scale_field "$fresh_scale" "$preset" epoch_ms)"
            if [[ -z "$run_checksum" || -z "$run_ms" ]]; then
                echo "FAIL: scale benchmark emitted no $preset row" >&2
                exit 1
            fi
            if [[ -n "${scale_checksum[$preset]:-}" && "$run_checksum" != "${scale_checksum[$preset]}" ]]; then
                echo "FAIL: $preset checksum not even stable across runs" \
                     "($run_checksum vs ${scale_checksum[$preset]})" >&2
                exit 1
            fi
            scale_checksum[$preset]="$run_checksum"
            if [[ -z "${scale_ms[$preset]:-}" ]] || \
                    awk -v a="$run_ms" -v b="${scale_ms[$preset]}" 'BEGIN { exit !(a < b) }'; then
                scale_ms[$preset]="$run_ms"
            fi
        done
    done

    for preset in "${scale_presets[@]}"; do
        base_checksum="$(scale_field "$SCALE_BASELINE" "$preset" checksum)"
        base_ms="$(scale_field "$SCALE_BASELINE" "$preset" epoch_ms)"
        if [[ -z "$base_checksum" || -z "$base_ms" ]]; then
            echo "check_bench: $SCALE_BASELINE has no $preset row;" >&2
            echo "             re-bless it with scripts/bench_scale.sh --bless" >&2
            exit 1
        fi
        echo "scale/$preset checksum: baseline $base_checksum, fresh ${scale_checksum[$preset]}"
        if [[ "${scale_checksum[$preset]}" != "$base_checksum" ]]; then
            echo "FAIL: $preset scale checksum changed — engine behavior differs at scale" >&2
            failures=$((failures + 1))
        fi
        echo "scale/$preset epoch_ms: baseline $base_ms, fresh ${scale_ms[$preset]} (gate: +${SCALE_MAX_SLOWDOWN_PCT}%)"
        if ! awk -v new="${scale_ms[$preset]}" -v base="$base_ms" -v pct="$SCALE_MAX_SLOWDOWN_PCT" \
                'BEGIN { exit !(new <= base * (1 + pct / 100)) }'; then
            echo "FAIL: $preset epoch latency regressed more than ${SCALE_MAX_SLOWDOWN_PCT}% vs baseline" >&2
            failures=$((failures + 1))
        fi
    done
fi

if [[ "$failures" -gt 0 ]]; then
    echo "check_bench: $failures failure(s)" >&2
    exit 1
fi
echo "check_bench: OK"
