#!/usr/bin/env bash
# Bench-regression gate: re-runs the per-epoch routing benchmark and
# compares it against the committed baseline BENCH_routing.json.
#
#   scripts/check_bench.sh              # gate against BENCH_routing.json
#   MAX_SLOWDOWN_PCT=40 scripts/check_bench.sh   # loosen the timing gate
#
# Fails (non-zero exit) when either:
#   * the `checksum` differs from the baseline — the routing *results*
#     changed, which is never acceptable from a perf-only change; or
#   * `cached_single_thread` per-epoch time regressed more than
#     MAX_SLOWDOWN_PCT percent (default 25) against the baseline. The
#     single-thread figure is gated because it is the least
#     machine-dependent of the timings, and the gate takes the best of
#     BENCH_RUNS (default 3) full benchmark runs — the minimum is far
#     more stable against scheduler noise than any single run.
#
# To re-bless the baseline after an intentional routing change:
#
#   scripts/bench_routing.sh            # rewrites BENCH_routing.json
#
# and commit the new baseline together with the change and a rationale
# (in particular, explain any checksum change — it means different
# routes or distances, not just different timings).

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="BENCH_routing.json"
MAX_SLOWDOWN_PCT="${MAX_SLOWDOWN_PCT:-25}"
BENCH_RUNS="${BENCH_RUNS:-3}"

if [[ ! -f "$BASELINE" ]]; then
    echo "check_bench: no baseline $BASELINE; run scripts/bench_routing.sh first" >&2
    exit 1
fi

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

echo "==> cargo build --release -p mobirescue-bench --bin bench_routing"
cargo build --release -q -p mobirescue-bench --bin bench_routing

# Extract `"key": value` scalars from the flat JSON the benchmark emits.
field() { # field FILE KEY
    sed -n "s/^.*\"$2\": \([0-9.]*\).*$/\1/p" "$1" | head -n 1
}

new_checksum=""
new_ms=""
for run in $(seq 1 "$BENCH_RUNS"); do
    echo "==> running routing benchmark ($run/$BENCH_RUNS)"
    ./target/release/bench_routing > "$fresh"
    run_checksum="$(field "$fresh" checksum)"
    run_ms="$(field "$fresh" cached_single_thread)"
    if [[ -n "$new_checksum" && "$run_checksum" != "$new_checksum" ]]; then
        echo "FAIL: checksum not even stable across runs ($run_checksum vs $new_checksum)" >&2
        exit 1
    fi
    new_checksum="$run_checksum"
    if [[ -z "$new_ms" ]] || awk -v a="$run_ms" -v b="$new_ms" 'BEGIN { exit !(a < b) }'; then
        new_ms="$run_ms"
    fi
done

base_checksum="$(field "$BASELINE" checksum)"
base_ms="$(field "$BASELINE" cached_single_thread)"

if [[ -z "$base_checksum" || -z "$base_ms" ]]; then
    echo "check_bench: baseline $BASELINE is missing checksum/cached_single_thread;" >&2
    echo "             re-bless it with scripts/bench_routing.sh" >&2
    exit 1
fi

failures=0

echo "checksum: baseline $base_checksum, fresh $new_checksum"
if [[ "$new_checksum" != "$base_checksum" ]]; then
    echo "FAIL: routing checksum changed — results differ from the baseline" >&2
    failures=$((failures + 1))
fi

echo "cached_single_thread per-epoch ms: baseline $base_ms, fresh $new_ms (gate: +${MAX_SLOWDOWN_PCT}%)"
if ! awk -v new="$new_ms" -v base="$base_ms" -v pct="$MAX_SLOWDOWN_PCT" \
        'BEGIN { exit !(new <= base * (1 + pct / 100)) }'; then
    echo "FAIL: cached_single_thread regressed more than ${MAX_SLOWDOWN_PCT}% vs baseline" >&2
    failures=$((failures + 1))
fi

if [[ "$failures" -gt 0 ]]; then
    echo "check_bench: $failures failure(s)" >&2
    exit 1
fi
echo "check_bench: OK"
