#!/usr/bin/env bash
# Loadgen smoke: boots `serve --listen` on an ephemeral port, replays a
# ramp-profile load through `loadgen`, and asserts the report is sane —
# every request accounted for, nothing lost, both processes exiting 0.
# This is the CI proof that the TCP front door actually serves traffic,
# independent of the SLO numbers the bench gate enforces.
#
#   scripts/loadgen_smoke.sh            # ramp-profile smoke run
#   scripts/loadgen_smoke.sh --bless    # regenerate BENCH_serve.json
#
# --bless runs the open-loop baseline shape (the one check_bench.sh
# replays) and rewrites BENCH_serve.json; commit the new baseline with a
# rationale.

set -euo pipefail
cd "$(dirname "$0")/.."

BLESS=0
if [[ "${1:-}" == "--bless" ]]; then
    BLESS=1
fi

echo "==> cargo build --release -p mobirescue-net --bin serve -p mobirescue-bench --bin loadgen"
cargo build --release -q -p mobirescue-net --bin serve -p mobirescue-bench --bin loadgen

serve_log="$(mktemp)"
report="$(mktemp)"
trap 'rm -f "$serve_log" "$report"' EXIT

echo "==> serve --listen 127.0.0.1:0 (small scenario)"
./target/release/serve --listen 127.0.0.1:0 --epochs 250 --period-ms 100 --quiet \
    > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$serve_log")"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "loadgen_smoke: serve never printed its listen address" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi

if [[ "$BLESS" == "1" ]]; then
    echo "==> loadgen (open profile, blessing BENCH_serve.json)"
    ./target/release/loadgen --addr "$addr" --profile open --rate 200 \
        --duration-ms 5000 --slo-ms 250 --p999-slo-ms 1000 --max-shed-pct 5 \
        --out BENCH_serve.json --quiet > "$report"
else
    echo "==> loadgen (ramp profile)"
    ./target/release/loadgen --addr "$addr" --profile ramp --rate 150 \
        --duration-ms 3000 --quiet > "$report"
fi
wait "$serve_pid" || {
    echo "loadgen_smoke: serve exited non-zero" >&2
    cat "$serve_log" >&2
    exit 1
}

field() { # field KEY
    sed -n "s/^.*\"$1\": \([0-9.]*\).*$/\1/p" "$report" | head -n 1
}

sent="$(field sent)"
acked="$(field acked)"
nacked_shed="$(field nacked_shed)"
nacked_invalid="$(field nacked_invalid)"
lost="$(field lost)"
echo "report: sent $sent, acked $acked, shed $nacked_shed, invalid $nacked_invalid, lost $lost"

failures=0
if [[ -z "$sent" || "$sent" -eq 0 ]]; then
    echo "FAIL: no requests were sent" >&2
    failures=$((failures + 1))
fi
if [[ "$lost" != "0" ]]; then
    echo "FAIL: $lost request(s) were never answered" >&2
    failures=$((failures + 1))
fi
if [[ "$((acked + nacked_shed + nacked_invalid + lost))" != "$sent" ]]; then
    echo "FAIL: replies don't account for every send" >&2
    failures=$((failures + 1))
fi
if [[ "$nacked_invalid" != "0" ]]; then
    echo "FAIL: the mined stream produced $nacked_invalid invalid request(s)" >&2
    failures=$((failures + 1))
fi

if [[ "$failures" -gt 0 ]]; then
    echo "loadgen_smoke: $failures failure(s)" >&2
    exit 1
fi
if [[ "$BLESS" == "1" ]]; then
    # Ride-along informational rows: what each journal fsync policy
    # costs per group-committed append batch on the bless machine. The
    # SLO gate does not read these; they document the durability tax.
    echo "==> bench_wal (fsync-policy cost rows)"
    cargo build --release -q -p mobirescue-bench --bin bench_wal
    wal_rows="$(mktemp)"
    ./target/release/bench_wal > "$wal_rows"
    head -n -1 BENCH_serve.json > "${wal_rows}.merged"
    sed -i '$ s/$/,/' "${wal_rows}.merged"
    sed -e '1d' "$wal_rows" >> "${wal_rows}.merged"
    mv "${wal_rows}.merged" BENCH_serve.json
    rm -f "$wal_rows"
    echo "loadgen_smoke: blessed BENCH_serve.json"
fi
echo "loadgen_smoke: OK"
