#!/usr/bin/env bash
# Metro-scale world benchmark driver (`BENCH_scale.json`).
#
#   scripts/bench_scale.sh                  # run medium+metro, print JSON
#   scripts/bench_scale.sh --bless          # rewrite the committed baseline
#   scripts/bench_scale.sh --bless medium metro multi_city
#   SCALE_PRESETS="medium" scripts/bench_scale.sh
#
# The benchmark reports per-preset dispatch-epoch latency, request
# throughput, and a deterministic snapshot checksum; see
# crates/bench/src/bin/bench_scale.rs for the exact workload. The timing
# fields are machine-dependent — the checksums are not, which is why
# scripts/check_bench.sh gates the checksum exactly but the timing only
# against a slack ceiling.
#
# Re-bless (and commit the new BENCH_scale.json with a rationale) after
# any intentional engine-behavior change; a checksum change means the
# simulation produced different outcomes at scale, never "just timing".

set -euo pipefail
cd "$(dirname "$0")/.."

bless=0
presets=()
for arg in "$@"; do
    case "$arg" in
        --bless) bless=1 ;;
        --*) echo "bench_scale.sh: unknown flag $arg" >&2; exit 2 ;;
        *) presets+=("$arg") ;;
    esac
done
if [[ ${#presets[@]} -eq 0 ]]; then
    read -r -a presets <<< "${SCALE_PRESETS:-medium metro}"
fi

echo "==> cargo build --release -p mobirescue-bench --bin bench_scale" >&2
cargo build --release -q -p mobirescue-bench --bin bench_scale

echo "==> running scale benchmark (${presets[*]})" >&2
if [[ "$bless" -eq 1 ]]; then
    ./target/release/bench_scale "${presets[@]}" | tee BENCH_scale.json
    echo "bench_scale: blessed BENCH_scale.json" >&2
else
    ./target/release/bench_scale "${presets[@]}"
fi
