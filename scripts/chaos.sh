#!/usr/bin/env bash
# Chaos seed sweep: run the dispatch service under N seeded fault plans
# and record one line of invariant results per seed, then sweep poisoned
# checkpoints (NaN weights, wrong dims, reward tank) through the guarded
# rollout pipeline, then sweep trainer faults (transition drops,
# stale-candidate floods, boundary crashes) through the online training
# loop, then sweep WAL faults (kill -9 at arbitrary journal bytes, torn
# appends, bit flips, fsync stalls) through the durable ingest journal
# over the pinned CHAOS_SEEDS.
#
#   scripts/chaos.sh [SEEDS] [BASE_SEED]
#
# Defaults: 20 seeds starting at 1, 6 epochs x 2 shards per run. Output
# goes to robustness_serve.txt (and stdout); the script exits non-zero
# if any seed breaks an invariant.

set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-20}"
BASE_SEED="${2:-1}"
OUT="robustness_serve.txt"

cargo build --release -q -p mobirescue-bench --bin chaos
cargo run --release -q -p mobirescue-bench --bin chaos -- \
    --seeds "$SEEDS" --base-seed "$BASE_SEED" | tee "$OUT"

echo "wrote $OUT"
