#!/usr/bin/env bash
# Repo verification: the tier-1 gate (ROADMAP.md) plus formatting and
# lints, with a per-step PASS/FAIL summary.
#
#   scripts/verify.sh          # tier-1 + fmt + clippy + pinned chaos suite
#   scripts/verify.sh --full   # additionally run the whole workspace's tests
#
# Every step runs even when an earlier one fails, so one invocation
# reports everything that is broken; the script exits non-zero if any
# step failed.

set -euo pipefail
cd "$(dirname "$0")/.."

steps=()
results=()
failures=0

run_step() { # run_step NAME CMD...
    local name="$1"
    shift
    echo "==> $name: $*"
    local result=PASS
    if ! "$@"; then
        result=FAIL
        failures=$((failures + 1))
    fi
    steps+=("$name")
    results+=("$result")
}

run_step "fmt" cargo fmt --check
run_step "clippy" cargo clippy --workspace --all-targets -- -D warnings
run_step "tier-1 build" cargo build --release
run_step "tier-1 tests" cargo test -q
run_step "chaos suite" cargo test -q --test chaos
run_step "rollout chaos suite" cargo test -q --test rollout_chaos
run_step "trainer chaos suite" cargo test -q --test trainer_chaos
run_step "net chaos suite" cargo test -q --test net_chaos
run_step "wal chaos suite" cargo test -q --test wal_chaos
run_step "net crate tests" cargo test -q -p mobirescue-net
# Scale gate only (routing/serve gates have their own CI jobs); medium
# preset with a loosened ceiling — verify machines vary more than the
# bless machine, and the exact checksum is the load-bearing part.
run_step "scale bench gate" env ROUTING_GATE=0 SERVE_GATE=0 SCALE_PRESETS=medium \
    SCALE_MAX_SLOWDOWN_PCT=150 scripts/check_bench.sh

if [[ "${1:-}" == "--full" ]]; then
    run_step "full workspace tests" cargo test --workspace --release -q
fi

echo
echo "verify summary:"
for i in "${!steps[@]}"; do
    printf '  %-22s %s\n' "${steps[$i]}" "${results[$i]}"
done

if [[ "$failures" -gt 0 ]]; then
    echo "verify: $failures step(s) FAILED"
    exit 1
fi
echo "verify: OK"
