#!/usr/bin/env bash
# Repo verification: the tier-1 gate (ROADMAP.md) plus formatting.
#
#   scripts/verify.sh          # tier-1 + cargo fmt --check
#   scripts/verify.sh --full   # additionally run the whole workspace's tests
#
# Exits non-zero on the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> chaos suite (fixed seed set, tests/chaos.rs)"
cargo test -q --test chaos

if [[ "${1:-}" == "--full" ]]; then
    echo "==> full: cargo test --workspace --release -q"
    cargo test --workspace --release -q
fi

echo "verify: OK"
