#!/usr/bin/env bash
# Runs the per-epoch routing benchmark on the medium charlotte-like
# scenario and writes the machine-readable result to BENCH_routing.json.
#
#   scripts/bench_routing.sh            # writes BENCH_routing.json
#   scripts/bench_routing.sh /tmp/x.json
#
# The benchmark itself asserts that every accelerated variant produces
# results identical to the naive Dijkstra path before reporting timings.

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_routing.json}"

echo "==> cargo build --release -p mobirescue-bench --bin bench_routing"
cargo build --release -p mobirescue-bench --bin bench_routing

echo "==> running routing benchmark"
./target/release/bench_routing | tee "$out"

echo "bench_routing: wrote $out"
