//! Property-based tests for the disaster substrate.

use mobirescue_disaster::hurricane::{Hurricane, Timeline};
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_disaster::terrain::TerrainModel;
use mobirescue_disaster::weather::WeatherField;
use mobirescue_roadnet::generator::CityConfig;
use mobirescue_roadnet::geo::GeoPoint;
use proptest::prelude::*;
use std::sync::OnceLock;

fn scenario() -> &'static (mobirescue_roadnet::generator::City, DisasterScenario) {
    static CACHE: OnceLock<(mobirescue_roadnet::generator::City, DisasterScenario)> =
        OnceLock::new();
    CACHE.get_or_init(|| {
        let city = CityConfig::small().build(7);
        let s = DisasterScenario::new(&city, Hurricane::florence(), 7);
        (city, s)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Timeline intensity is bounded, zero outside the ramped window, and
    /// phases partition the days.
    #[test]
    fn timeline_laws(total in 10u32..60, start in 1u32..20, len in 1u32..10) {
        let start = start.min(total - 2);
        let end = (start + len).min(total);
        let tl = Timeline::new(total, start, end);
        for h in (0..tl.total_hours()).step_by(5) {
            let i = tl.intensity(h);
            prop_assert!((0.0..=1.0).contains(&i));
        }
        prop_assert!((tl.intensity(tl.peak_hour()) - 1.0).abs() < 1e-9);
        for d in 0..total {
            let phase = tl.phase_of_day(d);
            use mobirescue_disaster::hurricane::DisasterPhase::*;
            match phase {
                Before => prop_assert!(d < start),
                During => prop_assert!((start..end).contains(&d)),
                After => prop_assert!(d >= end),
            }
        }
    }

    /// Weather fields are non-negative everywhere/anytime, and terrain is
    /// deterministic.
    #[test]
    fn field_laws(
        east in -8_000.0f64..8_000.0,
        north in -8_000.0f64..8_000.0,
        hour_step in 0u32..72,
    ) {
        let center = GeoPoint::new(35.2271, -80.8431);
        let terrain = TerrainModel::new(center, 5);
        let weather = WeatherField::new(center, Hurricane::florence(), 5);
        let p = center.offset_m(east, north);
        let hour = hour_step * 10; // spans the whole scenario
        prop_assert!(weather.precipitation_mm_h(p, hour) >= 0.0);
        prop_assert!(weather.wind_mph(p, hour) >= 0.0);
        prop_assert_eq!(terrain.altitude_m(p), terrain.altitude_m(p));
        // Daily accumulation is the sum of its hours.
        let day = hour / 24;
        if day < 30 {
            let manual: f64 = (0..24).map(|h| weather.precipitation_mm_h(p, day * 24 + h)).sum();
            prop_assert!((weather.daily_precipitation_mm(p, day) - manual).abs() < 1e-9);
        }
    }

    /// Flood depth is consistent with flood-zone membership and the
    /// network condition: blocked ⇔ deep at the midpoint.
    #[test]
    fn flood_condition_consistency(hour_step in 0u32..120) {
        let (city, s) = scenario();
        let hour = (hour_step * 6).min(s.total_hours() - 1);
        let cond = s.network_condition(&city.network, hour);
        for sid in city.network.segment_ids().step_by(17) {
            let depth = s.flood().depth_m(city.network.segment_midpoint(sid), hour);
            prop_assert_eq!(
                cond.is_operable(sid),
                depth < mobirescue_disaster::flood::FLOOD_DEPTH_M,
                "segment {} depth {} operable {}", sid, depth, cond.is_operable(sid)
            );
            let c = cond.condition(sid);
            prop_assert!(c.speed_factor > 0.0 && c.speed_factor <= 1.0);
        }
    }

    /// Factors at any position/time are finite and physically plausible.
    #[test]
    fn factors_plausible(
        east in -7_000.0f64..7_000.0,
        north in -7_000.0f64..7_000.0,
        hour_step in 0u32..120,
    ) {
        let (city, s) = scenario();
        let hour = (hour_step * 6).min(s.total_hours() - 1);
        let f = s.factors_at(city.center.offset_m(east, north), hour);
        prop_assert!((0.0..60.0).contains(&f.precipitation_mm_h));
        prop_assert!((0.0..200.0).contains(&f.wind_mph));
        prop_assert!((100.0..350.0).contains(&f.altitude_m));
    }
}
