//! The complete disaster state bundle: terrain + weather + flood.
//!
//! A [`DisasterScenario`] packages everything downstream code needs from the
//! "external support" of the paper's Figure 7: the factor vector **h** at any
//! position/time (for the SVM), flood-zone membership (for ground-truth
//! labelling and people's trapped state), and the remaining available road
//! network G̃ at any hour (for routing and dispatching).

use crate::factors::FactorVector;
use crate::flood::FloodField;
use crate::hurricane::{DisasterPhase, Hurricane};
use crate::terrain::TerrainModel;
use crate::weather::WeatherField;
use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::generator::City;
use mobirescue_roadnet::geo::GeoPoint;
use mobirescue_roadnet::graph::RoadNetwork;
use serde::{Deserialize, Serialize};

/// Default raster resolution of the flood model.
pub const DEFAULT_FLOOD_RESOLUTION: usize = 48;

/// All disaster state for one hurricane over one city.
///
/// # Examples
///
/// ```
/// use mobirescue_disaster::hurricane::Hurricane;
/// use mobirescue_disaster::scenario::DisasterScenario;
/// use mobirescue_roadnet::generator::CityConfig;
///
/// let city = CityConfig::small().build(42);
/// let scenario = DisasterScenario::new(&city, Hurricane::florence(), 42);
/// let peak = scenario.hurricane().timeline.peak_hour();
/// let factors = scenario.factors_at(city.center, peak);
/// assert!(factors.precipitation_mm_h > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DisasterScenario {
    center: GeoPoint,
    terrain: TerrainModel,
    weather: WeatherField,
    flood: FloodField,
}

impl DisasterScenario {
    /// Builds the full disaster state for `hurricane` over `city`,
    /// deterministic in `seed`, at the default flood resolution.
    pub fn new(city: &City, hurricane: Hurricane, seed: u64) -> Self {
        Self::with_resolution(city, hurricane, seed, DEFAULT_FLOOD_RESOLUTION)
    }

    /// Like [`DisasterScenario::new`] with an explicit flood raster
    /// resolution.
    ///
    /// # Panics
    ///
    /// Panics if the city network is empty or `resolution < 2`.
    pub fn with_resolution(
        city: &City,
        hurricane: Hurricane,
        seed: u64,
        resolution: usize,
    ) -> Self {
        let bbox = city
            .network
            .bounding_box()
            .expect("city network must be non-empty")
            .expanded_m(1_000.0);
        // Scale the downtown basin to the city so that small test cities
        // keep the same low-downtown / high-outskirts structure as the
        // full-size one.
        let (width_m, height_m) = bbox.north_east.local_xy_m(bbox.south_west);
        let basin_sigma_m = (0.35 * 0.5 * width_m.min(height_m)).max(800.0);
        let terrain = TerrainModel::with_params(city.center, seed, 232.0, 45.0, basin_sigma_m);
        let weather = WeatherField::new(city.center, hurricane, seed);
        let flood = FloodField::compute(bbox, &terrain, &weather, resolution);
        Self {
            center: city.center,
            terrain,
            weather,
            flood,
        }
    }

    /// The city center the scenario is anchored to.
    pub fn center(&self) -> GeoPoint {
        self.center
    }

    /// The hurricane driving the scenario.
    pub fn hurricane(&self) -> &Hurricane {
        self.weather.hurricane()
    }

    /// The terrain model.
    pub fn terrain(&self) -> &TerrainModel {
        &self.terrain
    }

    /// The weather field.
    pub fn weather(&self) -> &WeatherField {
        &self.weather
    }

    /// The flood field.
    pub fn flood(&self) -> &FloodField {
        &self.flood
    }

    /// Scenario length in hours.
    pub fn total_hours(&self) -> u32 {
        self.hurricane().timeline.total_hours()
    }

    /// Phase (before/during/after) of day `day`.
    pub fn phase_of_day(&self, day: u32) -> DisasterPhase {
        self.hurricane().timeline.phase_of_day(day)
    }

    /// The factor vector **h** at position `p` during `hour`.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is past the end of the scenario.
    pub fn factors_at(&self, p: GeoPoint, hour: u32) -> FactorVector {
        assert!(hour < self.total_hours(), "hour {hour} outside scenario");
        FactorVector {
            precipitation_mm_h: self.weather.precipitation_mm_h(p, hour),
            wind_mph: self.weather.wind_mph(p, hour),
            altitude_m: self.terrain.altitude_m(p),
        }
    }

    /// Whether `p` is inside a flood zone during `hour`.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is past the end of the scenario.
    pub fn is_flooded(&self, p: GeoPoint, hour: u32) -> bool {
        self.flood.is_flooded(p, hour)
    }

    /// The remaining available road network G̃ at `hour`.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is past the end of the scenario.
    pub fn network_condition(&self, net: &RoadNetwork, hour: u32) -> NetworkCondition {
        self.flood.network_condition(net, hour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_roadnet::generator::CityConfig;

    fn scenario() -> (mobirescue_roadnet::generator::City, DisasterScenario) {
        let city = CityConfig::small().build(21);
        let s = DisasterScenario::new(&city, Hurricane::florence(), 21);
        (city, s)
    }

    #[test]
    fn factors_reflect_the_storm() {
        let (city, s) = scenario();
        let calm = s.factors_at(city.center, 0);
        let peak = s.factors_at(city.center, s.hurricane().timeline.peak_hour());
        assert_eq!(calm.precipitation_mm_h, 0.0);
        assert!(peak.precipitation_mm_h > calm.precipitation_mm_h);
        assert!(peak.wind_mph > calm.wind_mph);
        assert_eq!(calm.altitude_m, peak.altitude_m, "altitude is static");
    }

    #[test]
    fn network_condition_tracks_flooding() {
        let (city, s) = scenario();
        let before = s.network_condition(&city.network, 0);
        assert_eq!(before.operable_count(), city.network.num_segments());
        let peak = s.hurricane().timeline.peak_hour();
        let during = s.network_condition(&city.network, peak + 24);
        assert!(during.operable_count() < city.network.num_segments());
    }

    #[test]
    fn phase_queries_delegate_to_timeline() {
        let (_, s) = scenario();
        assert_eq!(s.phase_of_day(0), DisasterPhase::Before);
        assert_eq!(s.phase_of_day(13), DisasterPhase::During);
        assert_eq!(s.phase_of_day(20), DisasterPhase::After);
        assert_eq!(s.total_hours(), 720);
    }

    #[test]
    fn michael_differs_from_florence() {
        let city = CityConfig::small().build(3);
        let f = DisasterScenario::new(&city, Hurricane::florence(), 3);
        let m = DisasterScenario::new(&city, Hurricane::michael(), 3);
        let hf = f.hurricane().timeline.peak_hour();
        let hm = m.hurricane().timeline.peak_hour();
        assert_ne!(hf, hm);
        assert!(
            f.factors_at(city.center, hf).precipitation_mm_h
                > m.factors_at(city.center, hm).precipitation_mm_h,
            "Florence hit Charlotte harder than Michael"
        );
    }

    #[test]
    #[should_panic(expected = "outside scenario")]
    fn factors_out_of_range_panics() {
        let (city, s) = scenario();
        let _ = s.factors_at(city.center, 100_000);
    }
}
