//! Space–time weather fields (precipitation and wind).
//!
//! The paper reads precipitation and wind speed from the National Weather
//! Service. Here a [`WeatherField`] synthesizes both from a [`Hurricane`]:
//! a temporal intensity curve (the storm passing) multiplied by a spatial
//! profile (a rain band across the city plus a core over downtown, with
//! smooth noise), so different regions receive measurably different factor
//! values — the property Observation 1 relies on.

use crate::hurricane::Hurricane;
use mobirescue_roadnet::geo::GeoPoint;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Deterministic smooth space–time weather field.
///
/// # Examples
///
/// ```
/// use mobirescue_disaster::hurricane::Hurricane;
/// use mobirescue_disaster::weather::WeatherField;
/// use mobirescue_roadnet::geo::GeoPoint;
///
/// let center = GeoPoint::new(35.2271, -80.8431);
/// let weather = WeatherField::new(center, Hurricane::florence(), 42);
/// let peak = weather.hurricane().timeline.peak_hour();
/// assert!(weather.precipitation_mm_h(center, peak) > 1.0);
/// assert_eq!(weather.precipitation_mm_h(center, 0), 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeatherField {
    origin: GeoPoint,
    hurricane: Hurricane,
    /// (wavelength_x, wavelength_y, phase_x, phase_y) of the precip noise.
    precip_noise: (f64, f64, f64, f64),
    wind_noise: (f64, f64, f64, f64),
}

impl WeatherField {
    /// Creates a weather field around `origin` for `hurricane`,
    /// deterministic in `seed`.
    pub fn new(origin: GeoPoint, hurricane: Hurricane, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7765_6174_6865_7200);
        let mut noise = |_: ()| {
            (
                rng.random_range(6_000.0..18_000.0),
                rng.random_range(6_000.0..18_000.0),
                rng.random_range(0.0..std::f64::consts::TAU),
                rng.random_range(0.0..std::f64::consts::TAU),
            )
        };
        let precip_noise = noise(());
        let wind_noise = noise(());
        Self {
            origin,
            hurricane,
            precip_noise,
            wind_noise,
        }
    }

    /// The hurricane driving this field.
    pub fn hurricane(&self) -> &Hurricane {
        &self.hurricane
    }

    /// Spatial profile in roughly `[0.3, 1.3]`: rain band gradient + downtown
    /// core + smooth noise.
    fn spatial_profile(&self, p: GeoPoint, noise: (f64, f64, f64, f64), band_weight: f64) -> f64 {
        let (x, y) = p.local_xy_m(self.origin);
        let along =
            x * self.hurricane.band_angle_rad.cos() + y * self.hurricane.band_angle_rad.sin();
        // Normalize the along-band coordinate to about [-1, 1] at city scale.
        let band = (along / 12_000.0).clamp(-1.0, 1.0);
        let r2 = x * x + y * y;
        let core = (-r2 / (2.0 * 5_000.0_f64 * 5_000.0)).exp();
        let (wlx, wly, phx, phy) = noise;
        let n = (x / wlx * std::f64::consts::TAU + phx).sin()
            * (y / wly * std::f64::consts::TAU + phy).cos();
        (0.75 + band_weight * band + 0.25 * core + 0.1 * n).max(0.05)
    }

    /// Precipitation at `p` during `hour`, in mm per hour.
    pub fn precipitation_mm_h(&self, p: GeoPoint, hour: u32) -> f64 {
        let intensity = self.hurricane.timeline.intensity(hour);
        self.hurricane.peak_precipitation_mm_h
            * intensity
            * self.spatial_profile(p, self.precip_noise, 0.25)
    }

    /// Sustained wind speed at `p` during `hour`, in mph. A small ambient
    /// wind is present even without the storm.
    pub fn wind_mph(&self, p: GeoPoint, hour: u32) -> f64 {
        let intensity = self.hurricane.timeline.intensity(hour);
        let ambient = 6.0;
        ambient
            + (self.hurricane.peak_wind_mph - ambient)
                * intensity
                * self.spatial_profile(p, self.wind_noise, 0.2)
    }

    /// Total precipitation at `p` accumulated over day `day`, in mm.
    pub fn daily_precipitation_mm(&self, p: GeoPoint, day: u32) -> f64 {
        (0..24)
            .map(|h| self.precipitation_mm_h(p, day * 24 + h))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> WeatherField {
        WeatherField::new(GeoPoint::new(35.2271, -80.8431), Hurricane::florence(), 7)
    }

    #[test]
    fn dry_before_the_storm() {
        let w = field();
        let p = w.origin.offset_m(2_000.0, -3_000.0);
        for h in 0..(10 * 24) {
            assert_eq!(w.precipitation_mm_h(p, h), 0.0, "rain at hour {h}");
        }
    }

    #[test]
    fn wet_and_windy_at_the_peak() {
        let w = field();
        let peak = w.hurricane().timeline.peak_hour();
        let p = w.origin;
        assert!(w.precipitation_mm_h(p, peak) > 3.0);
        assert!(w.wind_mph(p, peak) > 30.0);
    }

    #[test]
    fn ambient_wind_without_storm() {
        let w = field();
        let v = w.wind_mph(w.origin, 0);
        assert!((v - 6.0).abs() < 1e-9, "ambient wind {v}");
    }

    #[test]
    fn spatial_variation_across_the_band() {
        let w = field();
        let peak = w.hurricane().timeline.peak_hour();
        let a = w.hurricane().band_angle_rad;
        let up = w.origin.offset_m(9_000.0 * a.cos(), 9_000.0 * a.sin());
        let down = w.origin.offset_m(-9_000.0 * a.cos(), -9_000.0 * a.sin());
        assert!(
            w.precipitation_mm_h(up, peak) > w.precipitation_mm_h(down, peak),
            "rain band gradient missing"
        );
    }

    #[test]
    fn precipitation_never_negative() {
        let w = field();
        for h in (0..720).step_by(13) {
            for i in -5..=5 {
                let p = w.origin.offset_m(i as f64 * 2_500.0, i as f64 * -1_700.0);
                assert!(w.precipitation_mm_h(p, h) >= 0.0);
                assert!(w.wind_mph(p, h) >= 0.0);
            }
        }
    }

    #[test]
    fn daily_accumulation_sums_hours() {
        let w = field();
        let p = w.origin;
        let day = w.hurricane().timeline.disaster_start_day + 1;
        let manual: f64 = (0..24).map(|h| w.precipitation_mm_h(p, day * 24 + h)).sum();
        assert!((w.daily_precipitation_mm(p, day) - manual).abs() < 1e-9);
        assert!(
            manual > 10.0,
            "a disaster day should accumulate real rain, got {manual}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = WeatherField::new(GeoPoint::new(35.2, -80.8), Hurricane::florence(), 3);
        let b = WeatherField::new(GeoPoint::new(35.2, -80.8), Hurricane::florence(), 3);
        let p = a.origin.offset_m(1_000.0, 500.0);
        let peak = a.hurricane().timeline.peak_hour();
        assert_eq!(a.precipitation_mm_h(p, peak), b.precipitation_mm_h(p, peak));
    }
}
