//! Terrain altitude model.
//!
//! Altitude is one of the paper's three hurricane *disaster-related factors*
//! (Table I: correlation +0.739 with vehicle flow rate — higher ground is
//! less impacted). The paper reads altitude from cellphone altimeters; here a
//! smooth deterministic field stands in: a gently rolling plateau around
//! Charlotte's ~230 m elevation with a low-lying basin under the downtown
//! core, so the dense central region floods hardest (the paper's "Region 3").

use mobirescue_roadnet::geo::GeoPoint;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Smooth altitude field over the city, in meters above sea level.
///
/// # Examples
///
/// ```
/// use mobirescue_disaster::terrain::TerrainModel;
/// use mobirescue_roadnet::geo::GeoPoint;
///
/// let center = GeoPoint::new(35.2271, -80.8431);
/// let terrain = TerrainModel::new(center, 42);
/// let alt = terrain.altitude_m(center);
/// assert!(alt > 100.0 && alt < 300.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TerrainModel {
    origin: GeoPoint,
    base_m: f64,
    basin_depth_m: f64,
    basin_sigma_m: f64,
    /// (amplitude_m, wavelength_m_x, wavelength_m_y, phase_x, phase_y) waves.
    waves: Vec<(f64, f64, f64, f64, f64)>,
}

impl TerrainModel {
    /// Creates a terrain around `origin`, deterministic in `seed`.
    pub fn new(origin: GeoPoint, seed: u64) -> Self {
        Self::with_params(origin, seed, 232.0, 45.0, 3_500.0)
    }

    /// Creates a terrain with explicit base altitude, basin depth and basin
    /// radius (all meters).
    ///
    /// # Panics
    ///
    /// Panics if `basin_sigma_m` is not positive.
    pub fn with_params(
        origin: GeoPoint,
        seed: u64,
        base_m: f64,
        basin_depth_m: f64,
        basin_sigma_m: f64,
    ) -> Self {
        assert!(basin_sigma_m > 0.0, "basin radius must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7465_7272_6169_6e00);
        let mut waves = Vec::new();
        for i in 0..4 {
            let amp = 12.0 / (1.0 + i as f64);
            let wl = rng.random_range(4_000.0..16_000.0);
            let wl2 = rng.random_range(4_000.0..16_000.0);
            let ph = rng.random_range(0.0..std::f64::consts::TAU);
            let ph2 = rng.random_range(0.0..std::f64::consts::TAU);
            waves.push((amp, wl, wl2, ph, ph2));
        }
        Self {
            origin,
            base_m,
            basin_depth_m,
            basin_sigma_m,
            waves,
        }
    }

    /// Altitude at `p` in meters.
    pub fn altitude_m(&self, p: GeoPoint) -> f64 {
        let (x, y) = p.local_xy_m(self.origin);
        let mut alt = self.base_m;
        for &(amp, wlx, wly, phx, phy) in &self.waves {
            alt += amp
                * (x / wlx * std::f64::consts::TAU + phx).sin()
                * (y / wly * std::f64::consts::TAU + phy).cos();
        }
        let r2 = x * x + y * y;
        alt -= self.basin_depth_m * (-r2 / (2.0 * self.basin_sigma_m * self.basin_sigma_m)).exp();
        alt
    }

    /// The origin the field is anchored to.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn center() -> GeoPoint {
        GeoPoint::new(35.2271, -80.8431)
    }

    #[test]
    fn deterministic_in_seed() {
        let a = TerrainModel::new(center(), 9);
        let b = TerrainModel::new(center(), 9);
        let p = center().offset_m(1234.0, -987.0);
        assert_eq!(a.altitude_m(p), b.altitude_m(p));
        let c = TerrainModel::new(center(), 10);
        assert_ne!(a.altitude_m(p), c.altitude_m(p));
    }

    #[test]
    fn downtown_sits_in_a_basin() {
        let t = TerrainModel::new(center(), 1);
        let downtown = t.altitude_m(center());
        // Average altitude on a ring far outside the basin.
        let mut ring = 0.0;
        let n = 16;
        for i in 0..n {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            ring += t.altitude_m(center().offset_m(9_000.0 * a.cos(), 9_000.0 * a.sin()));
        }
        ring /= n as f64;
        assert!(
            downtown < ring - 15.0,
            "downtown {downtown:.1} m should sit well below ring {ring:.1} m"
        );
    }

    #[test]
    fn altitude_stays_in_plausible_range() {
        let t = TerrainModel::new(center(), 2);
        for i in -20..=20 {
            for j in -20..=20 {
                let p = center().offset_m(i as f64 * 700.0, j as f64 * 700.0);
                let alt = t.altitude_m(p);
                assert!((120.0..320.0).contains(&alt), "altitude {alt} at {p:?}");
            }
        }
    }

    #[test]
    fn field_is_smooth() {
        let t = TerrainModel::new(center(), 3);
        // Altitude change over 10 m should be tiny (no cliffs).
        for i in 0..50 {
            let p = center().offset_m(i as f64 * 317.0, i as f64 * 211.0);
            let q = p.offset_m(10.0, 0.0);
            assert!((t.altitude_m(p) - t.altitude_m(q)).abs() < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "basin radius")]
    fn zero_basin_radius_rejected() {
        let _ = TerrainModel::with_params(center(), 0, 230.0, 40.0, 0.0);
    }
}
