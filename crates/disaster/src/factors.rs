//! Disaster-related factor vectors.
//!
//! Section IV-B: every person carries a vector **h** of *disaster-related
//! factors* describing their surrounding environment — `(precipitation, wind
//! speed, altitude)` for hurricanes/flooding — which the SVM consumes to
//! decide whether the person needs rescue. Section IV-C5 notes the factor
//! set should be swappable per disaster type, so factor extraction is behind
//! the [`FactorSet`] trait with hurricane and earthquake instances.

use crate::scenario::DisasterScenario;
use mobirescue_roadnet::geo::GeoPoint;
use serde::{Deserialize, Serialize};

/// The hurricane factor vector `h = (precipitation, wind speed, altitude)`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FactorVector {
    /// Precipitation at the position, mm per hour.
    pub precipitation_mm_h: f64,
    /// Sustained wind speed, mph.
    pub wind_mph: f64,
    /// Terrain altitude, meters.
    pub altitude_m: f64,
}

impl FactorVector {
    /// The vector as an array in the paper's factor order.
    pub fn as_array(&self) -> [f64; 3] {
        [self.precipitation_mm_h, self.wind_mph, self.altitude_m]
    }
}

impl From<FactorVector> for Vec<f64> {
    fn from(v: FactorVector) -> Self {
        v.as_array().to_vec()
    }
}

/// A pluggable set of disaster-related factors (Section IV-C5 extension
/// point).
pub trait FactorSet {
    /// Number of factors produced.
    fn dim(&self) -> usize;

    /// Human-readable factor names, `dim()` long.
    fn names(&self) -> Vec<&'static str>;

    /// Factor values for a person at `p` during `hour`.
    fn compute(&self, scenario: &DisasterScenario, p: GeoPoint, hour: u32) -> Vec<f64>;
}

/// The paper's hurricane/flooding factor set: precipitation, wind speed,
/// altitude.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HurricaneFactors;

impl FactorSet for HurricaneFactors {
    fn dim(&self) -> usize {
        3
    }

    fn names(&self) -> Vec<&'static str> {
        vec!["precipitation", "wind speed", "altitude"]
    }

    fn compute(&self, scenario: &DisasterScenario, p: GeoPoint, hour: u32) -> Vec<f64> {
        scenario.factors_at(p, hour).into()
    }
}

/// The paper's sketched earthquake factor set: seismic magnitude, altitude,
/// building density. Magnitude and building density are synthesized from the
/// scenario geometry (distance to the storm/epicenter core and to downtown),
/// exercising the extension path end-to-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EarthquakeFactors;

impl FactorSet for EarthquakeFactors {
    fn dim(&self) -> usize {
        3
    }

    fn names(&self) -> Vec<&'static str> {
        vec!["seismic magnitude", "altitude", "building density"]
    }

    fn compute(&self, scenario: &DisasterScenario, p: GeoPoint, hour: u32) -> Vec<f64> {
        let (x, y) = p.local_xy_m(scenario.center());
        let r = (x * x + y * y).sqrt();
        let intensity = scenario.hurricane().timeline.intensity(hour);
        // Felt magnitude attenuates with distance from the epicenter (city
        // center) and scales with the disaster's temporal intensity.
        let magnitude = 7.0 * intensity / (1.0 + r / 8_000.0);
        let altitude = scenario.terrain().altitude_m(p);
        let building_density = (-r / 6_000.0).exp();
        vec![magnitude, altitude, building_density]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hurricane::Hurricane;
    use crate::scenario::DisasterScenario;
    use mobirescue_roadnet::generator::CityConfig;

    fn scenario() -> DisasterScenario {
        let city = CityConfig::small().build(11);
        DisasterScenario::new(&city, Hurricane::florence(), 11)
    }

    #[test]
    fn factor_vector_round_trips_to_array() {
        let v = FactorVector {
            precipitation_mm_h: 1.0,
            wind_mph: 2.0,
            altitude_m: 3.0,
        };
        assert_eq!(v.as_array(), [1.0, 2.0, 3.0]);
        let vec: Vec<f64> = v.into();
        assert_eq!(vec, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn hurricane_factor_set_matches_scenario() {
        let s = scenario();
        let p = s.center();
        let peak = s.hurricane().timeline.peak_hour();
        let via_set = HurricaneFactors.compute(&s, p, peak);
        let direct = s.factors_at(p, peak);
        assert_eq!(via_set, Vec::<f64>::from(direct));
        assert_eq!(HurricaneFactors.dim(), 3);
        assert_eq!(HurricaneFactors.names().len(), 3);
    }

    #[test]
    fn earthquake_factors_attenuate_with_distance() {
        let s = scenario();
        let peak = s.hurricane().timeline.peak_hour();
        let near = EarthquakeFactors.compute(&s, s.center(), peak);
        let far = EarthquakeFactors.compute(&s, s.center().offset_m(8_000.0, 0.0), peak);
        assert!(near[0] > far[0], "magnitude should attenuate");
        assert!(near[2] > far[2], "density should attenuate");
        assert_eq!(EarthquakeFactors.dim(), 3);
    }
}
