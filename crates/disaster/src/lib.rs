//! Disaster substrate for the MobiRescue reproduction.
//!
//! The paper consumes three external disaster products: National Weather
//! Service weather data (precipitation, wind speed), satellite flood imaging
//! (the flood zones that define the remaining available road network G̃),
//! and terrain altitude (from cellphone altimeters). None are available
//! offline, so this crate simulates each with deterministic models that feed
//! the identical downstream interfaces:
//!
//! * [`terrain`] — smooth altitude field with a low downtown basin;
//! * [`hurricane`] — named storms with before/during/after timelines
//!   ([`hurricane::Hurricane::florence`] and
//!   [`hurricane::Hurricane::michael`] presets matching the paper's two
//!   storms);
//! * [`weather`] — space–time precipitation and wind fields;
//! * [`flood`] — raster water-balance flood model producing flood zones and
//!   the per-hour [`mobirescue_roadnet::damage::NetworkCondition`] (G̃);
//! * [`factors`] — the disaster-related factor vector **h** and the
//!   [`factors::FactorSet`] extension point of Section IV-C5;
//! * [`scenario`] — the [`scenario::DisasterScenario`] bundle used by the
//!   rest of the workspace.

#![warn(missing_docs)]

pub mod factors;
pub mod flood;
pub mod hurricane;
pub mod scenario;
pub mod terrain;
pub mod weather;

pub use factors::{EarthquakeFactors, FactorSet, FactorVector, HurricaneFactors};
pub use flood::FloodField;
pub use hurricane::{DisasterPhase, Hurricane, Timeline, HOURS_PER_DAY};
pub use scenario::DisasterScenario;
pub use terrain::TerrainModel;
pub use weather::WeatherField;
