//! Hurricane scenarios and their temporal structure.
//!
//! The paper's dataset spans 15 days before and after Hurricane Florence
//! (Sep 12–15, 2018) and additionally uses Hurricane Michael (Oct 7–16,
//! 2018) as training data. A [`Hurricane`] bundles a named storm with its
//! [`Timeline`] (which days are before/during/after) and peak intensities;
//! [`Hurricane::florence`] and [`Hurricane::michael`] are calibrated presets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Hours per simulated day.
pub const HOURS_PER_DAY: u32 = 24;

/// Phase of a day relative to the disaster (the paper's before/during/after
/// split used in Figures 5 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DisasterPhase {
    /// Before the disaster made impact.
    Before,
    /// While the disaster is active.
    During,
    /// After the disaster has passed.
    After,
}

impl fmt::Display for DisasterPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisasterPhase::Before => write!(f, "before"),
            DisasterPhase::During => write!(f, "during"),
            DisasterPhase::After => write!(f, "after"),
        }
    }
}

/// Temporal structure of a scenario: total length and the disaster window.
///
/// Days are 0-based indices from the scenario start; `disaster_days` is a
/// half-open day range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Total scenario length in days.
    pub total_days: u32,
    /// First day of disaster impact.
    pub disaster_start_day: u32,
    /// First day after the disaster (exclusive end of the window).
    pub disaster_end_day: u32,
}

impl Timeline {
    /// Creates a timeline.
    ///
    /// # Panics
    ///
    /// Panics unless `disaster_start_day < disaster_end_day <= total_days`.
    pub fn new(total_days: u32, disaster_start_day: u32, disaster_end_day: u32) -> Self {
        assert!(
            disaster_start_day < disaster_end_day && disaster_end_day <= total_days,
            "disaster window [{disaster_start_day}, {disaster_end_day}) must fit in {total_days} days"
        );
        Self {
            total_days,
            disaster_start_day,
            disaster_end_day,
        }
    }

    /// Total scenario length in hours.
    pub fn total_hours(&self) -> u32 {
        self.total_days * HOURS_PER_DAY
    }

    /// The day index containing `hour`.
    pub fn day_of_hour(&self, hour: u32) -> u32 {
        hour / HOURS_PER_DAY
    }

    /// Phase of the given day.
    pub fn phase_of_day(&self, day: u32) -> DisasterPhase {
        if day < self.disaster_start_day {
            DisasterPhase::Before
        } else if day < self.disaster_end_day {
            DisasterPhase::During
        } else {
            DisasterPhase::After
        }
    }

    /// Phase of the day containing `hour`.
    pub fn phase_of_hour(&self, hour: u32) -> DisasterPhase {
        self.phase_of_day(self.day_of_hour(hour))
    }

    /// Hour at the center of the disaster window, where the storm peaks.
    pub fn peak_hour(&self) -> u32 {
        (self.disaster_start_day + self.disaster_end_day) * HOURS_PER_DAY / 2
    }

    /// Normalized storm intensity in `[0, 1]` at `hour`.
    ///
    /// Zero outside a ramp around the disaster window, raised-cosine shaped
    /// inside it, peaking at [`Timeline::peak_hour`]. The ramp starts half a
    /// day before the window and decays for a day after it, so flooding can
    /// persist past the nominal end as observed in the paper's Figure 5.
    pub fn intensity(&self, hour: u32) -> f64 {
        let start = (self.disaster_start_day * HOURS_PER_DAY) as f64 - 12.0;
        let end = (self.disaster_end_day * HOURS_PER_DAY) as f64 + 24.0;
        let h = hour as f64;
        if h < start || h > end {
            return 0.0;
        }
        let peak = self.peak_hour() as f64;
        let width = if h <= peak { peak - start } else { end - peak };
        let x = ((h - peak) / width).clamp(-1.0, 1.0);
        0.5 * (1.0 + (std::f64::consts::PI * x).cos())
    }
}

/// A named hurricane with its timeline, peak intensities and spatial
/// signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hurricane {
    /// Storm name ("Florence", "Michael", ...).
    pub name: String,
    /// Temporal structure.
    pub timeline: Timeline,
    /// Peak precipitation at the storm core, mm per hour.
    pub peak_precipitation_mm_h: f64,
    /// Peak sustained wind at the storm core, mph.
    pub peak_wind_mph: f64,
    /// Direction (radians, math convention) of the heavy rain band across the
    /// city: precipitation increases along this direction.
    pub band_angle_rad: f64,
    /// Calendar label of day 0, for printing figure axes ("Sep 1").
    pub day_zero_label: (Month, u32),
}

/// Month names for calendar labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Month {
    /// August.
    Aug,
    /// September.
    Sep,
    /// October.
    Oct,
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Month::Aug => write!(f, "Aug"),
            Month::Sep => write!(f, "Sep"),
            Month::Oct => write!(f, "Oct"),
        }
    }
}

impl Hurricane {
    /// Hurricane Florence preset: a 30-day September window with disaster
    /// days 12–15 (Sep 13–16 impact on Charlotte), heavy rain, south-east
    /// rain band.
    pub fn florence() -> Self {
        Self {
            name: "Florence".to_owned(),
            timeline: Timeline::new(30, 12, 16),
            peak_precipitation_mm_h: 11.0,
            peak_wind_mph: 70.0,
            band_angle_rad: -0.6,
            day_zero_label: (Month::Sep, 1),
        }
    }

    /// Hurricane Michael preset: a 30-day October window with disaster days
    /// 9–12, somewhat weaker rain over Charlotte, different band direction.
    /// Used as the *training* disaster, matching the paper's setup.
    pub fn michael() -> Self {
        Self {
            name: "Michael".to_owned(),
            timeline: Timeline::new(30, 9, 12),
            peak_precipitation_mm_h: 9.0,
            peak_wind_mph: 62.0,
            band_angle_rad: 0.9,
            day_zero_label: (Month::Oct, 1),
        }
    }

    /// Calendar label for a day index, e.g. `"Sep 14"`.
    ///
    /// Month rollover is ignored — scenarios are anchored so the window of
    /// interest stays within one month.
    pub fn day_label(&self, day: u32) -> String {
        let (month, first) = self.day_zero_label;
        format!("{month} {}", first + day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_partition_the_scenario() {
        let tl = Timeline::new(30, 12, 16);
        assert_eq!(tl.phase_of_day(0), DisasterPhase::Before);
        assert_eq!(tl.phase_of_day(11), DisasterPhase::Before);
        assert_eq!(tl.phase_of_day(12), DisasterPhase::During);
        assert_eq!(tl.phase_of_day(15), DisasterPhase::During);
        assert_eq!(tl.phase_of_day(16), DisasterPhase::After);
        assert_eq!(tl.phase_of_day(29), DisasterPhase::After);
    }

    #[test]
    fn intensity_is_zero_before_and_long_after() {
        let tl = Timeline::new(30, 12, 16);
        assert_eq!(tl.intensity(0), 0.0);
        assert_eq!(tl.intensity(10 * 24), 0.0);
        assert_eq!(tl.intensity(20 * 24), 0.0);
    }

    #[test]
    fn intensity_peaks_at_peak_hour() {
        let tl = Timeline::new(30, 12, 16);
        let peak = tl.peak_hour();
        let at_peak = tl.intensity(peak);
        assert!((at_peak - 1.0).abs() < 1e-9);
        for h in 0..tl.total_hours() {
            assert!(tl.intensity(h) <= at_peak + 1e-12);
            assert!(tl.intensity(h) >= 0.0);
        }
    }

    #[test]
    fn intensity_ramps_monotonically_to_peak() {
        let tl = Timeline::new(30, 12, 16);
        let peak = tl.peak_hour();
        let mut last = -1.0;
        for h in (11 * 24)..=peak {
            let i = tl.intensity(h);
            assert!(i + 1e-12 >= last, "dip at hour {h}");
            last = i;
        }
    }

    #[test]
    fn hour_day_mapping() {
        let tl = Timeline::new(30, 12, 16);
        assert_eq!(tl.day_of_hour(0), 0);
        assert_eq!(tl.day_of_hour(23), 0);
        assert_eq!(tl.day_of_hour(24), 1);
        assert_eq!(tl.total_hours(), 720);
        assert_eq!(tl.phase_of_hour(13 * 24), DisasterPhase::During);
    }

    #[test]
    fn presets_differ_and_label_days() {
        let f = Hurricane::florence();
        let m = Hurricane::michael();
        assert_ne!(f.timeline, m.timeline);
        assert_eq!(f.day_label(13), "Sep 14");
        assert_eq!(m.day_label(9), "Oct 10");
    }

    #[test]
    #[should_panic(expected = "disaster window")]
    fn invalid_window_rejected() {
        let _ = Timeline::new(30, 16, 12);
    }
}
