//! Flood dynamics and the operable-network computation.
//!
//! The paper obtains flood zones from National Weather Service satellite
//! imaging and removes inundated road segments to form the remaining
//! available network G̃. Here a [`FloodField`] simulates the same product: a
//! raster water-balance model (rain fills cells, low-altitude cells drain
//! slowly) precomputed for every hour of the scenario. From it we derive
//! flood-zone membership for arbitrary positions and the
//! [`NetworkCondition`] (G̃) for any hour.

use crate::terrain::TerrainModel;
use crate::weather::WeatherField;
use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::geo::{BoundingBox, GeoPoint};
use mobirescue_roadnet::graph::RoadNetwork;
use serde::{Deserialize, Serialize};

/// Water depth (meters) above which a cell counts as a flood zone.
pub const FLOOD_DEPTH_M: f64 = 0.30;

/// Water depth above which a still-passable road is slowed.
pub const WET_DEPTH_M: f64 = 0.08;

/// Raster flood state over the whole scenario: `depth(cell, hour)`.
///
/// # Examples
///
/// ```
/// use mobirescue_disaster::flood::FloodField;
/// use mobirescue_disaster::hurricane::Hurricane;
/// use mobirescue_disaster::terrain::TerrainModel;
/// use mobirescue_disaster::weather::WeatherField;
/// use mobirescue_roadnet::geo::{BoundingBox, GeoPoint};
///
/// let center = GeoPoint::new(35.2271, -80.8431);
/// let bbox = BoundingBox::new(center.offset_m(-11_000.0, -11_000.0),
///                             center.offset_m(11_000.0, 11_000.0));
/// let terrain = TerrainModel::new(center, 1);
/// let weather = WeatherField::new(center, Hurricane::florence(), 1);
/// let flood = FloodField::compute(bbox, &terrain, &weather, 40);
/// assert!(!flood.is_flooded(center, 0), "dry before the storm");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FloodField {
    bbox: BoundingBox,
    cols: usize,
    rows: usize,
    cell_m: f64,
    hours: u32,
    /// Water depth in meters, indexed `[hour * rows * cols + row * cols + col]`.
    depth: Vec<f32>,
}

impl FloodField {
    /// Runs the water-balance model on a `resolution × resolution` raster
    /// over `bbox` for the weather field's whole scenario.
    ///
    /// # Panics
    ///
    /// Panics if `resolution < 2`.
    pub fn compute(
        bbox: BoundingBox,
        terrain: &TerrainModel,
        weather: &WeatherField,
        resolution: usize,
    ) -> Self {
        assert!(resolution >= 2, "raster resolution must be at least 2");
        let hours = weather.hurricane().timeline.total_hours();
        let (cols, rows) = (resolution, resolution);
        let (width_m, height_m) = {
            let (e, n) = bbox.north_east.local_xy_m(bbox.south_west);
            (e, n)
        };
        let cell_m = (width_m / cols as f64).max(height_m / rows as f64);

        // Precompute per-cell center position and altitude.
        let mut centers = Vec::with_capacity(rows * cols);
        let mut altitude = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let east = (c as f64 + 0.5) / cols as f64 * width_m;
                let north = (r as f64 + 0.5) / rows as f64 * height_m;
                let p = bbox.south_west.offset_m(east, north);
                centers.push(p);
                altitude.push(terrain.altitude_m(p));
            }
        }
        let (alt_min, alt_max) = altitude
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &a| {
                (lo.min(a), hi.max(a))
            });
        let alt_span = (alt_max - alt_min).max(1.0);

        // Water balance: each hour, water += rain * runoff(alt);
        // water *= retention(alt). Low ground both collects more runoff and
        // drains more slowly, so it floods first and recovers last.
        let mut depth = vec![0f32; hours as usize * rows * cols];
        let mut water = vec![0f64; rows * cols];
        for h in 0..hours {
            for (i, (&p, &alt)) in centers.iter().zip(altitude.iter()).enumerate() {
                let lowness = 1.0 - (alt - alt_min) / alt_span; // 0 = highest, 1 = lowest
                let rain_m = weather.precipitation_mm_h(p, h) / 1000.0;
                let runoff = 0.4 + 6.0 * lowness * lowness;
                let retention = 0.90 + 0.07 * lowness; // hourly decay factor
                water[i] = (water[i] + rain_m * runoff) * retention;
                depth[h as usize * rows * cols + i] = water[i] as f32;
            }
        }
        Self {
            bbox,
            cols,
            rows,
            cell_m,
            hours,
            depth,
        }
    }

    /// Scenario length in hours.
    pub fn hours(&self) -> u32 {
        self.hours
    }

    /// Raster bounding box.
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Edge length of one raster cell, meters.
    pub fn cell_size_m(&self) -> f64 {
        self.cell_m
    }

    fn cell_index(&self, p: GeoPoint) -> usize {
        let (e, n) = p.local_xy_m(self.bbox.south_west);
        let (width_m, height_m) = {
            let (we, wn) = self.bbox.north_east.local_xy_m(self.bbox.south_west);
            (we, wn)
        };
        let c = ((e / width_m * self.cols as f64) as isize).clamp(0, self.cols as isize - 1);
        let r = ((n / height_m * self.rows as f64) as isize).clamp(0, self.rows as isize - 1);
        r as usize * self.cols + c as usize
    }

    /// Water depth at `p` during `hour`, meters. Positions outside the raster
    /// clamp to the nearest edge cell.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is past the end of the scenario.
    pub fn depth_m(&self, p: GeoPoint, hour: u32) -> f64 {
        assert!(
            hour < self.hours,
            "hour {hour} outside scenario of {} hours",
            self.hours
        );
        self.depth[hour as usize * self.rows * self.cols + self.cell_index(p)] as f64
    }

    /// Whether `p` lies in a flood zone during `hour` (depth above
    /// [`FLOOD_DEPTH_M`]).
    ///
    /// # Panics
    ///
    /// Panics if `hour` is past the end of the scenario.
    pub fn is_flooded(&self, p: GeoPoint, hour: u32) -> bool {
        self.depth_m(p, hour) >= FLOOD_DEPTH_M
    }

    /// Fraction of raster cells flooded during `hour`.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is past the end of the scenario.
    pub fn flooded_fraction(&self, hour: u32) -> f64 {
        assert!(hour < self.hours, "hour {hour} outside scenario");
        let base = hour as usize * self.rows * self.cols;
        let n = self.rows * self.cols;
        let flooded = (0..n)
            .filter(|i| self.depth[base + i] as f64 >= FLOOD_DEPTH_M)
            .count();
        flooded as f64 / n as f64
    }

    /// The remaining available network G̃ at `hour`: flooded segments are
    /// blocked, wet segments slowed proportionally to water depth.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is past the end of the scenario.
    pub fn network_condition(&self, net: &RoadNetwork, hour: u32) -> NetworkCondition {
        let mut cond = NetworkCondition::pristine(net);
        for sid in net.segment_ids() {
            let depth = self.depth_m(net.segment_midpoint(sid), hour);
            if depth >= FLOOD_DEPTH_M {
                cond.block(sid);
            } else if depth >= WET_DEPTH_M {
                // Linear slowdown from 1.0 at WET_DEPTH to 0.35 at FLOOD_DEPTH.
                let x = (depth - WET_DEPTH_M) / (FLOOD_DEPTH_M - WET_DEPTH_M);
                cond.set_speed_factor(sid, 1.0 - 0.65 * x);
            }
        }
        cond
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hurricane::Hurricane;

    fn setup() -> (GeoPoint, FloodField) {
        let center = GeoPoint::new(35.2271, -80.8431);
        let bbox = BoundingBox::new(
            center.offset_m(-11_000.0, -11_000.0),
            center.offset_m(11_000.0, 11_000.0),
        );
        let terrain = TerrainModel::new(center, 1);
        let weather = WeatherField::new(center, Hurricane::florence(), 1);
        (center, FloodField::compute(bbox, &terrain, &weather, 40))
    }

    #[test]
    fn dry_before_disaster() {
        let (_, flood) = setup();
        for h in (0..10 * 24).step_by(7) {
            assert_eq!(flood.flooded_fraction(h), 0.0, "flooding at hour {h}");
        }
    }

    #[test]
    fn downtown_floods_during_disaster() {
        let (center, flood) = setup();
        let peak = Hurricane::florence().timeline.peak_hour();
        // By a day after the peak the downtown basin has accumulated water.
        assert!(
            flood.is_flooded(center, peak + 24),
            "downtown depth {} m",
            flood.depth_m(center, peak + 24)
        );
        let frac = flood.flooded_fraction(peak + 24);
        assert!(frac > 0.05 && frac < 0.9, "flooded fraction {frac}");
    }

    #[test]
    fn flooding_recedes_after_disaster() {
        let (_, flood) = setup();
        let tl = Hurricane::florence().timeline;
        let during = flood.flooded_fraction(tl.peak_hour() + 24);
        let after = flood.flooded_fraction((tl.disaster_end_day + 6) * 24);
        let much_later = flood.flooded_fraction(29 * 24);
        assert!(
            after < during,
            "no recovery: during {during}, after {after}"
        );
        assert!(much_later <= after);
    }

    #[test]
    fn flooding_persists_shortly_after_disaster() {
        // Figure 5: flow rates are still depressed on Sep 17–19, so some
        // flooding must persist past the disaster window.
        let (_, flood) = setup();
        let tl = Hurricane::florence().timeline;
        let day_after = flood.flooded_fraction((tl.disaster_end_day + 1) * 24);
        assert!(
            day_after > 0.01,
            "flooding vanished immediately: {day_after}"
        );
    }

    #[test]
    fn network_condition_blocks_flooded_segments() {
        let (center, flood) = setup();
        let city = mobirescue_roadnet::generator::CityConfig::small().build(5);
        let peak = Hurricane::florence().timeline.peak_hour();
        let cond = flood.network_condition(&city.network, peak + 24);
        assert!(
            cond.operable_count() < city.network.num_segments(),
            "nothing blocked"
        );
        for sid in city.network.segment_ids() {
            let depth = flood.depth_m(city.network.segment_midpoint(sid), peak + 24);
            assert_eq!(cond.is_operable(sid), depth < FLOOD_DEPTH_M);
        }
        let _ = center;
    }

    #[test]
    fn low_ground_floods_deeper_than_high_ground() {
        let (center, flood) = setup();
        let terrain = TerrainModel::new(center, 1);
        let peak = Hurricane::florence().timeline.peak_hour();
        // Downtown basin vs a far corner (higher ground on average).
        let high = center.offset_m(9_500.0, 9_500.0);
        if terrain.altitude_m(high) > terrain.altitude_m(center) + 20.0 {
            assert!(flood.depth_m(center, peak + 12) > flood.depth_m(high, peak + 12));
        }
    }

    #[test]
    #[should_panic(expected = "outside scenario")]
    fn hour_out_of_range_panics() {
        let (center, flood) = setup();
        let _ = flood.depth_m(center, 10_000);
    }
}
