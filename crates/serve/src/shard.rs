//! The shard worker: one OS thread owning one [`World`] and its
//! dispatcher.
//!
//! Shards are independent cities (the paper dispatches one metropolitan
//! area; a deployment hosts several). Each worker receives commands over a
//! channel, which doubles as the epoch barrier: the service sends
//! `RunEpoch` to every shard and then waits for every status reply, so
//! shards advance epochs in lockstep while ingestion keeps running on
//! producer threads.
//!
//! The worker measures its dispatcher's per-epoch compute time through the
//! service [`Clock`] and feeds the *previous* epoch's measurement into the
//! next [`World::run_epoch`] as extra order latency — real compute time
//! delays order application exactly as `sim::engine` models dispatch
//! latency (the paper's Figure 13 penalty). On a [`crate::SimClock`] the
//! measurement is exactly zero, which is what makes service runs
//! reproducible in tests.

use crate::clock::Clock;
use crate::registry::{ModelBundle, ModelRegistry};
use mobirescue_core::predictor::RequestPredictor;
use mobirescue_core::rl_dispatch::{MobiRescueDispatcher, RlDispatchConfig, FEATURE_DIM};
use mobirescue_core::scenario::Scenario;
use mobirescue_rl::qscore::{QScore, QScoreConfig};
use mobirescue_roadnet::planner::PlannerStats;
use mobirescue_sim::dispatcher::{DispatchState, Dispatcher};
use mobirescue_sim::{DispatchPlan, EpochReport, RequestSpec, SimConfig, World};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Commands the service sends to a shard worker.
pub(crate) enum ShardCmd {
    /// Inject the drained requests, run one dispatch epoch, reply with
    /// [`ShardReply::Status`].
    RunEpoch {
        /// Requests drained from the shard's ingest queue.
        requests: Vec<RequestSpec>,
    },
    /// Reply with the shard's serialized state.
    Snapshot,
    /// Replace the shard's state with a parsed snapshot.
    Restore(String),
    /// Exit the worker thread.
    Shutdown,
}

/// Point-in-time shard counters reported back to the service.
#[derive(Debug, Clone)]
pub(crate) struct ShardStatus {
    pub epochs: u32,
    pub injected: u64,
    pub rejected: u64,
    pub waiting: usize,
    pub picked_up: usize,
    pub delivered: usize,
    pub model_version: u64,
    /// Dispatcher compute time measured during the last epoch, ms.
    pub compute_ms: u64,
    /// Cumulative routing-cache counters of the shard's world (carried
    /// across snapshot/restore).
    pub routing: PlannerStats,
    /// The epoch just completed (`None` after a restore).
    pub report: Option<EpochReport>,
    /// A model hot-swap that failed this epoch (the shard keeps serving
    /// with its previous dispatcher).
    pub swap_error: Option<String>,
}

/// Worker replies.
pub(crate) enum ShardReply {
    Epoch(Result<Box<ShardStatus>, String>),
    Snapshot(Result<String, String>),
    Restored(Result<Box<ShardStatus>, String>),
}

/// Everything a worker needs to run.
pub(crate) struct ShardSpec {
    pub scenario: Arc<Scenario>,
    pub registry: Arc<ModelRegistry>,
    pub clock: Arc<dyn Clock>,
    pub sim: SimConfig,
    pub rl: RlDispatchConfig,
}

/// Wraps the real dispatcher to measure its compute time through the
/// service clock.
struct TimedDispatcher<'d, 'a> {
    inner: &'d mut MobiRescueDispatcher<'a>,
    clock: &'d dyn Clock,
    spent_ms: u64,
}

impl Dispatcher for TimedDispatcher<'_, '_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn compute_latency_s(&self, state: &DispatchState<'_>) -> f64 {
        self.inner.compute_latency_s(state)
    }

    fn dispatch(&mut self, state: &DispatchState<'_>) -> DispatchPlan {
        let t0 = self.clock.now_ms();
        let plan = self.inner.dispatch(state);
        self.spent_ms += self.clock.now_ms().saturating_sub(t0);
        plan
    }
}

/// Builds a frozen-greedy dispatcher from a model bundle.
fn build_dispatcher<'a>(
    scenario: &'a Scenario,
    rl: &RlDispatchConfig,
    bundle: &ModelBundle,
) -> Result<MobiRescueDispatcher<'a>, String> {
    let mut qcfg = QScoreConfig::new(FEATURE_DIM);
    qcfg.hidden = rl.hidden.clone();
    qcfg.lr = rl.lr;
    qcfg.gamma = rl.discount;
    qcfg.seed = rl.seed;
    let policy = match &bundle.policy {
        Some(net) => {
            if net.input_dim() != FEATURE_DIM || net.output_dim() != 1 {
                return Err(format!(
                    "policy network is {}→{}, dispatcher needs {FEATURE_DIM}→1",
                    net.input_dim(),
                    net.output_dim()
                ));
            }
            QScore::from_mlp(qcfg, net.clone())
        }
        None => QScore::new(qcfg),
    };
    let predictor: Option<RequestPredictor> = bundle.predictor.clone();
    let mut d = MobiRescueDispatcher::try_with_policy(scenario, predictor, rl.clone(), policy)?;
    // Serving is frozen greedy evaluation; training happens offline and
    // arrives through the registry.
    d.set_training(false);
    Ok(d)
}

/// Spawns the worker thread for one shard.
pub(crate) fn spawn_shard(
    index: usize,
    spec: ShardSpec,
    rx: Receiver<ShardCmd>,
    tx: Sender<ShardReply>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("mobirescue-shard-{index}"))
        .spawn(move || run_shard(spec, &rx, &tx))
        .expect("spawning a shard thread never fails on this platform")
}

fn run_shard(spec: ShardSpec, rx: &Receiver<ShardCmd>, tx: &Sender<ShardReply>) {
    let scenario = &spec.scenario;
    // The service validated this exact construction before spawning.
    let mut world = World::new(&scenario.city, &scenario.conditions, &spec.sim)
        .expect("service validated the world configuration");
    let mut bundle = spec.registry.current();
    let mut dispatcher = build_dispatcher(scenario, &spec.rl, &bundle).ok();
    let mut injected: u64 = 0;
    let mut rejected: u64 = 0;
    let mut carry_ms: u64 = 0;
    // A restored world starts with a fresh planner; its pre-snapshot
    // counters are carried in this base so totals survive restores.
    let mut routing_base = PlannerStats::default();

    let routing_total = |world: &World<'_>, base: PlannerStats| {
        let now = world.routing_stats();
        PlannerStats {
            hits: base.hits + now.hits,
            misses: base.misses + now.misses,
        }
    };

    let status = |world: &World<'_>,
                  injected: u64,
                  rejected: u64,
                  version: u64,
                  compute_ms: u64,
                  routing: PlannerStats,
                  report: Option<EpochReport>,
                  swap_error: Option<String>| {
        Box::new(ShardStatus {
            epochs: world.epoch_index(),
            injected,
            rejected,
            waiting: world.num_waiting(),
            picked_up: world.num_picked_up(),
            delivered: world.num_delivered(),
            model_version: version,
            compute_ms,
            routing,
            report,
            swap_error,
        })
    };

    while let Ok(cmd) = rx.recv() {
        match cmd {
            ShardCmd::RunEpoch { requests } => {
                // Hot-swap check at the epoch boundary only: mid-epoch the
                // dispatcher stays whatever the epoch started with.
                let mut swap_error = None;
                let current = spec.registry.current();
                if current.version != bundle.version || dispatcher.is_none() {
                    match build_dispatcher(scenario, &spec.rl, &current) {
                        Ok(d) => {
                            dispatcher = Some(d);
                            bundle = current;
                        }
                        Err(e) => swap_error = Some(e),
                    }
                }
                let Some(dispatcher) = dispatcher.as_mut() else {
                    let message =
                        swap_error.unwrap_or_else(|| "no dispatcher could be built".to_owned());
                    if tx.send(ShardReply::Epoch(Err(message))).is_err() {
                        return;
                    }
                    continue;
                };
                for r in requests {
                    match world.inject_request(r) {
                        Ok(_) => injected += 1,
                        Err(_) => rejected += 1,
                    }
                }
                let mut timed = TimedDispatcher {
                    inner: dispatcher,
                    clock: &*spec.clock,
                    spent_ms: 0,
                };
                let report = world.run_epoch(&mut timed, carry_ms as f64 / 1_000.0);
                let compute_ms = timed.spent_ms;
                carry_ms = compute_ms;
                let st = status(
                    &world,
                    injected,
                    rejected,
                    bundle.version,
                    compute_ms,
                    routing_total(&world, routing_base),
                    Some(report),
                    swap_error,
                );
                if tx.send(ShardReply::Epoch(Ok(st))).is_err() {
                    return;
                }
            }
            ShardCmd::Snapshot => {
                let routing = routing_total(&world, routing_base);
                let mut text = format!(
                    "shardstate {injected} {rejected} {carry_ms} {} {} {}\n",
                    bundle.version, routing.hits, routing.misses
                );
                text.push_str(&world.snapshot_text());
                if tx.send(ShardReply::Snapshot(Ok(text))).is_err() {
                    return;
                }
            }
            ShardCmd::Restore(text) => {
                let reply = match parse_shard_snapshot(scenario, &text) {
                    Ok((w, inj, rej, carry, version, routing)) => {
                        world = w;
                        injected = inj;
                        rejected = rej;
                        carry_ms = carry;
                        routing_base = routing;
                        // The dispatcher rebuilds from the registry at the
                        // next epoch; until then report the version the
                        // snapshot ran with.
                        Ok(status(
                            &world,
                            injected,
                            rejected,
                            version,
                            carry_ms,
                            routing_total(&world, routing_base),
                            None,
                            None,
                        ))
                    }
                    Err(e) => Err(e),
                };
                if tx.send(ShardReply::Restored(reply)).is_err() {
                    return;
                }
            }
            ShardCmd::Shutdown => return,
        }
    }
}

type ParsedShard<'a> = (World<'a>, u64, u64, u64, u64, PlannerStats);

fn parse_shard_snapshot<'a>(scenario: &'a Scenario, text: &str) -> Result<ParsedShard<'a>, String> {
    let (first, rest) = text
        .split_once('\n')
        .ok_or_else(|| "empty shard snapshot".to_owned())?;
    let mut p = first.split_whitespace();
    if p.next() != Some("shardstate") {
        return Err("missing shardstate line".to_owned());
    }
    let mut next_u64 = |what: &str| -> Result<u64, String> {
        p.next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad {what} in shardstate"))
    };
    let injected = next_u64("injected")?;
    let rejected = next_u64("rejected")?;
    let carry_ms = next_u64("carry latency")?;
    let version = next_u64("model version")?;
    let routing = PlannerStats {
        hits: next_u64("routing hits")?,
        misses: next_u64("routing misses")?,
    };
    let world = World::restore_text(&scenario.city, &scenario.conditions, rest)
        .map_err(|e| e.to_string())?;
    Ok((world, injected, rejected, carry_ms, version, routing))
}
