//! The shard worker: one OS thread owning one [`World`] and its
//! dispatcher.
//!
//! Shards are independent cities (the paper dispatches one metropolitan
//! area; a deployment hosts several). Each worker receives commands over a
//! channel, which doubles as the epoch barrier: the service sends
//! `RunEpoch` to every shard and then waits for every status reply, so
//! shards advance epochs in lockstep while ingestion keeps running on
//! producer threads.
//!
//! The worker measures its dispatcher's per-epoch compute time through the
//! service [`Clock`] and feeds the *previous* epoch's measurement into the
//! next [`World::run_epoch`] as extra order latency — real compute time
//! delays order application exactly as `sim::engine` models dispatch
//! latency (the paper's Figure 13 penalty). On a [`crate::SimClock`] the
//! measurement is exactly zero, which is what makes service runs
//! reproducible in tests.
//!
//! # Graceful degradation
//!
//! A shard never skips an epoch silently. When the DQN dispatcher is
//! unavailable or too slow it falls back to the paper's nearest-request
//! heuristic for that epoch and counts it as *degraded*:
//!
//! * the per-epoch compute budget (`RunEpoch::budget_ms`) is exceeded —
//!   the plan computed late is discarded and the heuristic replans, via
//!   [`World::run_epoch_with_deadline`];
//! * a registry hot-swap fails and no previously-built dispatcher exists
//!   (or a [`crate::FaultInjector`] injected a swap failure);
//!
//! The budget is checked against the *shard's own* measured dispatch time,
//! not an absolute clock instant: shards share one service clock, so an
//! injected stall on one shard must not leak into its neighbours'
//! deadline decisions.

use crate::clock::{Clock, ClockTimeSource};
use crate::fault::{FaultInjector, ShardFault};
use crate::registry::{ModelBundle, ModelRegistry};
use mobirescue_core::predictor::RequestPredictor;
use mobirescue_core::rl_dispatch::{MobiRescueDispatcher, RlDispatchConfig, FEATURE_DIM};
use mobirescue_core::scenario::Scenario;
use mobirescue_obs::{PhaseTimer, Registry, TimeSource};
use mobirescue_rl::qscore::{PairTransition, QScore, QScoreConfig};
use mobirescue_roadnet::planner::PlannerStats;
use mobirescue_sim::dispatcher::{DispatchState, Dispatcher};
use mobirescue_sim::{
    DispatchPlan, EpochReport, NearestRequestDispatcher, RequestSpec, SimConfig, World,
};
use std::cell::Cell;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Why a shard's model hot-swap did not take effect this epoch. Typed so
/// the service can attribute degradation causes precisely (chaos counters
/// compare injected faults against observed swap failures by kind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// A fault injector simulated the registry being unreachable.
    Injected,
    /// The current bundle failed to build a dispatcher (parse or shape
    /// failure in a directly-installed checkpoint).
    Build(String),
    /// A rollout canary directive's candidate failed to build on this
    /// shard — the service counts it as a canary gate failure.
    Rollout(String),
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::Injected => write!(f, "injected registry swap failure"),
            SwapError::Build(m) => write!(f, "{m}"),
            SwapError::Rollout(m) => write!(f, "rollout candidate rejected: {m}"),
        }
    }
}

/// Per-epoch rollout instruction from the service's promotion pipeline.
#[derive(Clone)]
pub(crate) enum RolloutDirective {
    /// Score the candidate side-by-side on a twin of this epoch; the
    /// incumbent keeps serving the primary dispatch.
    Shadow(Arc<ModelBundle>),
    /// Serve this epoch with the candidate (canary shards only).
    Canary(Arc<ModelBundle>),
}

/// Outcome of one shadow evaluation epoch.
#[derive(Debug, Clone)]
pub(crate) struct ShadowReport {
    /// The paper reward the candidate earned on the twin epoch.
    pub candidate_reward: f64,
    /// Why the candidate could not be evaluated (build/restore failure) —
    /// an immediate rollout gate failure.
    pub error: Option<String>,
}

/// Commands the service sends to a shard worker.
pub(crate) enum ShardCmd {
    /// Inject the drained requests, run one dispatch epoch, reply with
    /// [`ShardReply::Epoch`].
    RunEpoch {
        /// Requests drained from the shard's ingest queue.
        requests: Vec<RequestSpec>,
        /// Per-epoch dispatch compute budget, ms. When the primary
        /// dispatcher's measured compute exceeds it, its plan is discarded
        /// and the heuristic fallback replans (a degraded epoch).
        budget_ms: Option<u64>,
        /// In-flight rollout instruction for this epoch, if any.
        rollout: Option<RolloutDirective>,
    },
    /// Reply with the shard's serialized state.
    Snapshot,
    /// Replace the shard's state with a parsed snapshot.
    Restore(String),
    /// Exit the worker thread.
    Shutdown,
}

/// Point-in-time shard counters reported back to the service.
#[derive(Debug, Clone)]
pub(crate) struct ShardStatus {
    pub epochs: u32,
    pub injected: u64,
    pub rejected: u64,
    pub waiting: usize,
    pub picked_up: usize,
    pub delivered: usize,
    pub model_version: u64,
    /// Dispatcher compute time measured during the last epoch, ms.
    pub compute_ms: u64,
    /// Cumulative routing-cache counters of the shard's world (carried
    /// across snapshot/restore).
    pub routing: PlannerStats,
    /// Epochs served by the heuristic fallback instead of the DQN policy
    /// (cumulative, carried across snapshot/restore).
    pub degraded: u64,
    /// Whether the epoch just completed was degraded.
    pub degraded_now: bool,
    /// The epoch just completed (`None` after a restore).
    pub report: Option<EpochReport>,
    /// A model hot-swap that failed this epoch (the shard keeps serving —
    /// with its previous dispatcher, or degraded on the fallback).
    pub swap_error: Option<SwapError>,
    /// Paper reward of the epoch just served (0 after a restore).
    pub reward: f64,
    /// Shadow evaluation result, when a shadow directive was attached.
    pub shadow: Option<ShadowReport>,
    /// Transitions tapped from the primary dispatcher this epoch (empty
    /// unless the spec enables the tap; dropped on degraded epochs, where
    /// the heuristic's plan — not the tapped decisions — drove the world).
    pub transitions: Vec<PairTransition>,
}

/// Worker replies.
pub(crate) enum ShardReply {
    Epoch(Result<Box<ShardStatus>, String>),
    Snapshot(Result<String, String>),
    Restored(Result<Box<ShardStatus>, String>),
}

/// Everything a worker needs to run.
pub(crate) struct ShardSpec {
    pub scenario: Arc<Scenario>,
    pub registry: Arc<ModelRegistry>,
    pub clock: Arc<dyn Clock>,
    pub sim: SimConfig,
    pub rl: RlDispatchConfig,
    /// Fault schedule shared with the service (chaos testing only).
    pub faults: Option<Arc<FaultInjector>>,
    /// Service observability registry: workers record the per-epoch phase
    /// histograms and publish their routing-cache gauges into it.
    pub obs: Arc<Registry>,
    /// Tap the primary dispatcher's transitions for the online trainer.
    /// The tap never changes action selection, so enabling it leaves
    /// dispatch bit-identical.
    pub tap_transitions: bool,
}

/// Wraps the real dispatcher to measure its compute time through the
/// service clock. The measurement accumulates into a shared [`Cell`] so
/// the epoch-budget check can read it while the wrapper is mutably
/// borrowed by the running epoch.
struct TimedDispatcher<'d> {
    inner: &'d mut dyn Dispatcher,
    clock: &'d dyn Clock,
    spent_ms: &'d Cell<u64>,
    /// Injected stall applied once, at the first dispatch call.
    stall_ms: u64,
}

impl Dispatcher for TimedDispatcher<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn compute_latency_s(&self, state: &DispatchState<'_>) -> f64 {
        self.inner.compute_latency_s(state)
    }

    fn dispatch(&mut self, state: &DispatchState<'_>) -> DispatchPlan {
        let t0 = self.clock.now_ms();
        let plan = self.inner.dispatch(state);
        let elapsed = self.clock.now_ms().saturating_sub(t0);
        // An injected stall is accounted directly rather than slept on the
        // clock: shards share the service clock, so sleeping would leak
        // one shard's stall into its neighbours' concurrently measured
        // epochs (and make SimClock runs nondeterministic).
        self.spent_ms
            .set(self.spent_ms.get() + elapsed + self.stall_ms);
        self.stall_ms = 0;
        plan
    }
}

/// Builds a frozen-greedy dispatcher from a model bundle.
fn build_dispatcher<'a>(
    scenario: &'a Scenario,
    rl: &RlDispatchConfig,
    bundle: &ModelBundle,
) -> Result<MobiRescueDispatcher<'a>, String> {
    let mut qcfg = QScoreConfig::new(FEATURE_DIM);
    qcfg.hidden = rl.hidden.clone();
    qcfg.lr = rl.lr;
    qcfg.gamma = rl.discount;
    qcfg.seed = rl.seed;
    let policy = match &bundle.policy {
        Some(net) => {
            if net.input_dim() != FEATURE_DIM || net.output_dim() != 1 {
                return Err(format!(
                    "policy network is {}→{}, dispatcher needs {FEATURE_DIM}→1",
                    net.input_dim(),
                    net.output_dim()
                ));
            }
            QScore::from_mlp(qcfg, net.clone())
        }
        None => QScore::new(qcfg),
    };
    let predictor: Option<RequestPredictor> = bundle.predictor.clone();
    let mut d = MobiRescueDispatcher::try_with_policy(scenario, predictor, rl.clone(), policy)?;
    // Serving is frozen greedy evaluation; training happens offline and
    // arrives through the registry.
    d.set_training(false);
    Ok(d)
}

/// Spawns the worker thread for one shard.
pub(crate) fn spawn_shard(
    index: usize,
    spec: ShardSpec,
    rx: Receiver<ShardCmd>,
    tx: Sender<ShardReply>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("mobirescue-shard-{index}"))
        .spawn(move || run_shard(index, spec, &rx, &tx))
        .expect("spawning a shard thread never fails on this platform")
}

fn run_shard(index: usize, spec: ShardSpec, rx: &Receiver<ShardCmd>, tx: &Sender<ShardReply>) {
    let scenario = &spec.scenario;
    // Phase spans measure on the *service* clock, like everything else the
    // worker times: under a SimClock every span is exactly zero, so
    // instrumented runs stay bit-identical to uninstrumented ones.
    let time_source: Arc<dyn TimeSource> = Arc::new(ClockTimeSource(Arc::clone(&spec.clock)));
    let phase_timer = PhaseTimer::new(Arc::clone(&time_source));
    let obs = Arc::clone(&spec.obs);
    let h_ingest = obs.histogram("epoch.ingest_ms");
    let h_predict = obs.histogram("epoch.predict_ms");
    let h_dispatch = obs.histogram("epoch.dispatch_ms");
    let h_routing = obs.histogram("epoch.routing_ms");
    let routing_prefix = format!("routing.shard{index}");
    // The service validated this exact construction before spawning.
    let mut world = World::new(&scenario.city, &scenario.conditions, &spec.sim)
        .expect("service validated the world configuration");
    world.set_time_source(phase_timer.clone());
    let mut bundle = spec.registry.current();
    let mut dispatcher = build_dispatcher(scenario, &spec.rl, &bundle).ok();
    if let Some(d) = dispatcher.as_mut() {
        d.set_time_source(phase_timer.clone());
        d.set_transition_tap(spec.tap_transitions);
    }
    let mut fallback = NearestRequestDispatcher::default();
    let mut injected: u64 = 0;
    let mut rejected: u64 = 0;
    let mut carry_ms: u64 = 0;
    let mut degraded: u64 = 0;
    // A restored world starts with a fresh planner; its pre-snapshot
    // counters are carried in this base so totals survive restores.
    let mut routing_base = PlannerStats::default();

    let routing_total = |world: &World<'_>, base: PlannerStats| {
        let now = world.routing_stats();
        PlannerStats {
            hits: base.hits + now.hits,
            misses: base.misses + now.misses,
        }
    };

    #[allow(clippy::too_many_arguments)] // a plain projection of worker state
    let status = |world: &World<'_>,
                  injected: u64,
                  rejected: u64,
                  version: u64,
                  compute_ms: u64,
                  routing: PlannerStats,
                  degraded: u64,
                  degraded_now: bool,
                  report: Option<EpochReport>,
                  swap_error: Option<SwapError>,
                  reward: f64,
                  shadow: Option<ShadowReport>,
                  transitions: Vec<PairTransition>| {
        Box::new(ShardStatus {
            epochs: world.epoch_index(),
            injected,
            rejected,
            waiting: world.num_waiting(),
            picked_up: world.num_picked_up(),
            delivered: world.num_delivered(),
            model_version: version,
            compute_ms,
            routing,
            degraded,
            degraded_now,
            report,
            swap_error,
            reward,
            shadow,
            transitions,
        })
    };

    while let Ok(cmd) = rx.recv() {
        match cmd {
            ShardCmd::RunEpoch {
                requests,
                budget_ms,
                rollout,
            } => {
                let epoch = world.epoch_index();
                let faults = spec.faults.as_deref();
                // An injected crash kills the worker mid-epoch without a
                // reply — the service sees exactly what a real thread
                // death looks like: a dead channel. The fault was consumed
                // above, so the post-restore replay of this epoch runs it
                // unfaulted (replay masking).
                let stall_ms = match faults.and_then(|f| f.take_shard_fault(epoch, index)) {
                    Some(ShardFault::Crash) => return,
                    Some(ShardFault::Stall(ms)) => ms,
                    None => 0,
                };
                // Hot-swap check at the epoch boundary only: mid-epoch the
                // dispatcher stays whatever the epoch started with. An
                // injected swap failure simulates the registry being
                // unreachable: no swap happens and this epoch is served
                // degraded on the fallback. A canary directive overrides
                // the registry — the shard serves the candidate bundle —
                // while a shadow directive leaves the incumbent path
                // untouched and only pins the twin inputs below.
                let mut swap_error: Option<SwapError> = None;
                let mut force_fallback = false;
                let mut shadow_cand: Option<Arc<ModelBundle>> = None;
                match &rollout {
                    Some(RolloutDirective::Canary(cand)) => {
                        if faults.is_some_and(|f| f.take_swap_failure(epoch, index)) {
                            swap_error = Some(SwapError::Injected);
                            force_fallback = true;
                        } else if !Arc::ptr_eq(&bundle, cand) || dispatcher.is_none() {
                            match build_dispatcher(scenario, &spec.rl, cand) {
                                Ok(mut d) => {
                                    d.set_time_source(phase_timer.clone());
                                    d.set_transition_tap(spec.tap_transitions);
                                    dispatcher = Some(d);
                                    bundle = Arc::clone(cand);
                                }
                                Err(e) => swap_error = Some(SwapError::Rollout(e)),
                            }
                        }
                    }
                    directive => {
                        if let Some(RolloutDirective::Shadow(cand)) = directive {
                            shadow_cand = Some(Arc::clone(cand));
                        }
                        if faults.is_some_and(|f| f.take_swap_failure(epoch, index)) {
                            swap_error = Some(SwapError::Injected);
                            force_fallback = true;
                        } else {
                            let current = spec.registry.current();
                            // Compare by Arc identity, not version: a
                            // rolled-back canary leaves the shard holding
                            // a stale bundle whose *tentative* version can
                            // collide with the next genuine install.
                            if !Arc::ptr_eq(&current, &bundle) || dispatcher.is_none() {
                                match build_dispatcher(scenario, &spec.rl, &current) {
                                    Ok(mut d) => {
                                        d.set_time_source(phase_timer.clone());
                                        d.set_transition_tap(spec.tap_transitions);
                                        dispatcher = Some(d);
                                        bundle = current;
                                    }
                                    Err(e) => swap_error = Some(SwapError::Build(e)),
                                }
                            }
                        }
                    }
                }
                // Pin the shadow twin's inputs before they are consumed:
                // the candidate must replay exactly this epoch — same
                // world, same requests, same carry latency.
                let shadow_ctx = shadow_cand
                    .as_ref()
                    .map(|_| (world.snapshot_text(), requests.clone()));
                {
                    let ingest_span = h_ingest.time(time_source.as_ref());
                    for r in requests {
                        match world.inject_request(r) {
                            Ok(_) => injected += 1,
                            Err(_) => rejected += 1,
                        }
                    }
                    drop(ingest_span);
                }
                let spent_ms = Cell::new(0u64);
                let carry_s = carry_ms as f64 / 1_000.0;
                let (report, degraded_now) = match dispatcher.as_mut() {
                    Some(d) if !force_fallback => {
                        let (report, late) = {
                            let mut timed = TimedDispatcher {
                                inner: d,
                                clock: &*spec.clock,
                                spent_ms: &spent_ms,
                                stall_ms,
                            };
                            let mut over =
                                || budget_ms.is_some_and(|budget| spent_ms.get() > budget);
                            world.run_epoch_with_deadline(
                                &mut timed,
                                &mut fallback,
                                carry_s,
                                &mut over,
                            )
                        };
                        h_predict.record(d.take_predict_ms());
                        (report, late)
                    }
                    _ => {
                        // The DQN policy is unavailable (failed swap with
                        // no usable predecessor, or an injected registry
                        // failure): serve the epoch on the heuristic
                        // rather than skip it.
                        let report = {
                            let mut timed = TimedDispatcher {
                                inner: &mut fallback,
                                clock: &*spec.clock,
                                spent_ms: &spent_ms,
                                stall_ms,
                            };
                            world.run_epoch(&mut timed, carry_s)
                        };
                        h_predict.record(0);
                        if swap_error.is_none() {
                            swap_error =
                                Some(SwapError::Build("no dispatcher could be built".to_owned()));
                        }
                        (report, true)
                    }
                };
                h_dispatch.record(spent_ms.get());
                h_routing.record(world.take_phases().routing_ms);
                world.publish_routing(&obs, &routing_prefix);
                let reward = crate::rollout::epoch_reward(&spec.rl, &spec.sim, &report);
                // Drain the tap every epoch (even when the transitions are
                // then discarded) so stale decisions never leak into a
                // later epoch's batch. On a degraded epoch the heuristic's
                // plan drove the world, so the tapped decisions' rewards
                // would be misattributed — drop them.
                let transitions = match dispatcher.as_mut() {
                    Some(d) => {
                        let tapped = d.take_tapped_transitions();
                        if degraded_now {
                            Vec::new()
                        } else {
                            tapped
                        }
                    }
                    None => Vec::new(),
                };
                let shadow = shadow_ctx.as_ref().zip(shadow_cand.as_ref()).map(
                    |((pre_text, reqs), cand)| {
                        evaluate_shadow(
                            scenario, &spec.rl, &spec.sim, cand, pre_text, reqs, carry_s,
                        )
                    },
                );
                let st = status(
                    &world,
                    injected,
                    rejected,
                    bundle.version,
                    spent_ms.get(),
                    routing_total(&world, routing_base),
                    degraded + u64::from(degraded_now),
                    degraded_now,
                    Some(report),
                    swap_error,
                    reward,
                    shadow,
                    transitions,
                );
                if tx.send(ShardReply::Epoch(Ok(st))).is_err() {
                    return;
                }
                degraded += u64::from(degraded_now);
                carry_ms = spent_ms.get();
            }
            ShardCmd::Snapshot => {
                let routing = routing_total(&world, routing_base);
                let mut text = format!(
                    "shardstate {injected} {rejected} {carry_ms} {} {} {} {degraded}\n",
                    bundle.version, routing.hits, routing.misses
                );
                text.push_str(&world.snapshot_text());
                if tx.send(ShardReply::Snapshot(Ok(text))).is_err() {
                    return;
                }
            }
            ShardCmd::Restore(text) => {
                let reply = match parse_shard_snapshot(scenario, &text) {
                    Ok(parsed) => {
                        world = parsed.world;
                        world.set_time_source(phase_timer.clone());
                        injected = parsed.injected;
                        rejected = parsed.rejected;
                        carry_ms = parsed.carry_ms;
                        degraded = parsed.degraded;
                        routing_base = parsed.routing;
                        // The dispatcher rebuilds from the registry at the
                        // next epoch; until then report the version the
                        // snapshot ran with.
                        Ok(status(
                            &world,
                            injected,
                            rejected,
                            parsed.version,
                            carry_ms,
                            routing_total(&world, routing_base),
                            degraded,
                            false,
                            None,
                            None,
                            0.0,
                            None,
                            Vec::new(),
                        ))
                    }
                    Err(e) => Err(e),
                };
                if tx.send(ShardReply::Restored(reply)).is_err() {
                    return;
                }
            }
            ShardCmd::Shutdown => return,
        }
    }
}

/// Runs the candidate on a twin of the epoch the shard just served: the
/// twin world is restored from the pre-ingest snapshot, receives the same
/// requests, and runs one plain epoch under the candidate's dispatcher.
/// Nothing the twin does touches the primary world, the routing planner,
/// the obs registry, or the clock — shadow evaluation is invisible to
/// dispatch and to snapshots, so SimClock runs stay bit-identical whether
/// or not a shadow rollout is in flight at the time.
fn evaluate_shadow(
    scenario: &Scenario,
    rl: &RlDispatchConfig,
    sim: &SimConfig,
    candidate: &ModelBundle,
    pre_epoch_text: &str,
    requests: &[RequestSpec],
    carry_s: f64,
) -> ShadowReport {
    let mut d = match build_dispatcher(scenario, rl, candidate) {
        Ok(d) => d,
        Err(e) => {
            return ShadowReport {
                candidate_reward: 0.0,
                error: Some(e),
            }
        }
    };
    let mut twin = match World::restore_text(&scenario.city, &scenario.conditions, pre_epoch_text) {
        Ok(w) => w,
        Err(e) => {
            return ShadowReport {
                candidate_reward: 0.0,
                error: Some(e.to_string()),
            }
        }
    };
    for r in requests {
        // The primary already decided admission for these; a twin-side
        // rejection would only repeat the same queue-capacity outcome.
        let _ = twin.inject_request(*r);
    }
    let report = twin.run_epoch(&mut d, carry_s);
    ShadowReport {
        candidate_reward: crate::rollout::epoch_reward(rl, sim, &report),
        error: None,
    }
}

struct ParsedShard<'a> {
    world: World<'a>,
    injected: u64,
    rejected: u64,
    carry_ms: u64,
    version: u64,
    routing: PlannerStats,
    degraded: u64,
}

fn parse_shard_snapshot<'a>(scenario: &'a Scenario, text: &str) -> Result<ParsedShard<'a>, String> {
    let (first, rest) = text
        .split_once('\n')
        .ok_or_else(|| "empty shard snapshot".to_owned())?;
    let mut p = first.split_whitespace();
    if p.next() != Some("shardstate") {
        return Err("missing shardstate line".to_owned());
    }
    let mut next_u64 = |what: &str| -> Result<u64, String> {
        p.next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad {what} in shardstate"))
    };
    let injected = next_u64("injected")?;
    let rejected = next_u64("rejected")?;
    let carry_ms = next_u64("carry latency")?;
    let version = next_u64("model version")?;
    let routing = PlannerStats {
        hits: next_u64("routing hits")?,
        misses: next_u64("routing misses")?,
    };
    let degraded = next_u64("degraded epochs")?;
    let world = World::restore_text(&scenario.city, &scenario.conditions, rest)
        .map_err(|e| e.to_string())?;
    Ok(ParsedShard {
        world,
        injected,
        rejected,
        carry_ms,
        version,
        routing,
        degraded,
    })
}
