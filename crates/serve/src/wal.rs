//! `serve::wal` — the durable write-ahead ingest journal.
//!
//! ACK must mean "will be dispatched even if the process dies now". The
//! service journals every request-queue *push attempt* — payload,
//! admission clock stamp, shard index, and a monotonic sequence number —
//! to an append-only, segment-rotated log **before** the push happens
//! (and therefore before the net layer can send `Ack`). Recovery is:
//! open the last sealed snapshot, replay the journal suffix (records
//! with `seq` greater than the snapshot's high-water mark) through the
//! same bounded queues, and resume — bit-identical to a twin that never
//! crashed, because the queue state is a pure function of the push
//! sequence.
//!
//! # Format (`mrwal 1`)
//!
//! Each segment file `wal-<start_seq>.log` starts with one header line
//! and carries one record per line, each sealed with the same FNV-1a-64
//! the `mrserve 1`/`mrnet 1` formats use:
//!
//! ```text
//! mrwal 1 <start_seq>
//! rec <seq> <clock_ms> <shard> <appear_s> <segment> <fnv1a-64 of the line body>
//! ```
//!
//! # Torn tails vs. interior damage
//!
//! A crash mid-append leaves a *torn tail*: an unterminated final line
//! in the final segment. That is expected damage — it is detected by
//! the missing terminator and the per-record seal, truncated away, and
//! reported as a typed [`WalError::TornTail`] in the recovery summary
//! (never a panic). Any *other* damage — a bit flip inside a terminated
//! record, a broken header, a sequence gap — is not something a crash
//! can produce, so it is a typed [`WalError::Corrupt`] refusal naming
//! the segment and byte offset: the operator must decide, the journal
//! will not guess.
//!
//! # Durability policies
//!
//! [`FsyncPolicy`] picks the fsync cadence: `always` (one fsync per
//! append batch — survives power loss), `epoch` (one fsync per epoch
//! boundary), `off` (no fsync; the `write(2)` still lands in the page
//! cache, which survives `kill -9` but not power loss). Appends are
//! group-committed: one `write` call covers the whole batch.

use mobirescue_obs::{Counter, Histogram, Registry, TimeSource};
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::{fnv1a_64_bytes, RequestSpec};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// When the journal calls fsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// One fsync per append batch, before the append returns (and
    /// therefore before any `Ack`). Survives power loss.
    Always,
    /// One fsync per epoch boundary. Survives `kill -9` (the write hit
    /// the page cache); a power loss can lose up to one epoch.
    Epoch,
    /// Never fsync (except the final drain flush). Survives `kill -9`;
    /// fastest; weakest against power loss.
    Off,
}

impl FsyncPolicy {
    /// Parses the CLI spelling (`always` / `epoch` / `off`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "epoch" => Some(FsyncPolicy::Epoch),
            "off" => Some(FsyncPolicy::Off),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Epoch => "epoch",
            FsyncPolicy::Off => "off",
        }
    }
}

/// Configuration of a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the `wal-*.log` segments (created if missing).
    pub dir: PathBuf,
    /// Rotate to a fresh segment once the current one exceeds this size.
    pub segment_max_bytes: u64,
    /// Fsync cadence.
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// A journal in `dir` with 64 KiB segments and per-append fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_max_bytes: 64 * 1024,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// A typed journal failure. Never a panic: a torn tail is recovered
/// from, everything else is a refusal naming the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// A crash mid-append left an unterminated final line; it was
    /// truncated away at `offset` of `segment`.
    TornTail {
        /// File name of the segment holding the torn tail.
        segment: String,
        /// Byte offset the segment was truncated back to.
        offset: u64,
    },
    /// Interior damage a crash cannot produce (bit flip, broken header,
    /// sequence gap). The journal refuses to open.
    Corrupt {
        /// File name of the damaged segment.
        segment: String,
        /// Byte offset of the damaged line.
        offset: u64,
        /// What failed to validate.
        why: String,
    },
    /// The filesystem failed underneath the journal.
    Io {
        /// Path of the file the operation touched.
        path: String,
        /// The underlying I/O error.
        why: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::TornTail { segment, offset } => {
                write!(f, "torn tail in {segment} at byte {offset} (truncated)")
            }
            WalError::Corrupt {
                segment,
                offset,
                why,
            } => write!(f, "corrupt journal: {segment} at byte {offset}: {why}"),
            WalError::Io { path, why } => write!(f, "journal io failure on {path}: {why}"),
        }
    }
}

/// One journaled push attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number (1-based; the snapshot's high-water
    /// mark is the last sequence it covers).
    pub seq: u64,
    /// Admission clock stamp, ms.
    pub clock_ms: u64,
    /// Target shard.
    pub shard: usize,
    /// Request payload.
    pub spec: RequestSpec,
    /// Segment file name the record lives in (for error reporting).
    pub segment: String,
    /// Byte offset of the record line within its segment.
    pub offset: u64,
}

/// One entry of an append batch (the `seq` is assigned by the journal).
#[derive(Debug, Clone, Copy)]
pub struct WalEntry {
    /// Admission clock stamp, ms.
    pub clock_ms: u64,
    /// Target shard.
    pub shard: usize,
    /// Request payload.
    pub spec: RequestSpec,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every surviving record, in sequence order.
    pub records: Vec<WalRecord>,
    /// The torn tail that was detected and truncated, if any.
    pub torn: Option<WalError>,
    /// Segment files scanned.
    pub segments: usize,
}

/// One on-disk segment the journal knows about.
#[derive(Debug)]
struct Segment {
    start_seq: u64,
    path: PathBuf,
}

/// The durable write-ahead ingest journal.
pub struct Wal {
    cfg: WalConfig,
    /// Current (last) segment, open for append.
    file: File,
    seg_bytes: u64,
    segments: Vec<Segment>,
    last_seq: u64,
    /// Highest sequence number covered by the last snapshot taken.
    snapshot_hwm: u64,
    /// Bytes written since the last fsync.
    unsynced: u64,
    time: Arc<dyn TimeSource>,
    appends: Counter,
    bytes: Counter,
    fsyncs: Counter,
    torn_tails: Counter,
    replayed: Counter,
    append_hist: Histogram,
    fsync_hist: Histogram,
}

const HEADER_PREFIX: &str = "mrwal 1 ";

fn segment_name(start_seq: u64) -> String {
    format!("wal-{start_seq:020}.log")
}

fn io_err(path: &Path, e: std::io::Error) -> WalError {
    WalError::Io {
        path: path.display().to_string(),
        why: e.to_string(),
    }
}

/// Fsyncs the journal directory itself, making segment creations and
/// deletions durable: without this a freshly rotated segment's directory
/// entry can vanish on power loss even though its data was fdatasync'd.
fn sync_dir(dir: &Path) -> Result<(), WalError> {
    let d = File::open(dir).map_err(|e| io_err(dir, e))?;
    d.sync_all().map_err(|e| io_err(dir, e))
}

fn record_body(seq: u64, clock_ms: u64, shard: usize, spec: &RequestSpec) -> String {
    format!(
        "rec {seq} {clock_ms} {shard} {} {}",
        spec.appear_s, spec.segment.0
    )
}

fn record_line(seq: u64, clock_ms: u64, shard: usize, spec: &RequestSpec) -> String {
    let body = record_body(seq, clock_ms, shard, spec);
    let seal = fnv1a_64_bytes(body.as_bytes());
    format!("{body} {seal:016x}\n")
}

/// Parses and verifies one terminated record line (without its `\n`).
fn parse_record(line: &str, expected_seq: u64) -> Result<(u64, usize, RequestSpec), String> {
    let (body, seal_hex) = line
        .rsplit_once(' ')
        .ok_or_else(|| "record has no seal field".to_owned())?;
    let seal = u64::from_str_radix(seal_hex, 16).map_err(|_| "unparsable seal".to_owned())?;
    if seal != fnv1a_64_bytes(body.as_bytes()) {
        return Err("seal mismatch".to_owned());
    }
    let mut p = body.split_whitespace();
    if p.next() != Some("rec") {
        return Err("missing `rec` tag".to_owned());
    }
    let mut next = |what: &str| {
        p.next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| format!("bad {what} field"))
    };
    let seq = next("seq")?;
    let clock_ms = next("clock")?;
    let shard = usize::try_from(next("shard")?).map_err(|_| "shard field overflows".to_owned())?;
    let appear_s =
        u32::try_from(next("appear_s")?).map_err(|_| "appear_s field overflows".to_owned())?;
    let segment = SegmentId(
        u32::try_from(next("segment")?).map_err(|_| "segment field overflows".to_owned())?,
    );
    if seq != expected_seq {
        return Err(format!(
            "sequence gap: found {seq}, expected {expected_seq}"
        ));
    }
    Ok((clock_ms, shard, RequestSpec { appear_s, segment }))
}

impl Wal {
    /// Opens (or creates) the journal in `cfg.dir`, scanning every
    /// segment: a torn tail in the final segment is truncated away and
    /// reported in the returned [`WalRecovery`]; any interior damage is
    /// a typed [`WalError::Corrupt`] refusal.
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] for damage a crash cannot explain,
    /// [`WalError::Io`] when the filesystem fails.
    pub fn open(
        cfg: WalConfig,
        obs: &Registry,
        time: Arc<dyn TimeSource>,
    ) -> Result<(Self, WalRecovery), WalError> {
        std::fs::create_dir_all(&cfg.dir).map_err(|e| io_err(&cfg.dir, e))?;
        let mut segments: Vec<Segment> = Vec::new();
        let entries = std::fs::read_dir(&cfg.dir).map_err(|e| io_err(&cfg.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&cfg.dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(start) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                segments.push(Segment {
                    start_seq: start,
                    path: entry.path(),
                });
            }
        }
        segments.sort_by_key(|s| s.start_seq);

        let torn_tails = obs.counter("wal.torn_tails");
        let mut records = Vec::new();
        let mut torn = None;
        let mut next_seq = segments.first().map_or(1, |s| s.start_seq);
        let last_idx = segments.len().wrapping_sub(1);
        for (i, seg) in segments.iter().enumerate() {
            let is_last = i == last_idx;
            let scanned = scan_segment(seg, next_seq, is_last, &mut records)?;
            next_seq = scanned.next_seq;
            if let Some(t) = scanned.torn {
                torn_tails.inc();
                torn = Some(t);
            }
        }
        let last_seq = next_seq - 1;

        // Open the final segment for append (creating the first one for
        // an empty journal).
        let (seg_path, fresh) = match segments.last() {
            Some(seg) => (seg.path.clone(), false),
            None => {
                let path = cfg.dir.join(segment_name(1));
                segments.push(Segment {
                    start_seq: 1,
                    path: path.clone(),
                });
                (path, true)
            }
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&seg_path)
            .map_err(|e| io_err(&seg_path, e))?;
        if fresh {
            file.write_all(format!("{HEADER_PREFIX}1\n").as_bytes())
                .map_err(|e| io_err(&seg_path, e))?;
            sync_dir(&cfg.dir)?;
        }
        let seg_bytes = file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err(&seg_path, e))?;

        let recovery = WalRecovery {
            records,
            torn,
            segments: segments.len(),
        };
        let wal = Self {
            file,
            seg_bytes,
            segments,
            last_seq,
            snapshot_hwm: 0,
            unsynced: 0,
            time,
            appends: obs.counter("wal.appends"),
            bytes: obs.counter("wal.bytes"),
            fsyncs: obs.counter("wal.fsyncs"),
            torn_tails,
            replayed: obs.counter("wal.replayed"),
            append_hist: obs.histogram("wal.append_ms"),
            fsync_hist: obs.histogram("wal.fsync_ms"),
            cfg,
        };
        Ok((wal, recovery))
    }

    /// The highest sequence number durably appended so far (0 = none).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// The fsync cadence the journal was opened with.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.cfg.fsync
    }

    /// Appends a batch as one group commit: one `write` covers every
    /// entry, and (under [`FsyncPolicy::Always`]) one fsync seals it.
    /// Returns the sequence number of the batch's last record.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the filesystem fails mid-append; the
    /// journal is then poisoned for the torn-tail path at next open.
    pub fn append(&mut self, batch: &[WalEntry]) -> Result<u64, WalError> {
        if batch.is_empty() {
            return Ok(self.last_seq);
        }
        // Clone the handles so the span does not hold `self` borrowed
        // across the mutating append.
        let (hist, time) = (self.append_hist.clone(), Arc::clone(&self.time));
        let _span = hist.time(time.as_ref());
        self.rotate_if_needed()?;
        let mut buf = String::new();
        for (i, e) in batch.iter().enumerate() {
            let seq = self.last_seq + 1 + i as u64;
            buf.push_str(&record_line(seq, e.clock_ms, e.shard, &e.spec));
        }
        let path = self.active_path();
        self.file
            .write_all(buf.as_bytes())
            .map_err(|e| io_err(&path, e))?;
        self.last_seq += batch.len() as u64;
        self.seg_bytes += buf.len() as u64;
        self.unsynced += buf.len() as u64;
        self.appends.inc();
        self.bytes.add(buf.len() as u64);
        if self.cfg.fsync == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(self.last_seq)
    }

    /// Flushes any unsynced bytes to stable storage. Called per append
    /// under [`FsyncPolicy::Always`], per epoch boundary under
    /// [`FsyncPolicy::Epoch`], and always on drain.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when fsync fails.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.unsynced == 0 {
            return Ok(());
        }
        let (hist, time) = (self.fsync_hist.clone(), Arc::clone(&self.time));
        let _span = hist.time(time.as_ref());
        let path = self.active_path();
        self.file.sync_data().map_err(|e| io_err(&path, e))?;
        self.unsynced = 0;
        self.fsyncs.inc();
        Ok(())
    }

    /// Records that a snapshot covering everything up to `hwm` was
    /// durably taken; [`Wal::compact`] may then delete segments wholly
    /// below it.
    pub fn mark_snapshot(&mut self, hwm: u64) {
        self.snapshot_hwm = self.snapshot_hwm.max(hwm);
    }

    /// Deletes segments wholly covered by the last marked snapshot (a
    /// segment is covered when every record it holds has
    /// `seq <= snapshot_hwm`). The active segment is never deleted.
    /// Returns how many segments were removed.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when a delete fails.
    pub fn compact(&mut self) -> Result<usize, WalError> {
        let mut removed = 0;
        while self.segments.len() > 1 {
            // The first segment's records all precede the second's start.
            let covered = self.segments[1].start_seq <= self.snapshot_hwm + 1;
            if !covered {
                break;
            }
            let seg = self.segments.remove(0);
            std::fs::remove_file(&seg.path).map_err(|e| io_err(&seg.path, e))?;
            removed += 1;
        }
        if removed > 0 {
            sync_dir(&self.cfg.dir)?;
        }
        Ok(removed)
    }

    /// Counts `n` records replayed into the service queues.
    pub fn note_replayed(&self, n: u64) {
        self.replayed.add(n);
    }

    /// Fault hook ([`crate::fault::WalFault::TornAppend`]): models a
    /// crash mid-append. Writes a torn prefix of the would-be record,
    /// then self-heals exactly like recovery would — truncates the tail
    /// back off — and returns the typed [`WalError::TornTail`]. The
    /// entry is *not* journaled and must not be admitted or acked.
    pub fn inject_torn_append(&mut self, entry: &WalEntry) -> WalError {
        let line = record_line(self.last_seq + 1, entry.clock_ms, entry.shard, &entry.spec);
        let torn_len = (line.len() - 1) / 2;
        let offset = self.seg_bytes;
        let path = self.active_path();
        let heal = (|| -> std::io::Result<()> {
            self.file.write_all(&line.as_bytes()[..torn_len.max(1)])?;
            self.file.flush()?;
            self.file.set_len(offset)?;
            self.file.seek(SeekFrom::Start(offset))?;
            Ok(())
        })();
        if let Err(e) = heal {
            return io_err(&path, e);
        }
        self.torn_tails.inc();
        WalError::TornTail {
            segment: path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            offset,
        }
    }

    /// Fault hook ([`crate::fault::WalFault::SegmentBitFlip`]): flips
    /// one bit of the most recently appended record *on disk* — silent
    /// storage rot. The live run is unaffected; the next recovery must
    /// refuse with a typed [`WalError::Corrupt`] naming this segment
    /// and offset. Returns the damaged location, or `None` when the
    /// active segment holds no record yet.
    pub fn inject_bit_flip(&mut self) -> Option<(String, u64)> {
        let start = self.active_start_seq();
        if self.last_seq < start {
            return None;
        }
        let path = self.active_path();
        // Damage a mid-line byte of the active segment's first record:
        // terminated interior damage, unambiguously not a torn tail.
        let flip = (|| -> std::io::Result<(String, u64)> {
            let mut text = String::new();
            self.file.seek(SeekFrom::Start(0))?;
            self.file.read_to_string(&mut text)?;
            let header_len = text.find('\n').map_or(0, |i| i + 1) as u64;
            let offset = header_len + 4;
            self.file.seek(SeekFrom::Start(offset))?;
            let mut b = [0u8; 1];
            self.file.read_exact(&mut b)?;
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.write_all(&[b[0] ^ 0x10])?;
            self.file.seek(SeekFrom::End(0))?;
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            Ok((name, header_len))
        })();
        flip.ok()
    }

    fn active_path(&self) -> PathBuf {
        self.segments
            .last()
            .map(|s| s.path.clone())
            .unwrap_or_else(|| self.cfg.dir.clone())
    }

    fn active_start_seq(&self) -> u64 {
        self.segments.last().map_or(1, |s| s.start_seq)
    }

    /// Rotates to a fresh segment when the active one is over the size
    /// cap and holds at least one record (a batch never spans a
    /// rotation boundary).
    fn rotate_if_needed(&mut self) -> Result<(), WalError> {
        if self.seg_bytes < self.cfg.segment_max_bytes || self.last_seq < self.active_start_seq() {
            return Ok(());
        }
        // Seal the outgoing segment before abandoning its handle.
        self.sync()?;
        let start = self.last_seq + 1;
        let path = self.cfg.dir.join(segment_name(start));
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let header = format!("{HEADER_PREFIX}{start}\n");
        file.write_all(header.as_bytes())
            .map_err(|e| io_err(&path, e))?;
        sync_dir(&self.cfg.dir)?;
        self.seg_bytes = header.len() as u64;
        self.file = file;
        self.segments.push(Segment {
            start_seq: start,
            path,
        });
        Ok(())
    }
}

struct ScanOutcome {
    next_seq: u64,
    torn: Option<WalError>,
}

/// Scans one segment: verifies the header, every record's seal and the
/// sequence chain. In the final segment an unterminated final line is a
/// torn tail — truncated off, reported, recovered from. Everything else
/// is [`WalError::Corrupt`].
fn scan_segment(
    seg: &Segment,
    expected_start: u64,
    is_last: bool,
    records: &mut Vec<WalRecord>,
) -> Result<ScanOutcome, WalError> {
    let name = segment_name(seg.start_seq);
    let bytes = std::fs::read(&seg.path).map_err(|e| io_err(&seg.path, e))?;
    let corrupt = |offset: u64, why: String| WalError::Corrupt {
        segment: name.clone(),
        offset,
        why,
    };
    let truncate_to = |offset: u64| -> Result<(), WalError> {
        let f = OpenOptions::new()
            .write(true)
            .open(&seg.path)
            .map_err(|e| io_err(&seg.path, e))?;
        f.set_len(offset).map_err(|e| io_err(&seg.path, e))
    };

    // Header line.
    let header_end = match bytes.iter().position(|&b| b == b'\n') {
        Some(i) => i + 1,
        None if is_last => {
            // A crash while creating the segment tore the header itself;
            // rewrite it whole and recover with zero records.
            let header = format!("{HEADER_PREFIX}{}\n", seg.start_seq);
            std::fs::write(&seg.path, header).map_err(|e| io_err(&seg.path, e))?;
            return Ok(ScanOutcome {
                next_seq: expected_start,
                torn: Some(WalError::TornTail {
                    segment: name,
                    offset: 0,
                }),
            });
        }
        None => return Err(corrupt(0, "unterminated header".to_owned())),
    };
    let header = std::str::from_utf8(&bytes[..header_end - 1])
        .map_err(|_| corrupt(0, "non-utf8 header".to_owned()))?;
    let start: u64 = header
        .strip_prefix(HEADER_PREFIX)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| corrupt(0, format!("bad header `{header}`")))?;
    if start != seg.start_seq || start != expected_start {
        return Err(corrupt(
            0,
            format!("header start {start}, expected {expected_start}"),
        ));
    }

    let mut next_seq = expected_start;
    let mut offset = header_end;
    let mut torn = None;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        let (line_bytes, terminated) = match rest.iter().position(|&b| b == b'\n') {
            Some(i) => (&rest[..i], true),
            None => (rest, false),
        };
        if !terminated {
            if is_last {
                // A crash mid-append: truncate the torn tail off.
                truncate_to(offset as u64)?;
                torn = Some(WalError::TornTail {
                    segment: name,
                    offset: offset as u64,
                });
                break;
            }
            return Err(corrupt(
                offset as u64,
                "unterminated record in a sealed segment".to_owned(),
            ));
        }
        let line = std::str::from_utf8(line_bytes)
            .map_err(|_| corrupt(offset as u64, "non-utf8 record".to_owned()))?;
        let (clock_ms, shard, spec) =
            parse_record(line, next_seq).map_err(|why| corrupt(offset as u64, why))?;
        records.push(WalRecord {
            seq: next_seq,
            clock_ms,
            shard,
            spec,
            segment: name.clone(),
            offset: offset as u64,
        });
        next_seq += 1;
        offset += line_bytes.len() + 1;
    }
    Ok(ScanOutcome { next_seq, torn })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_obs::Registry;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A fixed time source: span timers record zeros, deterministically.
    struct Frozen;
    impl TimeSource for Frozen {
        fn now_ms(&self) -> u64 {
            0
        }
    }

    fn time() -> Arc<dyn TimeSource> {
        Arc::new(Frozen)
    }

    /// A unique scratch dir per call, cleaned before use.
    fn tdir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mobirescue-wal-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry(i: u32) -> WalEntry {
        WalEntry {
            clock_ms: u64::from(i) * 10,
            shard: (i % 2) as usize,
            spec: RequestSpec {
                appear_s: i * 7,
                segment: SegmentId(i % 5),
            },
        }
    }

    fn open(dir: &Path) -> (Wal, WalRecovery) {
        let mut cfg = WalConfig::new(dir);
        cfg.fsync = FsyncPolicy::Off;
        Wal::open(cfg, &Registry::new(), time()).expect("journal opens")
    }

    #[test]
    fn fsync_policy_parses_its_own_spelling() {
        for p in [FsyncPolicy::Always, FsyncPolicy::Epoch, FsyncPolicy::Off] {
            assert_eq!(FsyncPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn appends_reopen_bit_identically() {
        let dir = tdir("roundtrip");
        let entries: Vec<WalEntry> = (0..7).map(entry).collect();
        {
            let (mut wal, rec) = open(&dir);
            assert!(rec.records.is_empty() && rec.torn.is_none());
            assert_eq!(wal.append(&entries[..3]).expect("append"), 3);
            assert_eq!(wal.append(&entries[3..]).expect("append"), 7);
            wal.sync().expect("sync");
        }
        let (wal, rec) = open(&dir);
        assert_eq!(wal.last_seq(), 7);
        assert!(rec.torn.is_none());
        assert_eq!(rec.records.len(), 7);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.spec, entries[i].spec);
            assert_eq!(r.shard, entries[i].shard);
            assert_eq!(r.clock_ms, entries[i].clock_ms);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spans_segments_and_compaction_deletes_covered_ones() {
        let dir = tdir("rotate");
        let mut cfg = WalConfig::new(&dir);
        cfg.fsync = FsyncPolicy::Off;
        cfg.segment_max_bytes = 128;
        let (mut wal, _) = Wal::open(cfg.clone(), &Registry::new(), time()).expect("opens");
        for i in 0..24 {
            wal.append(&[entry(i)]).expect("append");
        }
        assert!(wal.segments.len() > 2, "small cap must rotate");
        let (reopened, rec) = Wal::open(cfg.clone(), &Registry::new(), time()).expect("reopens");
        assert_eq!(reopened.last_seq(), 24);
        assert_eq!(rec.records.len(), 24);
        drop(reopened);

        // A snapshot covering seq 1..=12 releases the fully-covered
        // prefix segments; everything after the mark survives.
        wal.mark_snapshot(12);
        let removed = wal.compact().expect("compacts");
        assert!(removed > 0, "covered segments are deleted");
        drop(wal);
        let (wal, rec) = Wal::open(cfg, &Registry::new(), time()).expect("reopens");
        assert_eq!(wal.last_seq(), 24);
        assert!(rec.records.iter().all(|r| r.seq <= 24));
        assert!(
            rec.records.iter().any(|r| r.seq > 12),
            "post-snapshot records survive compaction"
        );
        let first = rec.records.first().expect("suffix remains").seq;
        assert!(first <= 13, "no record above the mark is lost");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let dir = tdir("torn");
        {
            let (mut wal, _) = open(&dir);
            for i in 0..4 {
                wal.append(&[entry(i)]).expect("append");
            }
        }
        // Tear the last record mid-line, like a crash mid-write.
        let seg = dir.join(segment_name(1));
        let bytes = std::fs::read(&seg).expect("segment readable");
        let f = OpenOptions::new().write(true).open(&seg).expect("opens");
        f.set_len(bytes.len() as u64 - 9).expect("truncates");
        drop(f);

        let (mut wal, rec) = open(&dir);
        let torn = rec.torn.expect("torn tail detected");
        assert!(
            matches!(&torn, WalError::TornTail { segment, .. } if segment == &segment_name(1)),
            "torn tail names its segment: {torn}"
        );
        assert_eq!(rec.records.len(), 3, "the torn record is gone");
        assert_eq!(wal.last_seq(), 3);
        // The journal keeps accepting appends with a clean chain.
        wal.append(&[entry(9)]).expect("append after heal");
        drop(wal);
        let (_, rec) = open(&dir);
        assert!(rec.torn.is_none());
        assert_eq!(rec.records.len(), 4);
        assert_eq!(rec.records.last().expect("has records").seq, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The proptest-style sweep the issue pins: truncate the journal at
    /// *every* byte offset; every prefix must open without panicking,
    /// recover a strict prefix of the original records, and report torn
    /// damage (when any) as the typed error.
    #[test]
    fn every_truncation_offset_recovers_a_clean_prefix() {
        let dir = tdir("sweep");
        {
            let (mut wal, _) = open(&dir);
            for i in 0..6 {
                wal.append(&[entry(i)]).expect("append");
            }
        }
        let seg = dir.join(segment_name(1));
        let full = std::fs::read(&seg).expect("segment readable");
        let scratch = tdir("sweep-scratch");
        std::fs::create_dir_all(&scratch).expect("scratch dir");
        for cut in 0..=full.len() {
            let case = scratch.join(segment_name(1));
            std::fs::write(&case, &full[..cut]).expect("case written");
            let mut cfg = WalConfig::new(&scratch);
            cfg.fsync = FsyncPolicy::Off;
            let (wal, rec) = Wal::open(cfg, &Registry::new(), time())
                .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got refusal: {e}"));
            assert_eq!(
                rec.records.len() as u64,
                wal.last_seq(),
                "cut {cut}: every surviving record is recovered"
            );
            assert!(rec.records.len() <= 6, "cut {cut}: no invented records");
            for (i, r) in rec.records.iter().enumerate() {
                assert_eq!(r.seq, i as u64 + 1, "cut {cut}: clean prefix");
            }
            let _ = std::fs::remove_dir_all(&scratch);
            std::fs::create_dir_all(&scratch).expect("scratch dir");
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&scratch);
    }

    /// An interior bit flip is damage a crash cannot produce: the open
    /// must refuse with a typed error naming the segment and offset —
    /// for *every* record byte position, not just a lucky one.
    #[test]
    fn interior_bit_flips_are_typed_refusals() {
        let dir = tdir("flip");
        {
            let (mut wal, _) = open(&dir);
            for i in 0..3 {
                wal.append(&[entry(i)]).expect("append");
            }
        }
        let seg = dir.join(segment_name(1));
        let full = std::fs::read(&seg).expect("segment readable");
        let header_len = full.iter().position(|&b| b == b'\n').expect("header") + 1;
        let mut refused = 0;
        for pos in header_len..full.len() {
            if full[pos] == b'\n' {
                continue; // deleting a terminator is the torn-tail story
            }
            let mut damaged = full.clone();
            damaged[pos] ^= 0x04;
            std::fs::write(&seg, &damaged).expect("damage written");
            let mut cfg = WalConfig::new(&dir);
            cfg.fsync = FsyncPolicy::Off;
            match Wal::open(cfg, &Registry::new(), time()) {
                Err(WalError::Corrupt {
                    segment, offset, ..
                }) => {
                    assert_eq!(segment, segment_name(1));
                    assert!(offset < full.len() as u64);
                    refused += 1;
                }
                Ok(_) => panic!("flip at byte {pos} opened cleanly"),
                Err(e) => panic!("flip at byte {pos}: wrong error kind: {e}"),
            }
        }
        assert!(refused > 0);
        std::fs::write(&seg, &full).expect("restore");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_tear_self_heals_and_injected_flip_poisons_recovery() {
        let dir = tdir("inject");
        let (mut wal, _) = open(&dir);
        wal.append(&[entry(0)]).expect("append");
        let err = wal.inject_torn_append(&entry(1));
        assert!(matches!(err, WalError::TornTail { .. }), "typed: {err}");
        assert_eq!(wal.last_seq(), 1, "the torn entry was never journaled");
        wal.append(&[entry(2)]).expect("append after self-heal");
        drop(wal);
        let (mut wal, rec) = open(&dir);
        assert!(rec.torn.is_none(), "the tear healed in-process");
        assert_eq!(rec.records.len(), 2);

        let (segment, offset) = wal.inject_bit_flip().expect("a record exists to damage");
        assert_eq!(segment, segment_name(1));
        drop(wal);
        let mut cfg = WalConfig::new(&dir);
        cfg.fsync = FsyncPolicy::Off;
        match Wal::open(cfg, &Registry::new(), time()) {
            Err(WalError::Corrupt {
                segment: s,
                offset: o,
                ..
            }) => {
                assert_eq!(s, segment);
                assert_eq!(o, offset);
            }
            Err(other) => panic!("flipped journal must refuse as Corrupt, got {other}"),
            Ok(_) => panic!("flipped journal must refuse, but it opened"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_counters_account_for_appends_and_fsyncs() {
        let dir = tdir("counters");
        let obs = Registry::new();
        let mut cfg = WalConfig::new(&dir);
        cfg.fsync = FsyncPolicy::Always;
        let (mut wal, _) = Wal::open(cfg, &obs, time()).expect("opens");
        wal.append(&[entry(0), entry(1)]).expect("append");
        wal.append(&[entry(2)]).expect("append");
        assert_eq!(obs.counter("wal.appends").value(), 2, "one per batch");
        assert_eq!(obs.counter("wal.fsyncs").value(), 2, "always = per batch");
        assert!(obs.counter("wal.bytes").value() > 0);
        wal.note_replayed(3);
        assert_eq!(obs.counter("wal.replayed").value(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
