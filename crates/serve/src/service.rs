//! The dispatch service: sharded runner, ingestion front, epoch barrier,
//! snapshot/restore, and the recovery machinery exercised by the chaos
//! harness (bounded ingestion retry, delayed-event release, shard
//! crash-restart from the last boundary checkpoint).

use crate::clock::{Clock, ClockTimeSource};
use crate::error::ServeError;
use crate::event::Event;
use crate::fault::{reward_tank_policy_text, IngestFault, TrainerFault, WalFault};
use crate::metrics::{LatencyHistogram, MetricsSnapshot, ShardMetrics};
use crate::queue::{BoundedQueue, ShedPolicy};
use crate::registry::{ModelBundle, ModelRegistry};
use crate::rollout::{
    self, CandidateBundle, RolloutConfig, RolloutCounters, RolloutError, RolloutInFlight,
    RolloutStatus,
};
use crate::shard::{
    spawn_shard, RolloutDirective, ShardCmd, ShardReply, ShardSpec, ShardStatus, SwapError,
};
use crate::trainer::{Trainer, TrainerConfig, TrainerObs, TrainerStatus};
use crate::wal::{FsyncPolicy, Wal, WalConfig, WalEntry, WalError};
use crate::FaultInjector;
use mobirescue_core::predictor::RequestPredictor;
use mobirescue_core::rl_dispatch::RlDispatchConfig;
use mobirescue_core::scenario::Scenario;
use mobirescue_obs::{Counter, Histogram, Level, ObsSnapshot, Registry, TimeSource};
use mobirescue_rl::persist::{mlp_from_text, mlp_to_text};
use mobirescue_rl::PairTransition;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::{open_snapshot, seal_snapshot};
use mobirescue_sim::{EpochReport, RequestSpec, SimConfig, World};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Configuration of a [`DispatchService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Independent city shards hosted on the thread pool.
    pub num_shards: usize,
    /// Capacity of each shard's request ingest queue.
    pub request_queue_capacity: usize,
    /// Capacity of the shared weather/road-damage advisory queue.
    pub advisory_queue_capacity: usize,
    /// Shed policy for request queues (default: reject the newcomer —
    /// already-accepted rescues are not silently forgotten).
    pub request_shed: ShedPolicy,
    /// Shed policy for advisories (default: evict the oldest — fresh
    /// observations supersede stale ones).
    pub advisory_shed: ShedPolicy,
    /// Per-shard simulation settings (the dispatch period is the paper's
    /// 5-minute tick).
    pub sim: SimConfig,
    /// Dispatcher settings shared by all shards.
    pub rl: RlDispatchConfig,
    /// Deterministic fault schedule for chaos testing (`None` in
    /// production: every hook is a no-op).
    pub faults: Option<Arc<FaultInjector>>,
    /// Per-epoch dispatch compute budget, ms. A shard whose primary
    /// dispatcher exceeds it discards the late plan and replans with the
    /// heuristic fallback (a degraded epoch). `None` disables the
    /// deadline.
    pub epoch_deadline_ms: Option<u64>,
    /// Restart a dead shard worker from its last boundary checkpoint and
    /// replay the epoch's drained events, instead of failing the epoch.
    /// Costs one shard snapshot per epoch.
    pub auto_recover: bool,
    /// Observability registry the service publishes into. `None` (the
    /// default) gives the service a private registry, reachable through
    /// [`DispatchService::obs`]. Supplying a registry is for embedding the
    /// service in a host that scrapes one place — never share it with a
    /// *live* second service: counters are get-or-create by name, and
    /// [`DispatchService::restore`] overwrites them from the snapshot.
    pub obs: Option<Arc<Registry>>,
    /// Gate parameters for [`DispatchService::submit_rollout`]'s guarded
    /// promotion pipeline (admission → shadow → canary → watch).
    pub rollout: RolloutConfig,
    /// Online training loop. `Some` makes every shard tap its dispatch
    /// transitions into a background trainer whose candidate checkpoints
    /// feed [`DispatchService::submit_rollout`]; `None` (the default)
    /// disables training entirely.
    pub trainer: Option<TrainerConfig>,
    /// Durable write-ahead ingest journal. `Some` journals every request
    /// push attempt *before* it reaches a queue — so an `Ok(true)` from
    /// [`DispatchService::ingest`] (and therefore a net-layer `Ack`)
    /// means the request survives a process kill; `None` (the default)
    /// keeps ingestion memory-only.
    pub wal: Option<WalConfig>,
}

impl ServeConfig {
    /// A service over `sim` with one shard and moderate queue bounds.
    pub fn new(sim: SimConfig) -> Self {
        Self {
            num_shards: 1,
            request_queue_capacity: 1_024,
            advisory_queue_capacity: 256,
            request_shed: ShedPolicy::DropNewest,
            advisory_shed: ShedPolicy::DropOldest,
            sim,
            rl: RlDispatchConfig::default(),
            faults: None,
            epoch_deadline_ms: None,
            auto_recover: false,
            obs: None,
            rollout: RolloutConfig::default(),
            trainer: None,
            wal: None,
        }
    }
}

/// Bounded retry for [`DispatchService::ingest_with_retry`]: when the
/// queue sheds the event, back off on the service clock and re-offer.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Re-offers after the first attempt.
    pub max_retries: u32,
    /// First backoff, ms (scaled by `backoff_multiplier` per retry).
    pub base_backoff_ms: u64,
    /// Multiplier applied to the backoff after every retry.
    pub backoff_multiplier: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff_ms: 10,
            backoff_multiplier: 2,
        }
    }
}

/// A request deferred in flight by an injected [`IngestFault::Delay`],
/// waiting for its release epoch.
#[derive(Debug, Clone)]
struct DelayedRequest {
    release_epoch: u32,
    shard: usize,
    spec: RequestSpec,
}

/// Mutable service-level accounting, behind one lock. Monotonic counters
/// live in the obs [`Registry`] instead; this holds only what the epoch
/// logic reads back.
struct ServiceState {
    epochs_completed: u32,
    histogram: LatencyHistogram,
    shard_metrics: Vec<ShardMetrics>,
    last_swap_error: Option<(usize, SwapError)>,
    /// The rollout pipeline's in-flight candidate, if any.
    rollout: Option<RolloutInFlight>,
    /// Recent per-epoch fleet rewards (capped at `rollout.watch_epochs`);
    /// their mean is the baseline a post-promotion watch compares against.
    recent_rewards: VecDeque<f64>,
}

struct ShardHandle {
    tx: Sender<ShardCmd>,
    rx: Receiver<ShardReply>,
    join: Option<JoinHandle<()>>,
}

/// The online trainer plus its last epoch-boundary checkpoint. The
/// checkpoint is refreshed after every trainer tick, so an injected
/// trainer crash at a boundary respawns into exactly the state an
/// unfaulted trainer would hold.
struct TrainerSlot {
    trainer: Trainer,
    checkpoint: String,
}

/// A running sharded dispatch service.
///
/// Producers call [`DispatchService::ingest`] from any thread at any time;
/// an epoch driver (usually [`crate::EpochScheduler`]) calls
/// [`DispatchService::run_epoch`] every dispatch period. Snapshots taken
/// at epoch boundaries restore into a service that continues
/// step-for-step identically.
pub struct DispatchService {
    config: ServeConfig,
    scenario: Arc<Scenario>,
    registry: Arc<ModelRegistry>,
    clock: Arc<dyn Clock>,
    request_queues: Vec<Arc<BoundedQueue<RequestSpec>>>,
    advisories: Arc<BoundedQueue<Event>>,
    // Each handle sits in its own Mutex so a dead worker can be replaced
    // through `&self` during crash recovery (and because the non-`Sync`
    // receiver must not be shared bare across the `Arc`).
    shards: Vec<Mutex<ShardHandle>>,
    delayed: Mutex<Vec<DelayedRequest>>,
    // Last boundary checkpoint per shard (auto-recover only).
    checkpoints: Mutex<Vec<Option<String>>>,
    obs: Arc<Registry>,
    // Registry-backed counters, handles fetched once at start.
    retries: Counter,
    restarts: Counter,
    advisories_applied: Counter,
    advisories_invalid: Counter,
    degraded_epochs: Counter,
    swap_fail_injected: Counter,
    swap_fail_build: Counter,
    swap_fail_rollout: Counter,
    rollouts_admitted: Counter,
    rollouts_rejected: Counter,
    rollouts_rolled_back: Counter,
    candidates_submitted: Counter,
    candidates_admitted: Counter,
    candidates_rejected: Counter,
    snapshot_hist: Histogram,
    // The online trainer (populated iff `config.trainer` is set), stepped
    // synchronously at each epoch boundary.
    trainer: Mutex<Option<TrainerSlot>>,
    trainer_obs: Option<TrainerObs>,
    // The durable ingest journal (populated iff `config.wal` is set),
    // appended to under its own lock so producers group-commit naturally.
    wal: Mutex<Option<Wal>>,
    state: Mutex<ServiceState>,
}

impl DispatchService {
    /// Starts the service: validates the configuration, spawns one worker
    /// thread per shard, and (when `config.wal` is set) opens the durable
    /// ingest journal and replays every journaled request into the fresh
    /// queues — a fresh boot has no snapshot, so the entire journal is the
    /// un-checkpointed suffix.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero shards,
    /// [`ServeError::World`] when the simulation configuration cannot host
    /// a world over `scenario`, and [`ServeError::Wal`] when the journal
    /// directory holds a corrupt segment.
    pub fn start(
        scenario: Arc<Scenario>,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
        registry: Arc<ModelRegistry>,
    ) -> Result<Self, ServeError> {
        let svc = Self::start_core(scenario, config, clock, registry)?;
        svc.attach_wal(Some(0))?;
        Ok(svc)
    }

    /// Spawns the service without touching the journal; `start` and
    /// `restore` attach it afterwards with the right replay cutoff.
    fn start_core(
        scenario: Arc<Scenario>,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
        registry: Arc<ModelRegistry>,
    ) -> Result<Self, ServeError> {
        if config.num_shards == 0 {
            return Err(ServeError::BadConfig("need at least one shard"));
        }
        // Validate once on the caller's thread so workers cannot fail
        // construction.
        World::new(&scenario.city, &scenario.conditions, &config.sim)?;
        let request_queues: Vec<_> = (0..config.num_shards)
            .map(|_| {
                Arc::new(BoundedQueue::new(
                    config.request_queue_capacity,
                    config.request_shed,
                ))
            })
            .collect();
        let advisories = Arc::new(BoundedQueue::new(
            config.advisory_queue_capacity,
            config.advisory_shed,
        ));
        let obs = config.obs.clone().unwrap_or_default();
        let make_spec = |scenario: &Arc<Scenario>| ShardSpec {
            scenario: Arc::clone(scenario),
            registry: Arc::clone(&registry),
            clock: Arc::clone(&clock),
            sim: config.sim.clone(),
            rl: config.rl.clone(),
            faults: config.faults.clone(),
            obs: Arc::clone(&obs),
            tap_transitions: config.trainer.is_some(),
        };
        let shards = (0..config.num_shards)
            .map(|i| {
                let (cmd_tx, cmd_rx) = channel();
                let (reply_tx, reply_rx) = channel();
                let join = spawn_shard(i, make_spec(&scenario), cmd_rx, reply_tx);
                Mutex::new(ShardHandle {
                    tx: cmd_tx,
                    rx: reply_rx,
                    join: Some(join),
                })
            })
            .collect();
        let state = ServiceState {
            epochs_completed: 0,
            histogram: LatencyHistogram::new(),
            shard_metrics: vec![ShardMetrics::default(); config.num_shards],
            last_swap_error: None,
            rollout: None,
            recent_rewards: VecDeque::new(),
        };
        let checkpoints = vec![None; config.num_shards];
        let retries = obs.counter("serve.ingest_retries");
        let restarts = obs.counter("serve.shard_restarts");
        let advisories_applied = obs.counter("serve.advisories_applied");
        let advisories_invalid = obs.counter("serve.advisories_invalid");
        let degraded_epochs = obs.counter("serve.degraded_epochs");
        let swap_fail_injected = obs.counter("serve.swap_failures_injected");
        let swap_fail_build = obs.counter("serve.swap_failures_build");
        let swap_fail_rollout = obs.counter("serve.swap_failures_rollout");
        let rollouts_admitted = obs.counter("serve.rollouts_admitted");
        let rollouts_rejected = obs.counter("serve.rollouts_rejected");
        let rollouts_rolled_back = obs.counter("serve.rollouts_rolled_back");
        let candidates_submitted = obs.counter("train.candidates_submitted");
        let candidates_admitted = obs.counter("train.candidates_admitted");
        let candidates_rejected = obs.counter("train.candidates_rejected");
        let snapshot_hist = obs.histogram("epoch.snapshot_ms");
        let trainer = config.trainer.clone().map(|cfg| {
            let trainer = Trainer::new(cfg);
            let checkpoint = trainer.snapshot_text();
            TrainerSlot {
                trainer,
                checkpoint,
            }
        });
        let trainer_obs = config.trainer.is_some().then(|| {
            let time: Arc<dyn TimeSource> = Arc::new(ClockTimeSource(Arc::clone(&clock)));
            TrainerObs::new(&obs, time)
        });
        Ok(Self {
            config,
            scenario,
            registry,
            clock,
            request_queues,
            advisories,
            shards,
            delayed: Mutex::new(Vec::new()),
            checkpoints: Mutex::new(checkpoints),
            obs,
            retries,
            restarts,
            advisories_applied,
            advisories_invalid,
            degraded_epochs,
            swap_fail_injected,
            swap_fail_build,
            swap_fail_rollout,
            rollouts_admitted,
            rollouts_rejected,
            rollouts_rolled_back,
            candidates_submitted,
            candidates_admitted,
            candidates_rejected,
            snapshot_hist,
            trainer: Mutex::new(trainer),
            trainer_obs,
            wal: Mutex::new(None),
            state: Mutex::new(state),
        })
    }

    /// Opens the journal from `config.wal` (no-op when unset) and replays
    /// the suffix past `hwm` into the request queues: `Some(h)` replays
    /// records with `seq > h`, `None` (a pre-wal snapshot with no
    /// high-water mark) replays nothing.
    fn attach_wal(&self, hwm: Option<u64>) -> Result<(), ServeError> {
        let Some(cfg) = self.config.wal.clone() else {
            return Ok(());
        };
        let time: Arc<dyn TimeSource> = Arc::new(ClockTimeSource(Arc::clone(&self.clock)));
        let (mut wal, recovery) = Wal::open(cfg, &self.obs, time)?;
        if let Some(WalError::TornTail { segment, offset }) = &recovery.torn {
            self.obs.events().log(
                Level::Warn,
                0,
                None,
                format!("wal: truncated torn tail in {segment} at byte {offset}"),
            );
        }
        let cutoff = hwm.unwrap_or(u64::MAX);
        let mut replayed = 0u64;
        for rec in &recovery.records {
            if rec.seq <= cutoff {
                continue;
            }
            if rec.shard >= self.request_queues.len() {
                return Err(ServeError::Wal(WalError::Corrupt {
                    segment: rec.segment.clone(),
                    offset: rec.offset,
                    why: format!(
                        "shard {} out of range (service hosts {})",
                        rec.shard,
                        self.request_queues.len()
                    ),
                }));
            }
            // Replay bypasses journaling and fault injection: the record
            // is already durable and the fault schedule already fired for
            // it in the run that journaled it. Every journaled record was
            // admitted (and acked) by the crashed process, so an overflow
            // here means the queue capacity shrank across the restart —
            // refuse rather than silently shed a durable request.
            if !self.request_queues[rec.shard].push(rec.spec) {
                return Err(ServeError::ReplayOverflow {
                    shard: rec.shard,
                    capacity: self.request_queues[rec.shard].capacity(),
                });
            }
            replayed += 1;
        }
        wal.note_replayed(replayed);
        if replayed > 0 {
            self.obs.events().log(
                Level::Info,
                0,
                None,
                format!("wal: replayed {replayed} journaled requests past hwm {cutoff}"),
            );
        }
        if let Some(h) = hwm {
            wal.mark_snapshot(h);
        }
        *lock(&self.wal) = Some(wal);
        Ok(())
    }

    /// Journals a batch of admitted offers for `shard` under an
    /// already-held journal lock. Callers must complete the matching
    /// queue pushes *before releasing `guard`*: [`snapshot`] captures
    /// the high-water mark and the queue contents in one journal
    /// critical section, so journal-and-push must be atomic with
    /// respect to it — a record at `seq <= hwm` is always visible to
    /// the queue capture, a record past it never is.
    ///
    /// Only offers the bounded queue will actually admit may be passed
    /// in: a journaled record means "admitted and about to be acked",
    /// or recovery would replay requests no client was ever acked for.
    ///
    /// One injected WAL fault is drawn per call with a non-empty batch,
    /// so a duplicate-fault double push journals as a single group
    /// commit under one draw (and a shed offer, which never reaches the
    /// journal, draws nothing).
    ///
    /// [`snapshot`]: DispatchService::snapshot
    fn journal_locked(
        &self,
        guard: &mut MutexGuard<'_, Option<Wal>>,
        shard: usize,
        specs: &[RequestSpec],
    ) -> Result<(), ServeError> {
        let Some(wal) = guard.as_mut() else {
            return Ok(());
        };
        if specs.is_empty() {
            return Ok(());
        }
        let clock_ms = self.clock.now_ms();
        let entries: Vec<WalEntry> = specs
            .iter()
            .map(|spec| WalEntry {
                clock_ms,
                shard,
                spec: *spec,
            })
            .collect();
        match self.config.faults.as_ref().and_then(|f| f.next_wal_fault()) {
            Some(WalFault::TornAppend) => {
                // The append dies mid-write: the tail is torn (and healed
                // in place, as recovery would), nothing was made durable,
                // so the caller must refuse the request instead of acking.
                let err = wal.inject_torn_append(&entries[0]);
                self.obs
                    .events()
                    .log(Level::Warn, 0, Some(shard), format!("wal: injected {err}"));
                return Err(ServeError::Wal(err));
            }
            Some(WalFault::SegmentBitFlip) => {
                wal.append(&entries)?;
                if let Some((segment, offset)) = wal.inject_bit_flip() {
                    self.obs.events().log(
                        Level::Warn,
                        0,
                        Some(shard),
                        format!("wal: injected bit flip in {segment} at byte {offset}"),
                    );
                }
            }
            Some(WalFault::FsyncStall(ms)) => {
                self.clock.sleep_ms(ms);
                wal.append(&entries)?;
            }
            None => {
                wal.append(&entries)?;
            }
        }
        Ok(())
    }

    /// Journals then pushes one request, atomically with respect to
    /// [`snapshot`]: the queue only sees specs the journal already
    /// holds, so `Ok(true)` here means the request survives a process
    /// kill. A full queue sheds *before* journaling — `Ok(false)` means
    /// the offer left no durable trace, so a recovery never replays a
    /// request whose client got a NACK (and a shed-then-retried offer
    /// is journaled exactly once, on the attempt that is admitted).
    ///
    /// The journal lock is held across the push; it serializes every
    /// journaled push, which is what makes the shed check race-free
    /// (concurrent epoch drains only ever make room).
    ///
    /// [`snapshot`]: DispatchService::snapshot
    fn journal_push(&self, shard: usize, spec: RequestSpec) -> Result<bool, ServeError> {
        let mut guard = lock(&self.wal);
        let q = &self.request_queues[shard];
        if q.admittable(1) == 0 {
            return Ok(q.push(spec));
        }
        self.journal_locked(&mut guard, shard, &[spec])?;
        Ok(q.push(spec))
    }

    /// Flushes the journal when the fsync policy is `Epoch`; called at
    /// every epoch boundary.
    fn wal_epoch_sync(&self) -> Result<(), ServeError> {
        let mut guard = lock(&self.wal);
        if let Some(wal) = guard.as_mut() {
            if wal.fsync_policy() == FsyncPolicy::Epoch {
                wal.sync()?;
            }
        }
        Ok(())
    }

    /// Forces the journal to stable storage regardless of fsync policy.
    /// Drain paths call this before reporting a clean shutdown.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Wal`] when the flush fails.
    pub fn wal_sync(&self) -> Result<(), ServeError> {
        let mut guard = lock(&self.wal);
        if let Some(wal) = guard.as_mut() {
            wal.sync()?;
        }
        Ok(())
    }

    /// Deletes journal segments wholly covered by the last snapshot's
    /// high-water mark, returning how many were removed. Call only after
    /// the snapshot that recorded that mark is durably persisted —
    /// compaction deletes the only other copy of those records.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Wal`] when a segment cannot be removed.
    pub fn wal_compact(&self) -> Result<usize, ServeError> {
        let mut guard = lock(&self.wal);
        match guard.as_mut() {
            Some(wal) => Ok(wal.compact()?),
            None => Ok(0),
        }
    }

    /// The journal's last assigned sequence number (0 when no journal is
    /// configured or nothing was ever journaled).
    pub fn wal_last_seq(&self) -> u64 {
        lock(&self.wal).as_ref().map_or(0, |w| w.last_seq())
    }

    fn state(&self) -> MutexGuard<'_, ServiceState> {
        lock(&self.state)
    }

    fn shard(&self, i: usize) -> MutexGuard<'_, ShardHandle> {
        lock(&self.shards[i])
    }

    fn shard_spec(&self) -> ShardSpec {
        ShardSpec {
            scenario: Arc::clone(&self.scenario),
            registry: Arc::clone(&self.registry),
            clock: Arc::clone(&self.clock),
            sim: self.config.sim.clone(),
            rl: self.config.rl.clone(),
            faults: self.config.faults.clone(),
            obs: Arc::clone(&self.obs),
            tap_transitions: self.config.trainer.is_some(),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The observability registry the service (and its shard workers)
    /// publish into: `serve.*` counters, per-epoch phase histograms
    /// (`epoch.ingest_ms`, `epoch.predict_ms`, `epoch.dispatch_ms`,
    /// `epoch.routing_ms`, `epoch.snapshot_ms`), per-shard `routing.*`
    /// cache gauges, and the structured event ring.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// How many dead shard workers were restarted from a checkpoint. An
    /// operational counter, deliberately *not* part of
    /// [`MetricsSnapshot`] nor the snapshot text: a recovered run must
    /// converge to the exact state of an unfaulted one.
    pub fn shard_restarts(&self) -> u64 {
        self.restarts.value()
    }

    /// Submits a candidate checkpoint bundle to the guarded rollout
    /// pipeline instead of installing it directly into the registry.
    ///
    /// The candidate is structurally validated at once ([`rollout::admit`]:
    /// parse, finite weights, `FEATURE_DIM`-compatible shapes, sane probe
    /// outputs); an admitted candidate then advances one pipeline stage per
    /// [`DispatchService::run_epoch`] — shadow scoring, canary shards,
    /// fleet-wide promotion, post-promotion watch — and any gate failure
    /// rolls it back without ever (further) touching dispatch. Returns the
    /// in-flight status, or `None` when the configured gates are all empty
    /// and the candidate was promoted immediately.
    ///
    /// With a [`FaultInjector`] configured, a scheduled checkpoint poison
    /// replaces the submitted policy text (a corrupted artifact store);
    /// admission must then reject it, or — for an adversarially plausible
    /// poison — the shadow/watch gates must catch it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Rollout`] with a typed [`RolloutError`]: a
    /// rollout already in flight, an empty candidate, or an admission
    /// failure naming the offending artifact.
    pub fn submit_rollout(
        &self,
        predictor_text: Option<&str>,
        policy_text: Option<&str>,
    ) -> Result<Option<RolloutStatus>, ServeError> {
        let mut state = self.state();
        let epoch = state.epochs_completed;
        if state.rollout.is_some() {
            self.rollouts_rejected.inc();
            return Err(ServeError::Rollout(RolloutError::InFlight));
        }
        // The poison hook models a corrupted artifact store: what admission
        // sees is what the store delivered, not what the trainer submitted.
        let policy_text = match &self.config.faults {
            Some(injector) => injector.poison_checkpoint(policy_text.map(str::to_owned)),
            None => policy_text.map(str::to_owned),
        };
        let admitted = rollout::admit(
            predictor_text,
            policy_text.as_deref(),
            self.config.rollout.probe_bound,
        );
        let (predictor, policy) = match admitted {
            Ok(models) => models,
            Err(e) => {
                self.rollouts_rejected.inc();
                self.obs.events().log(
                    Level::Warn,
                    epoch,
                    None,
                    format!("rollout candidate rejected at admission: {e}"),
                );
                return Err(ServeError::Rollout(e));
            }
        };
        self.rollouts_admitted.inc();
        let version = self.registry.current().version + 1;
        let candidate = CandidateBundle {
            bundle: Arc::new(ModelBundle {
                version,
                predictor,
                policy,
            }),
            predictor_text: predictor_text.map(normalize_text),
            policy_text: policy_text.as_deref().map(normalize_text),
        };
        let cfg = &self.config.rollout;
        let mut events: Vec<(Level, Option<usize>, String)> = Vec::new();
        let inflight = if cfg.shadow_epochs > 0 {
            events.push((
                Level::Info,
                None,
                format!("rollout v{version}: admitted, entering shadow evaluation"),
            ));
            Some(RolloutInFlight::Shadow {
                done: 0,
                cand_total: 0.0,
                inc_total: 0.0,
                candidate,
            })
        } else if cfg.canary_epochs > 0 && cfg.canary_shards > 0 {
            events.push((
                Level::Info,
                None,
                format!("rollout v{version}: admitted, entering canary stage"),
            ));
            Some(RolloutInFlight::Canary {
                done: 0,
                canary_total: 0.0,
                control_total: 0.0,
                failures: 0,
                candidate,
            })
        } else {
            self.promote(&mut state, &candidate, &mut events)
        };
        let status = inflight.as_ref().map(RolloutInFlight::status);
        state.rollout = inflight;
        drop(state);
        for (level, shard, message) in events {
            self.obs.events().log(level, epoch, shard, message);
        }
        Ok(status)
    }

    /// The in-flight rollout's stage, epochs completed within it, and the
    /// candidate's (tentative) version; `None` when nothing is in flight.
    pub fn rollout_status(&self) -> Option<RolloutStatus> {
        self.state().rollout.as_ref().map(RolloutInFlight::status)
    }

    /// Lifetime rollout counters: admitted, rejected, rolled back.
    /// Operational counters (like [`DispatchService::shard_restarts`]),
    /// deliberately not part of the snapshot text.
    pub fn rollout_counters(&self) -> RolloutCounters {
        RolloutCounters {
            admitted: self.rollouts_admitted.value(),
            rejected: self.rollouts_rejected.value(),
            rolled_back: self.rollouts_rolled_back.value(),
        }
    }

    /// The online trainer's progress counters, or `None` when the service
    /// was configured without a trainer.
    pub fn trainer_status(&self) -> Option<TrainerStatus> {
        lock(&self.trainer).as_ref().map(|s| s.trainer.status())
    }

    /// The trainer's current online-network checkpoint text (exactly what
    /// its next candidate emission would submit), or `None` without a
    /// trainer. Byte-stable across snapshot/restore and, on a
    /// [`crate::SimClock`], across same-seeded runs.
    pub fn trainer_policy_text(&self) -> Option<String> {
        lock(&self.trainer)
            .as_ref()
            .map(|s| s.trainer.policy_text())
    }

    /// Installs the candidate fleet-wide, pinning the previous bundle for
    /// the watch window's rollback (when a watch window is configured).
    fn promote(
        &self,
        state: &mut ServiceState,
        candidate: &CandidateBundle,
        events: &mut Vec<(Level, Option<usize>, String)>,
    ) -> Option<RolloutInFlight> {
        let prior = self.registry.current();
        let version = self.registry.install(
            candidate.bundle.predictor.clone(),
            candidate.bundle.policy.clone(),
        );
        events.push((
            Level::Info,
            None,
            format!("rollout v{version}: promoted fleet-wide"),
        ));
        let cfg = &self.config.rollout;
        if cfg.watch_epochs == 0 {
            return None;
        }
        let baseline = if state.recent_rewards.is_empty() {
            None
        } else {
            Some(state.recent_rewards.iter().sum::<f64>() / state.recent_rewards.len() as f64)
        };
        Some(RolloutInFlight::Watch {
            done: 0,
            total: 0.0,
            baseline,
            prior,
        })
    }

    /// Advances the rollout state machine by one completed epoch. Runs
    /// under the state lock, after the epoch's shard statuses have been
    /// folded into the accumulators passed here.
    #[allow(clippy::too_many_arguments)] // a fold over one epoch's statuses
    fn advance_rollout(
        &self,
        state: &mut ServiceState,
        fleet_reward: f64,
        shadow_cand: f64,
        shadow_error: Option<(usize, String)>,
        canary_reward: f64,
        canary_n: u32,
        control_reward: f64,
        control_n: u32,
        canary_failures: u64,
        events: &mut Vec<(Level, Option<usize>, String)>,
    ) {
        let cfg = &self.config.rollout;
        let next = match state.rollout.take() {
            None => None,
            Some(RolloutInFlight::Shadow {
                mut done,
                mut cand_total,
                mut inc_total,
                candidate,
            }) => {
                let version = candidate.bundle.version;
                if let Some((shard, e)) = shadow_error {
                    self.rollouts_rolled_back.inc();
                    events.push((
                        Level::Warn,
                        Some(shard),
                        format!(
                            "rollout v{version}: shadow evaluation failed, candidate dropped: {e}"
                        ),
                    ));
                    None
                } else {
                    done += 1;
                    cand_total += shadow_cand;
                    inc_total += fleet_reward;
                    if done < cfg.shadow_epochs {
                        Some(RolloutInFlight::Shadow {
                            done,
                            cand_total,
                            inc_total,
                            candidate,
                        })
                    } else if cand_total + cfg.shadow_slack >= inc_total {
                        events.push((
                            Level::Info,
                            None,
                            format!(
                                "rollout v{version}: shadow gate passed \
                                 (candidate {cand_total:.3} vs incumbent {inc_total:.3})"
                            ),
                        ));
                        if cfg.canary_epochs > 0 && cfg.canary_shards > 0 {
                            Some(RolloutInFlight::Canary {
                                done: 0,
                                canary_total: 0.0,
                                control_total: 0.0,
                                failures: 0,
                                candidate,
                            })
                        } else {
                            self.promote(state, &candidate, events)
                        }
                    } else {
                        self.rollouts_rolled_back.inc();
                        events.push((
                            Level::Warn,
                            None,
                            format!(
                                "rollout v{version}: shadow gate failed \
                                 (candidate {cand_total:.3} vs incumbent {inc_total:.3}), \
                                 candidate dropped"
                            ),
                        ));
                        None
                    }
                }
            }
            Some(RolloutInFlight::Canary {
                mut done,
                mut canary_total,
                mut control_total,
                mut failures,
                candidate,
            }) => {
                let version = candidate.bundle.version;
                done += 1;
                canary_total += canary_reward;
                control_total += control_reward;
                failures += canary_failures;
                if done < cfg.canary_epochs {
                    Some(RolloutInFlight::Canary {
                        done,
                        canary_total,
                        control_total,
                        failures,
                        candidate,
                    })
                } else {
                    let canary_mean = canary_total / f64::from(canary_n.max(1) * done);
                    let control_mean = if control_n == 0 {
                        0.0
                    } else {
                        control_total / f64::from(control_n * done)
                    };
                    let healthy = failures == 0
                        && (control_n == 0 || canary_mean + cfg.canary_slack >= control_mean);
                    if healthy {
                        events.push((
                            Level::Info,
                            None,
                            format!(
                                "rollout v{version}: canary gate passed \
                                 (canary {canary_mean:.3} vs control {control_mean:.3})"
                            ),
                        ));
                        self.promote(state, &candidate, events)
                    } else {
                        self.rollouts_rolled_back.inc();
                        events.push((
                            Level::Warn,
                            None,
                            format!(
                                "rollout v{version}: canary gate failed ({failures} build \
                                 failures, canary {canary_mean:.3} vs control \
                                 {control_mean:.3}), candidate dropped"
                            ),
                        ));
                        None
                    }
                }
            }
            Some(RolloutInFlight::Watch {
                mut done,
                mut total,
                baseline,
                prior,
            }) => {
                let version = prior.version + 1;
                done += 1;
                total += fleet_reward;
                if done < cfg.watch_epochs {
                    Some(RolloutInFlight::Watch {
                        done,
                        total,
                        baseline,
                        prior,
                    })
                } else {
                    let mean = total / f64::from(done);
                    match baseline {
                        Some(b) if mean + cfg.watch_slack < b => {
                            let prior_version = prior.version;
                            self.registry.restore_bundle(prior);
                            self.rollouts_rolled_back.inc();
                            events.push((
                                Level::Warn,
                                None,
                                format!(
                                    "rollout v{version}: post-promotion regression (fleet \
                                     reward {mean:.3} vs baseline {b:.3}), rolled back to \
                                     v{prior_version}"
                                ),
                            ));
                        }
                        _ => {
                            events.push((
                                Level::Info,
                                None,
                                format!(
                                    "rollout v{version}: watch window clean, promotion confirmed"
                                ),
                            ));
                        }
                    }
                    None
                }
            }
        };
        state.rollout = next;
        state.recent_rewards.push_back(fleet_reward);
        let cap = cfg.watch_epochs.max(1) as usize;
        while state.recent_rewards.len() > cap {
            state.recent_rewards.pop_front();
        }
    }

    fn validate_request(&self, spec: &RequestSpec) -> Result<(), ServeError> {
        if spec.segment.index() >= self.scenario.city.network.num_segments() {
            return Err(ServeError::World(
                mobirescue_sim::WorldError::UnknownSegment(spec.segment),
            ));
        }
        Ok(())
    }

    /// Offers one event to the ingestion front. Returns `Ok(true)` if it
    /// was admitted, `Ok(false)` if the bounded queue shed it.
    ///
    /// When a [`FaultInjector`] is configured, each *request* offer passes
    /// through it: the event may be dropped (`Ok(false)`), deferred to a
    /// later epoch (`Ok(true)` — it is in flight, not lost), enqueued
    /// twice, or corrupted in flight (rejected by validation with a typed
    /// error, like any malformed event). Advisories bypass injection.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownShard`] for an out-of-range shard and
    /// [`ServeError::World`] for a request on a segment the city does not
    /// have — malformed events are rejected at the door, not queued.
    pub fn ingest(&self, event: Event) -> Result<bool, ServeError> {
        let shard = event.shard();
        if shard >= self.config.num_shards {
            return Err(ServeError::UnknownShard {
                shard,
                num_shards: self.config.num_shards,
            });
        }
        match event {
            Event::Request { spec, .. } => {
                self.validate_request(&spec)?;
                let Some(injector) = &self.config.faults else {
                    return self.journal_push(shard, spec);
                };
                match injector.next_ingest_fault() {
                    None => self.journal_push(shard, spec),
                    Some(IngestFault::Drop) => Ok(false),
                    Some(IngestFault::Delay(epochs)) => {
                        // Not journaled yet: the spec is journaled when it
                        // is released into a queue, so replay never
                        // resurrects a request ahead of its release epoch.
                        let release_epoch = self.state().epochs_completed + epochs.max(1);
                        lock(&self.delayed).push(DelayedRequest {
                            release_epoch,
                            shard,
                            spec,
                        });
                        Ok(true)
                    }
                    Some(IngestFault::Duplicate) => {
                        // Both push attempts journal as one group commit
                        // (and one injected-wal-fault draw) — but only
                        // the copies the bounded queue has room to admit;
                        // a shed copy must leave no durable trace.
                        let mut guard = lock(&self.wal);
                        let q = &self.request_queues[shard];
                        let room = q.admittable(2);
                        self.journal_locked(&mut guard, shard, &[spec, spec][..room])?;
                        let first = q.push(spec);
                        let _ = q.push(spec);
                        Ok(first)
                    }
                    Some(IngestFault::Corrupt) => {
                        // The payload is damaged in flight; validation
                        // rejects it exactly like any malformed event.
                        Err(ServeError::World(
                            mobirescue_sim::WorldError::UnknownSegment(SegmentId(u32::MAX)),
                        ))
                    }
                }
            }
            other => Ok(self.advisories.push(other)),
        }
    }

    /// [`DispatchService::ingest`] with bounded retry: when the queue
    /// sheds the offer, back off on the service clock and re-offer, up to
    /// `retry.max_retries` times. Each re-offer is a fresh ingestion (it
    /// passes through fault injection again). Errors are permanent —
    /// malformed events are not retried.
    ///
    /// # Errors
    ///
    /// Whatever [`DispatchService::ingest`] returns.
    pub fn ingest_with_retry(&self, event: Event, retry: &RetryPolicy) -> Result<bool, ServeError> {
        let mut backoff_ms = retry.base_backoff_ms;
        let mut attempts = 0;
        loop {
            if self.ingest(event)? {
                return Ok(true);
            }
            if attempts >= retry.max_retries {
                return Ok(false);
            }
            attempts += 1;
            self.retries.inc();
            self.clock.sleep_ms(backoff_ms);
            backoff_ms = backoff_ms.saturating_mul(retry.backoff_multiplier.max(1));
        }
    }

    /// Moves injection-delayed requests whose release epoch has arrived
    /// into their shard queues (in arrival order).
    fn release_due_delayed(&self) {
        let epoch = self.state().epochs_completed;
        let mut delayed = lock(&self.delayed);
        if delayed.is_empty() {
            return;
        }
        let mut pending = Vec::with_capacity(delayed.len());
        for d in delayed.drain(..) {
            if d.release_epoch <= epoch {
                // Journal at release time, atomically with the push (like
                // every journaled push); if journaling fails the request
                // stays pending for the next boundary instead of being
                // silently lost, and a shed release is never journaled.
                let released = {
                    let mut guard = lock(&self.wal);
                    let q = &self.request_queues[d.shard];
                    if q.admittable(1) == 0 {
                        let _ = q.push(d.spec);
                        Ok(())
                    } else {
                        self.journal_locked(&mut guard, d.shard, &[d.spec])
                            .map(|()| {
                                let _ = q.push(d.spec);
                            })
                    }
                };
                if let Err(err) = released {
                    self.obs.events().log(
                        Level::Warn,
                        epoch,
                        Some(d.shard),
                        format!("wal: delayed release held back: {err}"),
                    );
                    pending.push(d);
                    continue;
                }
                if let Some(injector) = &self.config.faults {
                    injector.note_delay_released();
                }
            } else {
                pending.push(d);
            }
        }
        *delayed = pending;
    }

    /// Validates drained advisories against the scenario. Weather and
    /// road-damage reports do not mutate the world — hourly conditions are
    /// the scenario's precomputed ground truth (the paper's G̃ per hour) —
    /// but every advisory is checked and counted, and invalid ones
    /// (unknown segment, out-of-window hour) are dropped loudly in the
    /// metrics rather than silently.
    fn apply_advisories(&self, drained: Vec<Event>) -> (u64, u64) {
        let hours = self.scenario.conditions.hours();
        let num_segments = self.scenario.city.network.num_segments();
        let mut applied = 0;
        let mut invalid = 0;
        for event in drained {
            let ok = match event {
                Event::Weather { hour, rain_mm, .. } => {
                    hour < hours && rain_mm.is_finite() && rain_mm >= 0.0
                }
                Event::RoadDamage { segment, hour, .. } => {
                    hour < hours && segment.index() < num_segments
                }
                Event::Request { .. } => false, // never queued here
            };
            if ok {
                applied += 1;
            } else {
                invalid += 1;
            }
        }
        (applied, invalid)
    }

    fn shard_error(&self, shard: usize, message: impl Into<String>) -> ServeError {
        ServeError::Shard {
            shard,
            message: message.into(),
        }
    }

    fn recv_reply(&self, shard: usize) -> Result<ShardReply, ServeError> {
        self.shard(shard)
            .rx
            .recv()
            .map_err(|_| self.shard_error(shard, "worker thread died"))
    }

    fn to_metrics(&self, shard: usize, st: &ShardStatus) -> ShardMetrics {
        ShardMetrics {
            epochs: st.epochs,
            queue_depth: self.request_queues[shard].depth(),
            injected: st.injected,
            rejected: st.rejected,
            waiting: st.waiting,
            picked_up: st.picked_up,
            delivered: st.delivered,
            model_version: st.model_version,
            routing_hits: st.routing.hits,
            routing_misses: st.routing.misses,
            degraded: st.degraded,
        }
    }

    /// Restarts shard `i`'s worker, restores it from the last boundary
    /// checkpoint (a missing checkpoint means the shard had completed no
    /// epoch — a fresh world *is* its last good state), and replays the
    /// epoch with the already-drained `requests`. The crashed epoch's
    /// faults were consumed when they fired, so the replay runs unfaulted.
    fn recover_shard(
        &self,
        i: usize,
        requests: &[RequestSpec],
        budget_ms: Option<u64>,
        rollout: Option<RolloutDirective>,
    ) -> Result<Box<ShardStatus>, ServeError> {
        self.restarts.inc();
        self.obs.events().log(
            Level::Error,
            self.state().epochs_completed,
            Some(i),
            "shard worker died; restarting from last boundary checkpoint",
        );
        {
            let mut h = self.shard(i);
            if let Some(join) = h.join.take() {
                let _ = join.join();
            }
            let (cmd_tx, cmd_rx) = channel();
            let (reply_tx, reply_rx) = channel();
            h.join = Some(spawn_shard(i, self.shard_spec(), cmd_rx, reply_tx));
            h.tx = cmd_tx;
            h.rx = reply_rx;
        }
        let checkpoint = lock(&self.checkpoints)[i].clone();
        if let Some(text) = checkpoint {
            self.shard(i)
                .tx
                .send(ShardCmd::Restore(text))
                .map_err(|_| self.shard_error(i, "restarted worker gone"))?;
            match self.recv_reply(i)? {
                ShardReply::Restored(Ok(_)) => {}
                ShardReply::Restored(Err(message)) => {
                    return Err(self.shard_error(i, message));
                }
                _ => return Err(self.shard_error(i, "out-of-protocol reply")),
            }
        }
        self.shard(i)
            .tx
            .send(ShardCmd::RunEpoch {
                requests: requests.to_vec(),
                budget_ms,
                rollout,
            })
            .map_err(|_| self.shard_error(i, "restarted worker gone"))?;
        match self.recv_reply(i)? {
            ShardReply::Epoch(Ok(st)) => Ok(st),
            ShardReply::Epoch(Err(message)) => Err(self.shard_error(i, message)),
            _ => Err(self.shard_error(i, "out-of-protocol reply")),
        }
    }

    /// Takes a post-epoch checkpoint of every shard for crash recovery.
    fn checkpoint_shards(&self) -> Result<(), ServeError> {
        let ts = ClockTimeSource(Arc::clone(&self.clock));
        let _span = self.snapshot_hist.time(&ts);
        for i in 0..self.shards.len() {
            self.shard(i)
                .tx
                .send(ShardCmd::Snapshot)
                .map_err(|_| self.shard_error(i, "worker thread gone"))?;
            match self.recv_reply(i)? {
                ShardReply::Snapshot(Ok(text)) => {
                    lock(&self.checkpoints)[i] = Some(text);
                }
                ShardReply::Snapshot(Err(message)) => {
                    return Err(self.shard_error(i, message));
                }
                _ => return Err(self.shard_error(i, "out-of-protocol reply")),
            }
        }
        Ok(())
    }

    /// Runs one dispatch epoch on every shard (the barrier): releases due
    /// delayed events, drains each shard's request queue into its world,
    /// advances all shards one dispatch period in parallel, and collects
    /// their reports. With `auto_recover`, a shard whose worker died is
    /// restarted from its last boundary checkpoint and the epoch is
    /// replayed with the same drained batch — no epoch is skipped.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Shard`] when a worker has died (and
    /// `auto_recover` is off or recovery itself failed).
    pub fn run_epoch(&self) -> Result<Vec<EpochReport>, ServeError> {
        self.release_due_delayed();
        let (applied, invalid) = self.apply_advisories(self.advisories.drain());
        let budget_ms = self.config.epoch_deadline_ms;
        // In-flight rollout → a per-shard directive: shadow candidates are
        // scored on every shard; canary candidates serve only the shards
        // below `canary_shards` (the rest are controls).
        let stage_directive = match &self.state().rollout {
            Some(RolloutInFlight::Shadow { candidate, .. }) => {
                Some(RolloutDirective::Shadow(Arc::clone(&candidate.bundle)))
            }
            Some(RolloutInFlight::Canary { candidate, .. }) => {
                Some(RolloutDirective::Canary(Arc::clone(&candidate.bundle)))
            }
            _ => None,
        };
        let canary_shards = self.config.rollout.canary_shards;
        let directive = |i: usize| match &stage_directive {
            Some(RolloutDirective::Shadow(_)) => stage_directive.clone(),
            Some(RolloutDirective::Canary(_)) if i < canary_shards => stage_directive.clone(),
            _ => None,
        };
        let drained: Vec<Vec<RequestSpec>> =
            self.request_queues.iter().map(|q| q.drain()).collect();
        let mut send_failed = vec![false; self.shards.len()];
        for (i, requests) in drained.iter().enumerate() {
            let sent = self.shard(i).tx.send(ShardCmd::RunEpoch {
                requests: requests.clone(),
                budget_ms,
                rollout: directive(i),
            });
            if sent.is_err() {
                if !self.config.auto_recover {
                    return Err(self.shard_error(i, "worker thread gone"));
                }
                send_failed[i] = true;
            }
        }
        let mut statuses = Vec::with_capacity(self.shards.len());
        let mut first_error = None;
        for (i, requests) in drained.iter().enumerate() {
            let outcome = if send_failed[i] {
                Err(self.shard_error(i, "worker thread gone"))
            } else {
                match self.recv_reply(i) {
                    Ok(ShardReply::Epoch(Ok(st))) => Ok(st),
                    Ok(ShardReply::Epoch(Err(message))) => Err(self.shard_error(i, message)),
                    Ok(_) => Err(self.shard_error(i, "out-of-protocol reply")),
                    Err(e) => Err(e),
                }
            };
            let outcome = match outcome {
                Err(_) if self.config.auto_recover => {
                    self.recover_shard(i, requests, budget_ms, directive(i))
                }
                other => other,
            };
            match outcome {
                Ok(st) => statuses.push((i, st)),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        let mut reports = Vec::with_capacity(statuses.len());
        let mut events: Vec<(Level, Option<usize>, String)> = Vec::new();
        // Tapped transitions, collected in shard-index order so the
        // trainer's input stream is deterministic.
        let mut trainer_feed: Vec<PairTransition> = Vec::new();
        let epoch;
        {
            let mut state = self.state();
            let mut any_degraded = false;
            let mut fleet_reward = 0.0;
            let mut shadow_cand = 0.0;
            let mut shadow_error: Option<(usize, String)> = None;
            let (mut canary_reward, mut canary_n) = (0.0, 0u32);
            let (mut control_reward, mut control_n) = (0.0, 0u32);
            let mut canary_failures = 0u64;
            let canary_stage = matches!(&stage_directive, Some(RolloutDirective::Canary(_)));
            for (i, st) in statuses {
                state.histogram.record(st.compute_ms);
                state.shard_metrics[i] = self.to_metrics(i, &st);
                any_degraded |= st.degraded_now;
                fleet_reward += st.reward;
                if let Some(sh) = &st.shadow {
                    shadow_cand += sh.candidate_reward;
                    if let Some(e) = &sh.error {
                        if shadow_error.is_none() {
                            shadow_error = Some((i, e.clone()));
                        }
                    }
                }
                if canary_stage {
                    if i < canary_shards {
                        canary_reward += st.reward;
                        canary_n += 1;
                    } else {
                        control_reward += st.reward;
                        control_n += 1;
                    }
                }
                if st.degraded_now {
                    events.push((
                        Level::Warn,
                        Some(i),
                        "epoch served degraded on the heuristic fallback".to_owned(),
                    ));
                }
                if let Some(err) = st.swap_error {
                    match &err {
                        SwapError::Injected => self.swap_fail_injected.inc(),
                        SwapError::Build(_) => self.swap_fail_build.inc(),
                        SwapError::Rollout(_) => {
                            self.swap_fail_rollout.inc();
                            canary_failures += 1;
                        }
                    }
                    events.push((Level::Warn, Some(i), format!("model swap failed: {err}")));
                    state.last_swap_error = Some((i, err));
                }
                if let Some(report) = st.report {
                    reports.push(report);
                }
                trainer_feed.extend(st.transitions);
            }
            self.advance_rollout(
                &mut state,
                fleet_reward,
                shadow_cand,
                shadow_error,
                canary_reward,
                canary_n,
                control_reward,
                control_n,
                canary_failures,
                &mut events,
            );
            epoch = state.epochs_completed;
            state.epochs_completed += 1;
            self.advisories_applied.add(applied);
            self.advisories_invalid.add(invalid);
            if any_degraded {
                self.degraded_epochs.inc();
            }
        }
        for (level, shard, message) in events {
            self.obs.events().log(level, epoch, shard, message);
        }
        self.run_trainer_phase(epoch, trainer_feed);
        self.wal_epoch_sync()?;
        self.obs
            .events()
            .log(Level::Info, epoch, None, format!("epoch {epoch} complete"));
        if self.config.auto_recover {
            self.checkpoint_shards()?;
        }
        Ok(reports)
    }

    /// The trainer's slice of the epoch boundary: apply any scheduled
    /// trainer fault, offer the epoch's tapped transitions into the
    /// bounded queue, run the learning steps, refresh the crash-recovery
    /// checkpoint, and route an emitted candidate into the rollout
    /// pipeline. A no-op when no trainer is configured.
    fn run_trainer_phase(&self, epoch: u32, mut transitions: Vec<PairTransition>) {
        let Some(obs) = &self.trainer_obs else { return };
        let fault = self
            .config
            .faults
            .as_ref()
            .and_then(|f| f.take_trainer_fault(epoch));
        let mut flood = 0u32;
        match fault {
            None => {}
            Some(TrainerFault::TransitionDrop) => {
                // Lost in transit, upstream of the trainer queue: these
                // never count as offered, so conservation still holds.
                let n = transitions.len();
                transitions.clear();
                self.obs.events().log(
                    Level::Warn,
                    epoch,
                    None,
                    format!("trainer fault: {n} tapped transitions lost in transit"),
                );
            }
            Some(TrainerFault::StaleCandidateFlood(n)) => flood = n,
            Some(TrainerFault::Crash) => {
                let mut slot = lock(&self.trainer);
                if let Some(s) = slot.as_mut() {
                    let cfg = self
                        .config
                        .trainer
                        .clone()
                        .expect("trainer slot implies config");
                    match Trainer::restore(cfg, &s.checkpoint) {
                        Ok(trainer) => {
                            s.trainer = trainer;
                            self.obs.events().log(
                                Level::Error,
                                epoch,
                                None,
                                "trainer crashed; respawned from last boundary checkpoint",
                            );
                        }
                        Err(e) => {
                            // Unreachable with self-written checkpoints;
                            // keep the live trainer rather than panicking.
                            self.obs.events().log(
                                Level::Error,
                                epoch,
                                None,
                                format!("trainer crash recovery failed, kept live state: {e}"),
                            );
                        }
                    }
                }
            }
        }
        let candidate = {
            let mut slot = lock(&self.trainer);
            let Some(s) = slot.as_mut() else { return };
            s.trainer.offer(transitions, obs);
            let candidate = s.trainer.epoch_tick(obs);
            s.checkpoint = s.trainer.snapshot_text();
            candidate
        };
        // Submission happens outside the trainer lock: `submit_rollout`
        // takes the state lock, and it never touches the trainer.
        if let Some(text) = candidate {
            self.candidates_submitted.inc();
            match self.submit_rollout(None, Some(&text)) {
                Ok(_) => {
                    self.candidates_admitted.inc();
                    self.obs.events().log(
                        Level::Info,
                        epoch,
                        None,
                        "trainer candidate submitted to the rollout pipeline",
                    );
                }
                Err(e) => {
                    // A rollout already in flight (or a rejected artifact)
                    // discards the candidate deterministically; the next
                    // cadence tick emits a fresher one anyway.
                    self.candidates_rejected.inc();
                    self.obs.events().log(
                        Level::Warn,
                        epoch,
                        None,
                        format!("trainer candidate discarded: {e}"),
                    );
                }
            }
        }
        for _ in 0..flood {
            // A wedged trainer replaying stale state: structurally valid,
            // reward-tanking candidates. Every one must die at a gate.
            self.candidates_submitted.inc();
            let stale = reward_tank_policy_text();
            match self.submit_rollout(None, Some(&stale)) {
                Ok(_) => self.candidates_admitted.inc(),
                Err(_) => self.candidates_rejected.inc(),
            }
        }
        if flood > 0 {
            self.obs.events().log(
                Level::Warn,
                epoch,
                None,
                format!("trainer fault: flood of {flood} stale candidates submitted"),
            );
        }
    }

    /// The most recent failed model hot-swap, if any: the shard index and
    /// the typed reason (injected fault, bundle build failure, or a
    /// rollout candidate rejected on a canary shard). A failed swap is not
    /// fatal — the shard keeps serving with its previous dispatcher, or
    /// degraded on the heuristic fallback when none exists — but operators
    /// should see it.
    pub fn last_swap_error(&self) -> Option<(usize, SwapError)> {
        self.state().last_swap_error.clone()
    }

    /// Assembles a point-in-time metrics snapshot without stopping any
    /// shard.
    pub fn metrics(&self) -> MetricsSnapshot {
        let state = self.state();
        let mut shards = state.shard_metrics.clone();
        for (i, m) in shards.iter_mut().enumerate() {
            m.queue_depth = self.request_queues[i].depth();
        }
        MetricsSnapshot {
            epochs_completed: state.epochs_completed,
            requests_accepted: self.request_queues.iter().map(|q| q.accepted()).sum(),
            requests_shed: self.request_queues.iter().map(|q| q.shed()).sum(),
            advisories_accepted: self.advisories.accepted(),
            advisories_shed: self.advisories.shed(),
            advisories_applied: self.advisories_applied.value(),
            advisories_invalid: self.advisories_invalid.value(),
            degraded_epochs: self.degraded_epochs.value(),
            ingest_retries: self.retries.value(),
            swap_failures_injected: self.swap_fail_injected.value(),
            swap_failures_build: self.swap_fail_build.value(),
            swap_failures_rollout: self.swap_fail_rollout.value(),
            model_version: self.registry.current().version,
            model_swaps: self.registry.swaps(),
            epoch_latency: state.histogram.clone(),
            shards,
        }
    }

    /// Mirrors the full [`MetricsSnapshot`] view into the registry and
    /// captures it. The returned snapshot therefore carries *everything*:
    /// the registry-native phase histograms, counters and events that
    /// accumulate live, plus `serve.*` mirrors of the queue, model and
    /// per-shard counters that have other sources of truth.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let m = self.metrics();
        let o = &self.obs;
        o.counter("serve.epochs_completed")
            .set(u64::from(m.epochs_completed));
        o.counter("serve.requests_accepted")
            .set(m.requests_accepted);
        o.counter("serve.requests_shed").set(m.requests_shed);
        o.counter("serve.advisories_accepted")
            .set(m.advisories_accepted);
        o.counter("serve.advisories_shed").set(m.advisories_shed);
        o.gauge("serve.model_version").set(m.model_version as i64);
        o.counter("serve.model_swaps").set(m.model_swaps);
        for (i, s) in m.shards.iter().enumerate() {
            let p = format!("serve.shard{i}");
            o.counter(&format!("{p}.epochs")).set(u64::from(s.epochs));
            o.gauge(&format!("{p}.queue_depth"))
                .set(s.queue_depth as i64);
            o.counter(&format!("{p}.injected")).set(s.injected);
            o.counter(&format!("{p}.rejected")).set(s.rejected);
            o.gauge(&format!("{p}.waiting")).set(s.waiting as i64);
            o.counter(&format!("{p}.picked_up")).set(s.picked_up as u64);
            o.counter(&format!("{p}.delivered")).set(s.delivered as u64);
            o.gauge(&format!("{p}.model_version"))
                .set(s.model_version as i64);
            o.counter(&format!("{p}.routing_hits")).set(s.routing_hits);
            o.counter(&format!("{p}.routing_misses"))
                .set(s.routing_misses);
            o.counter(&format!("{p}.degraded_epochs")).set(s.degraded);
        }
        o.snapshot()
    }

    /// Serializes the whole service — every shard's world, the pending
    /// queue contents, and the service counters — to a versioned text
    /// blob sealed with an FNV-1a checksum trailer. Take it at an epoch
    /// boundary (between [`run_epoch`] calls); a service restored from it
    /// continues identically.
    ///
    /// With a [`FaultInjector`] configured, a scheduled snapshot
    /// corruption damages the returned text (a torn or bit-rotted write);
    /// [`DispatchService::restore`] must then reject it.
    ///
    /// [`run_epoch`]: DispatchService::run_epoch
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Shard`] when a worker cannot serialize.
    pub fn snapshot(&self) -> Result<String, ServeError> {
        let ts = ClockTimeSource(Arc::clone(&self.clock));
        let _span = self.snapshot_hist.time(&ts);
        // Capture the journal high-water mark AND the queue contents in
        // ONE journal critical section, before taking the state lock (wal
        // and state locks are never held together). Every journaled push
        // holds the wal lock across its queue push, so a record at
        // `seq <= hwm` is already visible to this capture and a record
        // past the mark never is — exactly the invariant a restore's
        // replay-strictly-past-hwm depends on. Capturing them in separate
        // critical sections would let a concurrent listener thread slip a
        // push between them, losing (or duplicating) an acked request
        // across a crash-restore.
        let (wal_hwm, rqueue_text) = {
            let mut guard = lock(&self.wal);
            let hwm = match guard.as_mut() {
                Some(wal) => {
                    let hwm = wal.last_seq();
                    wal.mark_snapshot(hwm);
                    hwm
                }
                None => 0,
            };
            let mut rq = String::new();
            for (i, q) in self.request_queues.iter().enumerate() {
                let _ = writeln!(rq, "rqueue {i} {} {}", q.accepted(), q.shed());
                for spec in q.peek_all() {
                    let _ = writeln!(rq, "queued {i} {} {}", spec.appear_s, spec.segment.0);
                }
            }
            (hwm, rq)
        };
        let mut out = String::from("mrserve 1\n");
        {
            let state = self.state();
            let _ = writeln!(out, "epochs {} {}", state.epochs_completed, wal_hwm);
            let _ = writeln!(
                out,
                "advisories {} {} {} {}",
                self.advisories_applied.value(),
                self.advisories_invalid.value(),
                self.advisories.accepted(),
                self.advisories.shed()
            );
            let _ = writeln!(out, "hist {}", state.histogram.to_line());
            let _ = writeln!(
                out,
                "resil {} {} {} {} {}",
                self.degraded_epochs.value(),
                self.retries.value(),
                self.swap_fail_injected.value(),
                self.swap_fail_build.value(),
                self.swap_fail_rollout.value()
            );
            if !state.recent_rewards.is_empty() {
                out.push_str("rrew");
                for r in &state.recent_rewards {
                    let _ = write!(out, " {r:?}");
                }
                out.push('\n');
            }
            // In-flight rollout state: the stage accumulators plus the
            // checkpoint texts needed to rebuild the candidate (or, during
            // a watch window, the pinned prior bundle) bit-identically.
            match &state.rollout {
                None => {}
                Some(RolloutInFlight::Shadow {
                    done,
                    cand_total,
                    inc_total,
                    candidate,
                }) => {
                    let _ = writeln!(
                        out,
                        "rollout shadow {done} {cand_total:?} {inc_total:?} {}",
                        candidate.bundle.version
                    );
                    write_candidate_texts(&mut out, candidate);
                }
                Some(RolloutInFlight::Canary {
                    done,
                    canary_total,
                    control_total,
                    failures,
                    candidate,
                }) => {
                    let _ = writeln!(
                        out,
                        "rollout canary {done} {canary_total:?} {control_total:?} {failures} {}",
                        candidate.bundle.version
                    );
                    write_candidate_texts(&mut out, candidate);
                }
                Some(RolloutInFlight::Watch {
                    done,
                    total,
                    baseline,
                    prior,
                }) => {
                    let baseline_text = match baseline {
                        Some(b) => format!("{b:?}"),
                        None => "-".to_owned(),
                    };
                    let _ = writeln!(
                        out,
                        "rollout watch {done} {total:?} {baseline_text} {}",
                        prior.version
                    );
                    if let Some(p) = &prior.predictor {
                        write_text_block(&mut out, "rtext ppred", &p.to_text());
                    }
                    if let Some(net) = &prior.policy {
                        write_text_block(&mut out, "rtext ppol", &mlp_to_text(net));
                    }
                }
            }
        }
        // Trainer state rides along as one counted text block; snapshots
        // taken before the trainer existed simply lack the record, and
        // restore treats its absence as training-from-scratch (or
        // disabled, when the config carries no trainer).
        if let Some(slot) = lock(&self.trainer).as_ref() {
            write_text_block(&mut out, "tstate", &slot.trainer.snapshot_text());
        }
        out.push_str(&rqueue_text);
        for event in self.advisories.peek_all() {
            match event {
                Event::Weather {
                    shard,
                    hour,
                    rain_mm,
                } => {
                    let _ = writeln!(out, "adv w {shard} {hour} {rain_mm:?}");
                }
                Event::RoadDamage {
                    shard,
                    segment,
                    hour,
                    flooded,
                } => {
                    let _ = writeln!(
                        out,
                        "adv d {shard} {} {hour} {}",
                        segment.0,
                        u8::from(flooded)
                    );
                }
                Event::Request { .. } => {}
            }
        }
        for d in lock(&self.delayed).iter() {
            let _ = writeln!(
                out,
                "dlay {} {} {} {}",
                d.release_epoch, d.shard, d.spec.appear_s, d.spec.segment.0
            );
        }
        for i in 0..self.shards.len() {
            self.shard(i)
                .tx
                .send(ShardCmd::Snapshot)
                .map_err(|_| self.shard_error(i, "worker thread gone"))?;
            match self.recv_reply(i)? {
                ShardReply::Snapshot(Ok(text)) => {
                    let _ = writeln!(out, "shard {i} {}", text.lines().count());
                    out.push_str(&text);
                }
                ShardReply::Snapshot(Err(message)) => {
                    return Err(self.shard_error(i, message));
                }
                _ => return Err(self.shard_error(i, "out-of-protocol reply")),
            }
        }
        out.push_str("end\n");
        let sealed = seal_snapshot(out);
        Ok(match &self.config.faults {
            Some(injector) => injector.corrupt_snapshot(sealed),
            None => sealed,
        })
    }

    /// Rebuilds a service from a snapshot over the *same* scenario. The
    /// restored service's [`DispatchService::metrics`] equals the
    /// snapshotted one's, and subsequent epochs evolve identically.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadSnapshot`] on malformed input — including
    /// a failed checksum (truncated or bit-flipped text) and a shard count
    /// that does not match `config` — plus anything
    /// [`DispatchService::start`] can return.
    pub fn restore(
        scenario: Arc<Scenario>,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
        registry: Arc<ModelRegistry>,
        text: &str,
    ) -> Result<Self, ServeError> {
        let bad = |why: &str| ServeError::BadSnapshot(why.to_owned());
        let text = open_snapshot(text).map_err(ServeError::BadSnapshot)?;
        // start_core, not start: the journal must replay against the
        // *restored* queues with the snapshot's high-water mark as the
        // cutoff, so it attaches at the very end of restore.
        let svc = Self::start_core(scenario, config, clock, registry)?;
        let mut lines = text.lines();
        if lines.next() != Some("mrserve 1") {
            return Err(bad("missing `mrserve 1` header"));
        }
        let mut epochs = 0u32;
        let mut wal_hwm: Option<u64> = None;
        let mut adv_counts = (0u64, 0u64, 0u64, 0u64);
        let mut resil = (0u64, 0u64);
        let mut swap_causes = (0u64, 0u64, 0u64);
        let mut recent_rewards: VecDeque<f64> = VecDeque::new();
        let mut pending_rollout: Option<PendingRollout> = None;
        let mut rtexts = RolloutTexts::default();
        let mut histogram = LatencyHistogram::new();
        let mut rqueue_counters = vec![(0u64, 0u64); svc.config.num_shards];
        let mut trainer_text: Option<String> = None;
        let mut restored_shards = vec![false; svc.config.num_shards];
        let mut shard_metrics = vec![ShardMetrics::default(); svc.config.num_shards];
        let mut saw_end = false;
        while let Some(line) = lines.next() {
            let mut p = line.split_whitespace();
            let Some(tag) = p.next() else { continue };
            match tag {
                "epochs" => {
                    epochs = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad epochs line"))?;
                    // Pre-wal snapshots carry one field; the extended
                    // format appends the journal high-water mark. Absent
                    // means "replay nothing" — everything this snapshot
                    // holds predates the journal.
                    wal_hwm = match p.next() {
                        Some(t) => Some(t.parse().map_err(|_| bad("bad epochs hwm"))?),
                        None => None,
                    };
                }
                "advisories" => {
                    let mut next = || p.next().and_then(|t| t.parse::<u64>().ok());
                    adv_counts = (
                        next().ok_or_else(|| bad("bad advisories line"))?,
                        next().ok_or_else(|| bad("bad advisories line"))?,
                        next().ok_or_else(|| bad("bad advisories line"))?,
                        next().ok_or_else(|| bad("bad advisories line"))?,
                    );
                }
                "hist" => {
                    let rest = line.strip_prefix("hist ").unwrap_or("");
                    histogram =
                        LatencyHistogram::from_line(rest).ok_or_else(|| bad("bad hist line"))?;
                }
                "resil" => {
                    let mut next = || p.next().and_then(|t| t.parse::<u64>().ok());
                    resil = (
                        next().ok_or_else(|| bad("bad resil line"))?,
                        next().ok_or_else(|| bad("bad resil line"))?,
                    );
                    // Pre-rollout snapshots carry two fields; the extended
                    // format appends the three swap-cause counters.
                    let extra: Vec<u64> = {
                        let mut v = Vec::new();
                        for t in p.by_ref() {
                            v.push(t.parse().map_err(|_| bad("bad resil line"))?);
                        }
                        v
                    };
                    swap_causes = match extra[..] {
                        [] => (0, 0, 0),
                        [i, b, r] => (i, b, r),
                        _ => return Err(bad("bad resil line")),
                    };
                }
                "rrew" => {
                    for t in p.by_ref() {
                        recent_rewards.push_back(t.parse().map_err(|_| bad("bad rrew value"))?);
                    }
                }
                "rollout" => {
                    if pending_rollout.is_some() {
                        return Err(bad("duplicate rollout record"));
                    }
                    pending_rollout =
                        Some(PendingRollout::parse(&mut p).ok_or_else(|| bad("bad rollout line"))?);
                }
                "rtext" => {
                    let kind = p.next().ok_or_else(|| bad("bad rtext kind"))?;
                    let num_lines: usize = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad rtext line count"))?;
                    let mut body = String::new();
                    for _ in 0..num_lines {
                        let l = lines.next().ok_or_else(|| bad("truncated rtext body"))?;
                        body.push_str(l);
                        body.push('\n');
                    }
                    let slot = match kind {
                        "cpred" => &mut rtexts.cpred,
                        "cpol" => &mut rtexts.cpol,
                        "ppred" => &mut rtexts.ppred,
                        "ppol" => &mut rtexts.ppol,
                        _ => return Err(bad("unknown rtext kind")),
                    };
                    if slot.replace(body).is_some() {
                        return Err(bad("duplicate rtext record"));
                    }
                }
                "tstate" => {
                    let num_lines: usize = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad tstate line count"))?;
                    let mut body = String::new();
                    for _ in 0..num_lines {
                        let l = lines.next().ok_or_else(|| bad("truncated tstate body"))?;
                        body.push_str(l);
                        body.push('\n');
                    }
                    if trainer_text.replace(body).is_some() {
                        return Err(bad("duplicate tstate record"));
                    }
                }
                "rqueue" => {
                    let i: usize = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad rqueue index"))?;
                    if i >= svc.config.num_shards {
                        return Err(bad("rqueue index out of range"));
                    }
                    let accepted = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad rqueue accepted"))?;
                    let shed = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad rqueue shed"))?;
                    rqueue_counters[i] = (accepted, shed);
                }
                "queued" => {
                    let i: usize = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad queued shard"))?;
                    if i >= svc.config.num_shards {
                        return Err(bad("queued shard out of range"));
                    }
                    let appear_s = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad queued appear_s"))?;
                    let segment = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .map(SegmentId)
                        .ok_or_else(|| bad("bad queued segment"))?;
                    // A `queued` record was admitted (and acked) by the
                    // snapshotted process; overflow means the capacity
                    // shrank across the restart — refuse rather than
                    // silently shed it.
                    if !svc.request_queues[i].push(RequestSpec { appear_s, segment }) {
                        return Err(ServeError::ReplayOverflow {
                            shard: i,
                            capacity: svc.request_queues[i].capacity(),
                        });
                    }
                }
                "adv" => match p.next() {
                    Some("w") => {
                        let shard = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad("bad adv shard"))?;
                        let hour = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad("bad adv hour"))?;
                        let rain_mm = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad("bad adv rain"))?;
                        svc.advisories.push(Event::Weather {
                            shard,
                            hour,
                            rain_mm,
                        });
                    }
                    Some("d") => {
                        let shard = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad("bad adv shard"))?;
                        let segment = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .map(SegmentId)
                            .ok_or_else(|| bad("bad adv segment"))?;
                        let hour = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad("bad adv hour"))?;
                        let flooded = match p.next() {
                            Some("1") => true,
                            Some("0") => false,
                            _ => return Err(bad("bad adv flooded flag")),
                        };
                        svc.advisories.push(Event::RoadDamage {
                            shard,
                            segment,
                            hour,
                            flooded,
                        });
                    }
                    _ => return Err(bad("unknown advisory kind")),
                },
                "dlay" => {
                    let release_epoch = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad dlay release epoch"))?;
                    let shard: usize = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad dlay shard"))?;
                    if shard >= svc.config.num_shards {
                        return Err(bad("dlay shard out of range"));
                    }
                    let appear_s = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad dlay appear_s"))?;
                    let segment = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .map(SegmentId)
                        .ok_or_else(|| bad("bad dlay segment"))?;
                    lock(&svc.delayed).push(DelayedRequest {
                        release_epoch,
                        shard,
                        spec: RequestSpec { appear_s, segment },
                    });
                }
                "shard" => {
                    let i: usize = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad shard index"))?;
                    if i >= svc.config.num_shards {
                        return Err(bad("shard index out of range"));
                    }
                    let num_lines: usize = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad shard line count"))?;
                    let mut body = String::new();
                    for _ in 0..num_lines {
                        let l = lines.next().ok_or_else(|| bad("truncated shard body"))?;
                        body.push_str(l);
                        body.push('\n');
                    }
                    svc.shard(i)
                        .tx
                        .send(ShardCmd::Restore(body))
                        .map_err(|_| svc.shard_error(i, "worker thread gone"))?;
                    match svc.recv_reply(i)? {
                        ShardReply::Restored(Ok(st)) => {
                            shard_metrics[i] = svc.to_metrics(i, &st);
                            restored_shards[i] = true;
                        }
                        ShardReply::Restored(Err(message)) => {
                            return Err(svc.shard_error(i, message));
                        }
                        _ => return Err(svc.shard_error(i, "out-of-protocol reply")),
                    }
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                other => return Err(bad(&format!("unknown record `{other}`"))),
            }
        }
        if !saw_end {
            return Err(bad("truncated snapshot (missing `end`)"));
        }
        if !restored_shards.iter().all(|&r| r) {
            return Err(bad("snapshot does not cover every configured shard"));
        }
        // Reassemble the in-flight rollout. Candidates re-enter through
        // the admission gate — a snapshot is no excuse for serving a
        // checkpoint that would not be admitted today — while a watch
        // stage's pinned prior rebuilds verbatim from its persisted texts
        // (`{:?}` float formatting round-trips weights bit-exactly).
        let restored_rollout = match pending_rollout {
            None => None,
            Some(PendingRollout::Shadow {
                done,
                cand_total,
                inc_total,
                version,
            }) => Some(RolloutInFlight::Shadow {
                done,
                cand_total,
                inc_total,
                candidate: rtexts.candidate(version, &svc.config.rollout)?,
            }),
            Some(PendingRollout::Canary {
                done,
                canary_total,
                control_total,
                failures,
                version,
            }) => Some(RolloutInFlight::Canary {
                done,
                canary_total,
                control_total,
                failures,
                candidate: rtexts.candidate(version, &svc.config.rollout)?,
            }),
            Some(PendingRollout::Watch {
                done,
                total,
                baseline,
                prior_version,
            }) => Some(RolloutInFlight::Watch {
                done,
                total,
                baseline,
                prior: rtexts.prior(prior_version)?,
            }),
        };
        // A trainer record only matters when the restored service trains:
        // the snapshot carries state, the config carries topology. With
        // training disabled the record is skipped, and a snapshot without
        // one (taken before the trainer existed, or with training off)
        // restores into a trainer-configured service training from scratch.
        if let (Some(text), Some(cfg)) = (&trainer_text, svc.config.trainer.clone()) {
            let trainer = Trainer::restore(cfg, text)
                .map_err(|e| ServeError::BadSnapshot(format!("trainer state in snapshot: {e}")))?;
            let checkpoint = trainer.snapshot_text();
            *lock(&svc.trainer) = Some(TrainerSlot {
                trainer,
                checkpoint,
            });
        }
        for (i, q) in svc.request_queues.iter().enumerate() {
            let (accepted, shed) = rqueue_counters[i];
            q.set_counters(accepted, shed);
        }
        svc.advisories.set_counters(adv_counts.2, adv_counts.3);
        // Registry-backed counters are *set*, not added: a restored
        // service continues from the snapshot's totals exactly once, even
        // when the caller handed `start` a pre-populated registry.
        svc.retries.set(resil.1);
        svc.advisories_applied.set(adv_counts.0);
        svc.advisories_invalid.set(adv_counts.1);
        svc.degraded_epochs.set(resil.0);
        svc.swap_fail_injected.set(swap_causes.0);
        svc.swap_fail_build.set(swap_causes.1);
        svc.swap_fail_rollout.set(swap_causes.2);
        {
            let mut state = svc.state();
            state.epochs_completed = epochs;
            state.histogram = histogram;
            state.shard_metrics = shard_metrics;
            state.rollout = restored_rollout;
            state.recent_rewards = recent_rewards;
        }
        // The snapshot restored everything journaled at or below its
        // high-water mark; replaying the journal suffix past it recovers
        // the requests acked after the snapshot was taken.
        svc.attach_wal(wal_hwm)?;
        // Seed recovery checkpoints with the restored state, so a crash
        // before the first post-restore boundary does not roll back to a
        // fresh world.
        if svc.config.auto_recover {
            svc.checkpoint_shards()?;
        }
        Ok(svc)
    }

    fn stop_workers(&mut self) {
        // Best-effort flush so clean exits under `Epoch`/`Off` fsync
        // policies leave the journal on stable storage.
        if let Some(wal) = self
            .wal
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_mut()
        {
            let _ = wal.sync();
        }
        for shard in &mut self.shards {
            let h = shard
                .get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = h.tx.send(ShardCmd::Shutdown);
        }
        for shard in &mut self.shards {
            let h = shard
                .get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(join) = h.join.take() {
                let _ = join.join();
            }
        }
    }

    /// Stops every worker and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }
}

impl Drop for DispatchService {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Normalizes a checkpoint text to exactly one `\n` per line (so snapshot
/// line counting is exact regardless of the submitter's trailing newline).
fn normalize_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 1);
    for l in text.lines() {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Writes one `{tag} {line_count}` header plus the text body.
fn write_text_block(out: &mut String, tag: &str, text: &str) {
    let _ = writeln!(out, "{tag} {}", text.lines().count());
    for l in text.lines() {
        out.push_str(l);
        out.push('\n');
    }
}

fn write_candidate_texts(out: &mut String, candidate: &CandidateBundle) {
    if let Some(t) = &candidate.predictor_text {
        write_text_block(out, "rtext cpred", t);
    }
    if let Some(t) = &candidate.policy_text {
        write_text_block(out, "rtext cpol", t);
    }
}

/// A `rollout` snapshot record, parsed but not yet joined with its `rtext`
/// bodies (which follow later in the snapshot).
enum PendingRollout {
    Shadow {
        done: u32,
        cand_total: f64,
        inc_total: f64,
        version: u64,
    },
    Canary {
        done: u32,
        canary_total: f64,
        control_total: f64,
        failures: u64,
        version: u64,
    },
    Watch {
        done: u32,
        total: f64,
        baseline: Option<f64>,
        prior_version: u64,
    },
}

impl PendingRollout {
    fn parse(p: &mut std::str::SplitWhitespace<'_>) -> Option<Self> {
        let stage = p.next()?;
        let parsed = match stage {
            "shadow" => PendingRollout::Shadow {
                done: p.next()?.parse().ok()?,
                cand_total: p.next()?.parse().ok()?,
                inc_total: p.next()?.parse().ok()?,
                version: p.next()?.parse().ok()?,
            },
            "canary" => PendingRollout::Canary {
                done: p.next()?.parse().ok()?,
                canary_total: p.next()?.parse().ok()?,
                control_total: p.next()?.parse().ok()?,
                failures: p.next()?.parse().ok()?,
                version: p.next()?.parse().ok()?,
            },
            "watch" => PendingRollout::Watch {
                done: p.next()?.parse().ok()?,
                total: p.next()?.parse().ok()?,
                baseline: match p.next()? {
                    "-" => None,
                    t => Some(t.parse().ok()?),
                },
                prior_version: p.next()?.parse().ok()?,
            },
            _ => return None,
        };
        p.next().is_none().then_some(parsed)
    }
}

/// The `rtext` checkpoint bodies collected while parsing a snapshot.
#[derive(Default)]
struct RolloutTexts {
    cpred: Option<String>,
    cpol: Option<String>,
    ppred: Option<String>,
    ppol: Option<String>,
}

impl RolloutTexts {
    /// Rebuilds a shadow/canary candidate through the admission gate.
    fn candidate(self, version: u64, cfg: &RolloutConfig) -> Result<CandidateBundle, ServeError> {
        let (predictor, policy) =
            rollout::admit(self.cpred.as_deref(), self.cpol.as_deref(), cfg.probe_bound).map_err(
                |e| {
                    ServeError::BadSnapshot(format!(
                        "rollout candidate in snapshot failed admission: {e}"
                    ))
                },
            )?;
        Ok(CandidateBundle {
            bundle: Arc::new(ModelBundle {
                version,
                predictor,
                policy,
            }),
            predictor_text: self.cpred,
            policy_text: self.cpol,
        })
    }

    /// Rebuilds a watch stage's pinned prior bundle verbatim.
    fn prior(self, prior_version: u64) -> Result<Arc<ModelBundle>, ServeError> {
        let bad = |what: &str, e: String| {
            ServeError::BadSnapshot(format!("rollout prior {what} in snapshot: {e}"))
        };
        let predictor = self
            .ppred
            .as_deref()
            .map(RequestPredictor::from_text)
            .transpose()
            .map_err(|e| bad("predictor", e))?;
        let policy = self
            .ppol
            .as_deref()
            .map(mlp_from_text)
            .transpose()
            .map_err(|e| bad("policy", e.to_string()))?;
        Ok(Arc::new(ModelBundle {
            version: prior_version,
            predictor,
            policy,
        }))
    }
}
