//! The dispatch service: sharded runner, ingestion front, epoch barrier,
//! snapshot/restore.

use crate::clock::Clock;
use crate::error::ServeError;
use crate::event::Event;
use crate::metrics::{LatencyHistogram, MetricsSnapshot, ShardMetrics};
use crate::queue::{BoundedQueue, ShedPolicy};
use crate::registry::ModelRegistry;
use crate::shard::{spawn_shard, ShardCmd, ShardReply, ShardSpec, ShardStatus};
use mobirescue_core::rl_dispatch::RlDispatchConfig;
use mobirescue_core::scenario::Scenario;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::{EpochReport, RequestSpec, SimConfig, World};
use std::fmt::Write as _;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Configuration of a [`DispatchService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Independent city shards hosted on the thread pool.
    pub num_shards: usize,
    /// Capacity of each shard's request ingest queue.
    pub request_queue_capacity: usize,
    /// Capacity of the shared weather/road-damage advisory queue.
    pub advisory_queue_capacity: usize,
    /// Shed policy for request queues (default: reject the newcomer —
    /// already-accepted rescues are not silently forgotten).
    pub request_shed: ShedPolicy,
    /// Shed policy for advisories (default: evict the oldest — fresh
    /// observations supersede stale ones).
    pub advisory_shed: ShedPolicy,
    /// Per-shard simulation settings (the dispatch period is the paper's
    /// 5-minute tick).
    pub sim: SimConfig,
    /// Dispatcher settings shared by all shards.
    pub rl: RlDispatchConfig,
}

impl ServeConfig {
    /// A service over `sim` with one shard and moderate queue bounds.
    pub fn new(sim: SimConfig) -> Self {
        Self {
            num_shards: 1,
            request_queue_capacity: 1_024,
            advisory_queue_capacity: 256,
            request_shed: ShedPolicy::DropNewest,
            advisory_shed: ShedPolicy::DropOldest,
            sim,
            rl: RlDispatchConfig::default(),
        }
    }
}

/// Mutable service-level accounting, behind one lock.
struct ServiceState {
    epochs_completed: u32,
    histogram: LatencyHistogram,
    advisories_applied: u64,
    advisories_invalid: u64,
    shard_metrics: Vec<ShardMetrics>,
    last_swap_error: Option<(usize, String)>,
}

struct ShardHandle {
    tx: Sender<ShardCmd>,
    // Only the epoch driver receives replies, but the service is shared
    // across threads (`Arc`), so the non-`Sync` receiver sits in a Mutex.
    rx: Mutex<Receiver<ShardReply>>,
    join: Option<JoinHandle<()>>,
}

/// A running sharded dispatch service.
///
/// Producers call [`DispatchService::ingest`] from any thread at any time;
/// an epoch driver (usually [`crate::EpochScheduler`]) calls
/// [`DispatchService::run_epoch`] every dispatch period. Snapshots taken
/// at epoch boundaries restore into a service that continues
/// step-for-step identically.
pub struct DispatchService {
    config: ServeConfig,
    scenario: Arc<Scenario>,
    registry: Arc<ModelRegistry>,
    request_queues: Vec<Arc<BoundedQueue<RequestSpec>>>,
    advisories: Arc<BoundedQueue<Event>>,
    shards: Vec<ShardHandle>,
    state: Mutex<ServiceState>,
}

impl DispatchService {
    /// Starts the service: validates the configuration, spawns one worker
    /// thread per shard.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero shards and
    /// [`ServeError::World`] when the simulation configuration cannot host
    /// a world over `scenario`.
    pub fn start(
        scenario: Arc<Scenario>,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
        registry: Arc<ModelRegistry>,
    ) -> Result<Self, ServeError> {
        if config.num_shards == 0 {
            return Err(ServeError::BadConfig("need at least one shard"));
        }
        // Validate once on the caller's thread so workers cannot fail
        // construction.
        World::new(&scenario.city, &scenario.conditions, &config.sim)?;
        let request_queues: Vec<_> = (0..config.num_shards)
            .map(|_| {
                Arc::new(BoundedQueue::new(
                    config.request_queue_capacity,
                    config.request_shed,
                ))
            })
            .collect();
        let advisories = Arc::new(BoundedQueue::new(
            config.advisory_queue_capacity,
            config.advisory_shed,
        ));
        let shards = (0..config.num_shards)
            .map(|i| {
                let (cmd_tx, cmd_rx) = channel();
                let (reply_tx, reply_rx) = channel();
                let spec = ShardSpec {
                    scenario: Arc::clone(&scenario),
                    registry: Arc::clone(&registry),
                    clock: Arc::clone(&clock),
                    sim: config.sim.clone(),
                    rl: config.rl.clone(),
                };
                let join = spawn_shard(i, spec, cmd_rx, reply_tx);
                ShardHandle {
                    tx: cmd_tx,
                    rx: Mutex::new(reply_rx),
                    join: Some(join),
                }
            })
            .collect();
        let state = ServiceState {
            epochs_completed: 0,
            histogram: LatencyHistogram::new(),
            advisories_applied: 0,
            advisories_invalid: 0,
            shard_metrics: vec![ShardMetrics::default(); config.num_shards],
            last_swap_error: None,
        };
        Ok(Self {
            config,
            scenario,
            registry,
            request_queues,
            advisories,
            shards,
            state: Mutex::new(state),
        })
    }

    fn state(&self) -> MutexGuard<'_, ServiceState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Offers one event to the ingestion front. Returns `Ok(true)` if it
    /// was admitted, `Ok(false)` if the bounded queue shed it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownShard`] for an out-of-range shard and
    /// [`ServeError::World`] for a request on a segment the city does not
    /// have — malformed events are rejected at the door, not queued.
    pub fn ingest(&self, event: Event) -> Result<bool, ServeError> {
        let shard = event.shard();
        if shard >= self.config.num_shards {
            return Err(ServeError::UnknownShard {
                shard,
                num_shards: self.config.num_shards,
            });
        }
        match event {
            Event::Request { spec, .. } => {
                if spec.segment.index() >= self.scenario.city.network.num_segments() {
                    return Err(ServeError::World(
                        mobirescue_sim::WorldError::UnknownSegment(spec.segment),
                    ));
                }
                Ok(self.request_queues[shard].push(spec))
            }
            other => Ok(self.advisories.push(other)),
        }
    }

    /// Validates drained advisories against the scenario. Weather and
    /// road-damage reports do not mutate the world — hourly conditions are
    /// the scenario's precomputed ground truth (the paper's G̃ per hour) —
    /// but every advisory is checked and counted, and invalid ones
    /// (unknown segment, out-of-window hour) are dropped loudly in the
    /// metrics rather than silently.
    fn apply_advisories(&self, drained: Vec<Event>) -> (u64, u64) {
        let hours = self.scenario.conditions.hours();
        let num_segments = self.scenario.city.network.num_segments();
        let mut applied = 0;
        let mut invalid = 0;
        for event in drained {
            let ok = match event {
                Event::Weather { hour, rain_mm, .. } => {
                    hour < hours && rain_mm.is_finite() && rain_mm >= 0.0
                }
                Event::RoadDamage { segment, hour, .. } => {
                    hour < hours && segment.index() < num_segments
                }
                Event::Request { .. } => false, // never queued here
            };
            if ok {
                applied += 1;
            } else {
                invalid += 1;
            }
        }
        (applied, invalid)
    }

    fn shard_error(&self, shard: usize, message: impl Into<String>) -> ServeError {
        ServeError::Shard {
            shard,
            message: message.into(),
        }
    }

    fn recv_reply(&self, shard: usize) -> Result<ShardReply, ServeError> {
        self.shards[shard]
            .rx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recv()
            .map_err(|_| self.shard_error(shard, "worker thread died"))
    }

    fn to_metrics(&self, shard: usize, st: &ShardStatus) -> ShardMetrics {
        ShardMetrics {
            epochs: st.epochs,
            queue_depth: self.request_queues[shard].depth(),
            injected: st.injected,
            rejected: st.rejected,
            waiting: st.waiting,
            picked_up: st.picked_up,
            delivered: st.delivered,
            model_version: st.model_version,
            routing_hits: st.routing.hits,
            routing_misses: st.routing.misses,
        }
    }

    /// Runs one dispatch epoch on every shard (the barrier): drains each
    /// shard's request queue into its world, advances all shards one
    /// dispatch period in parallel, and collects their reports.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Shard`] when a worker has died or cannot
    /// build any dispatcher.
    pub fn run_epoch(&self) -> Result<Vec<EpochReport>, ServeError> {
        let (applied, invalid) = self.apply_advisories(self.advisories.drain());
        for (i, shard) in self.shards.iter().enumerate() {
            let requests = self.request_queues[i].drain();
            shard
                .tx
                .send(ShardCmd::RunEpoch { requests })
                .map_err(|_| self.shard_error(i, "worker thread gone"))?;
        }
        let mut reports = Vec::with_capacity(self.shards.len());
        let mut statuses = Vec::with_capacity(self.shards.len());
        let mut first_error = None;
        for i in 0..self.shards.len() {
            match self.recv_reply(i) {
                Ok(ShardReply::Epoch(Ok(st))) => statuses.push((i, st)),
                Ok(ShardReply::Epoch(Err(message))) => {
                    first_error.get_or_insert(self.shard_error(i, message));
                }
                Ok(_) => {
                    first_error.get_or_insert(self.shard_error(i, "out-of-protocol reply"));
                }
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        let mut state = self.state();
        for (i, st) in statuses {
            state.histogram.record(st.compute_ms);
            state.shard_metrics[i] = self.to_metrics(i, &st);
            if let Some(message) = st.swap_error {
                state.last_swap_error = Some((i, message));
            }
            if let Some(report) = st.report {
                reports.push(report);
            }
        }
        state.epochs_completed += 1;
        state.advisories_applied += applied;
        state.advisories_invalid += invalid;
        Ok(reports)
    }

    /// The most recent failed model hot-swap, if any: the shard index and
    /// the reason. A failed swap is not fatal — the shard keeps serving
    /// with its previous dispatcher — but operators should see it.
    pub fn last_swap_error(&self) -> Option<(usize, String)> {
        self.state().last_swap_error.clone()
    }

    /// Assembles a point-in-time metrics snapshot without stopping any
    /// shard.
    pub fn metrics(&self) -> MetricsSnapshot {
        let state = self.state();
        let mut shards = state.shard_metrics.clone();
        for (i, m) in shards.iter_mut().enumerate() {
            m.queue_depth = self.request_queues[i].depth();
        }
        MetricsSnapshot {
            epochs_completed: state.epochs_completed,
            requests_accepted: self.request_queues.iter().map(|q| q.accepted()).sum(),
            requests_shed: self.request_queues.iter().map(|q| q.shed()).sum(),
            advisories_accepted: self.advisories.accepted(),
            advisories_shed: self.advisories.shed(),
            advisories_applied: state.advisories_applied,
            advisories_invalid: state.advisories_invalid,
            model_version: self.registry.current().version,
            model_swaps: self.registry.swaps(),
            epoch_latency: state.histogram.clone(),
            shards,
        }
    }

    /// Serializes the whole service — every shard's world, the pending
    /// queue contents, and the service counters — to a versioned text
    /// blob. Take it at an epoch boundary (between [`run_epoch`] calls);
    /// a service restored from it continues identically.
    ///
    /// [`run_epoch`]: DispatchService::run_epoch
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Shard`] when a worker cannot serialize.
    pub fn snapshot(&self) -> Result<String, ServeError> {
        let mut out = String::from("mrserve 1\n");
        {
            let state = self.state();
            let _ = writeln!(out, "epochs {}", state.epochs_completed);
            let _ = writeln!(
                out,
                "advisories {} {} {} {}",
                state.advisories_applied,
                state.advisories_invalid,
                self.advisories.accepted(),
                self.advisories.shed()
            );
            let _ = writeln!(out, "hist {}", state.histogram.to_line());
        }
        for (i, q) in self.request_queues.iter().enumerate() {
            let _ = writeln!(out, "rqueue {i} {} {}", q.accepted(), q.shed());
            for spec in q.peek_all() {
                let _ = writeln!(out, "queued {i} {} {}", spec.appear_s, spec.segment.0);
            }
        }
        for event in self.advisories.peek_all() {
            match event {
                Event::Weather {
                    shard,
                    hour,
                    rain_mm,
                } => {
                    let _ = writeln!(out, "adv w {shard} {hour} {rain_mm:?}");
                }
                Event::RoadDamage {
                    shard,
                    segment,
                    hour,
                    flooded,
                } => {
                    let _ = writeln!(
                        out,
                        "adv d {shard} {} {hour} {}",
                        segment.0,
                        u8::from(flooded)
                    );
                }
                Event::Request { .. } => {}
            }
        }
        for (i, shard) in self.shards.iter().enumerate() {
            shard
                .tx
                .send(ShardCmd::Snapshot)
                .map_err(|_| self.shard_error(i, "worker thread gone"))?;
            match self.recv_reply(i)? {
                ShardReply::Snapshot(Ok(text)) => {
                    let _ = writeln!(out, "shard {i} {}", text.lines().count());
                    out.push_str(&text);
                }
                ShardReply::Snapshot(Err(message)) => {
                    return Err(self.shard_error(i, message));
                }
                _ => return Err(self.shard_error(i, "out-of-protocol reply")),
            }
        }
        out.push_str("end\n");
        Ok(out)
    }

    /// Rebuilds a service from a snapshot over the *same* scenario. The
    /// restored service's [`DispatchService::metrics`] equals the
    /// snapshotted one's, and subsequent epochs evolve identically.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadSnapshot`] on malformed input (including a
    /// shard count that does not match `config`), plus anything
    /// [`DispatchService::start`] can return.
    pub fn restore(
        scenario: Arc<Scenario>,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
        registry: Arc<ModelRegistry>,
        text: &str,
    ) -> Result<Self, ServeError> {
        let bad = |why: &str| ServeError::BadSnapshot(why.to_owned());
        let svc = Self::start(scenario, config, clock, registry)?;
        let mut lines = text.lines();
        if lines.next() != Some("mrserve 1") {
            return Err(bad("missing `mrserve 1` header"));
        }
        let mut epochs = 0u32;
        let mut adv_counts = (0u64, 0u64, 0u64, 0u64);
        let mut histogram = LatencyHistogram::new();
        let mut rqueue_counters = vec![(0u64, 0u64); svc.config.num_shards];
        let mut restored_shards = vec![false; svc.config.num_shards];
        let mut shard_metrics = vec![ShardMetrics::default(); svc.config.num_shards];
        let mut saw_end = false;
        while let Some(line) = lines.next() {
            let mut p = line.split_whitespace();
            let Some(tag) = p.next() else { continue };
            match tag {
                "epochs" => {
                    epochs = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad epochs line"))?;
                }
                "advisories" => {
                    let mut next = || p.next().and_then(|t| t.parse::<u64>().ok());
                    adv_counts = (
                        next().ok_or_else(|| bad("bad advisories line"))?,
                        next().ok_or_else(|| bad("bad advisories line"))?,
                        next().ok_or_else(|| bad("bad advisories line"))?,
                        next().ok_or_else(|| bad("bad advisories line"))?,
                    );
                }
                "hist" => {
                    let rest = line.strip_prefix("hist ").unwrap_or("");
                    histogram =
                        LatencyHistogram::from_line(rest).ok_or_else(|| bad("bad hist line"))?;
                }
                "rqueue" => {
                    let i: usize = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad rqueue index"))?;
                    if i >= svc.config.num_shards {
                        return Err(bad("rqueue index out of range"));
                    }
                    let accepted = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad rqueue accepted"))?;
                    let shed = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad rqueue shed"))?;
                    rqueue_counters[i] = (accepted, shed);
                }
                "queued" => {
                    let i: usize = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad queued shard"))?;
                    if i >= svc.config.num_shards {
                        return Err(bad("queued shard out of range"));
                    }
                    let appear_s = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad queued appear_s"))?;
                    let segment = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .map(SegmentId)
                        .ok_or_else(|| bad("bad queued segment"))?;
                    svc.request_queues[i].push(RequestSpec { appear_s, segment });
                }
                "adv" => match p.next() {
                    Some("w") => {
                        let shard = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad("bad adv shard"))?;
                        let hour = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad("bad adv hour"))?;
                        let rain_mm = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad("bad adv rain"))?;
                        svc.advisories.push(Event::Weather {
                            shard,
                            hour,
                            rain_mm,
                        });
                    }
                    Some("d") => {
                        let shard = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad("bad adv shard"))?;
                        let segment = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .map(SegmentId)
                            .ok_or_else(|| bad("bad adv segment"))?;
                        let hour = p
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad("bad adv hour"))?;
                        let flooded = match p.next() {
                            Some("1") => true,
                            Some("0") => false,
                            _ => return Err(bad("bad adv flooded flag")),
                        };
                        svc.advisories.push(Event::RoadDamage {
                            shard,
                            segment,
                            hour,
                            flooded,
                        });
                    }
                    _ => return Err(bad("unknown advisory kind")),
                },
                "shard" => {
                    let i: usize = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad shard index"))?;
                    if i >= svc.config.num_shards {
                        return Err(bad("shard index out of range"));
                    }
                    let num_lines: usize = p
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad shard line count"))?;
                    let mut body = String::new();
                    for _ in 0..num_lines {
                        let l = lines.next().ok_or_else(|| bad("truncated shard body"))?;
                        body.push_str(l);
                        body.push('\n');
                    }
                    svc.shards[i]
                        .tx
                        .send(ShardCmd::Restore(body))
                        .map_err(|_| svc.shard_error(i, "worker thread gone"))?;
                    match svc.recv_reply(i)? {
                        ShardReply::Restored(Ok(st)) => {
                            shard_metrics[i] = svc.to_metrics(i, &st);
                            restored_shards[i] = true;
                        }
                        ShardReply::Restored(Err(message)) => {
                            return Err(svc.shard_error(i, message));
                        }
                        _ => return Err(svc.shard_error(i, "out-of-protocol reply")),
                    }
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                other => return Err(bad(&format!("unknown record `{other}`"))),
            }
        }
        if !saw_end {
            return Err(bad("truncated snapshot (missing `end`)"));
        }
        if !restored_shards.iter().all(|&r| r) {
            return Err(bad("snapshot does not cover every configured shard"));
        }
        for (i, q) in svc.request_queues.iter().enumerate() {
            let (accepted, shed) = rqueue_counters[i];
            q.set_counters(accepted, shed);
        }
        svc.advisories.set_counters(adv_counts.2, adv_counts.3);
        {
            let mut state = svc.state();
            state.epochs_completed = epochs;
            state.advisories_applied = adv_counts.0;
            state.advisories_invalid = adv_counts.1;
            state.histogram = histogram;
            state.shard_metrics = shard_metrics;
        }
        Ok(svc)
    }

    fn stop_workers(&mut self) {
        for shard in &mut self.shards {
            let _ = shard.tx.send(ShardCmd::Shutdown);
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                let _ = join.join();
            }
        }
    }

    /// Stops every worker and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }
}

impl Drop for DispatchService {
    fn drop(&mut self) {
        self.stop_workers();
    }
}
