//! Events the streaming ingestion front accepts.

use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::RequestSpec;

/// One ingested event. Every event carries the index of the city shard it
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A rescue request (someone trapped on a segment).
    Request {
        /// Target shard.
        shard: usize,
        /// The request: appearance second and segment.
        spec: RequestSpec,
    },
    /// A weather advisory for an upcoming hour (rainfall intensity).
    Weather {
        /// Target shard.
        shard: usize,
        /// Scenario hour the advisory covers.
        hour: u32,
        /// Forecast rainfall, millimeters.
        rain_mm: f64,
    },
    /// A road-damage report: a segment observed flooded (or cleared).
    RoadDamage {
        /// Target shard.
        shard: usize,
        /// The reported segment.
        segment: SegmentId,
        /// Scenario hour of the observation.
        hour: u32,
        /// `true` = flooded, `false` = cleared.
        flooded: bool,
    },
}

impl Event {
    /// The shard the event targets.
    pub fn shard(&self) -> usize {
        match *self {
            Event::Request { shard, .. }
            | Event::Weather { shard, .. }
            | Event::RoadDamage { shard, .. } => shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_extraction() {
        let r = Event::Request {
            shard: 3,
            spec: RequestSpec {
                appear_s: 0,
                segment: SegmentId(0),
            },
        };
        let w = Event::Weather {
            shard: 1,
            hour: 5,
            rain_mm: 12.0,
        };
        let d = Event::RoadDamage {
            shard: 0,
            segment: SegmentId(9),
            hour: 2,
            flooded: true,
        };
        assert_eq!(r.shard(), 3);
        assert_eq!(w.shard(), 1);
        assert_eq!(d.shard(), 0);
    }
}
