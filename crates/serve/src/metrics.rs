//! Service observability: the epoch-latency histogram and the aggregated
//! [`MetricsSnapshot`].

use std::fmt::Write as _;

/// Upper bucket bounds of the latency histogram, milliseconds. Values
/// above the last bound land in a final overflow bucket.
pub const LATENCY_BOUNDS_MS: [u64; 10] = [1, 2, 5, 10, 25, 50, 100, 250, 1_000, 5_000];

/// A fixed-bucket histogram of per-epoch dispatcher compute latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BOUNDS_MS.len() + 1],
    count: u64,
    total_ms: u64,
    max_ms: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; LATENCY_BOUNDS_MS.len() + 1],
            count: 0,
            total_ms: 0,
            max_ms: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, ms: u64) {
        let bucket = LATENCY_BOUNDS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(LATENCY_BOUNDS_MS.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.total_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms as f64 / self.count as f64
        }
    }

    /// Largest recorded latency, milliseconds.
    pub fn max_ms(&self) -> u64 {
        self.max_ms
    }

    /// Per-bucket counts (one extra overflow bucket at the end).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// One-line text form (`count total max c0 c1 ...`), for snapshots.
    pub(crate) fn to_line(&self) -> String {
        let mut out = format!("{} {} {}", self.count, self.total_ms, self.max_ms);
        for c in self.counts {
            let _ = write!(out, " {c}");
        }
        out
    }

    /// Parses [`LatencyHistogram::to_line`] output.
    pub(crate) fn from_line(line: &str) -> Option<Self> {
        let mut h = Self::new();
        let mut it = line.split_whitespace();
        h.count = it.next()?.parse().ok()?;
        h.total_ms = it.next()?.parse().ok()?;
        h.max_ms = it.next()?.parse().ok()?;
        for c in h.counts.iter_mut() {
            *c = it.next()?.parse().ok()?;
        }
        it.next().is_none().then_some(h)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-shard counters inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardMetrics {
    /// Epochs this shard has completed.
    pub epochs: u32,
    /// Requests sitting in the shard's ingest queue right now.
    pub queue_depth: usize,
    /// Requests injected into the shard's world so far.
    pub injected: u64,
    /// Injected events the engine rejected (e.g. unknown segment).
    pub rejected: u64,
    /// Requests currently waiting for pickup.
    pub waiting: usize,
    /// Requests picked up so far.
    pub picked_up: usize,
    /// Requests delivered to a hospital so far.
    pub delivered: usize,
    /// Model bundle version the shard's dispatcher was built from.
    pub model_version: u64,
    /// Shortest-path-tree cache hits in the shard's route planner.
    pub routing_hits: u64,
    /// Shortest-path-tree cache misses (trees actually computed).
    pub routing_misses: u64,
    /// Epochs this shard served on the heuristic fallback instead of the
    /// DQN policy (deadline blown or model unavailable).
    pub degraded: u64,
}

/// A point-in-time aggregate of the whole service, assembled without
/// stopping any shard.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Epochs the service has driven (all shards advance together).
    pub epochs_completed: u32,
    /// Request events admitted across all shard queues.
    pub requests_accepted: u64,
    /// Request events shed across all shard queues.
    pub requests_shed: u64,
    /// Weather/road-damage advisories admitted.
    pub advisories_accepted: u64,
    /// Weather/road-damage advisories shed.
    pub advisories_shed: u64,
    /// Advisories drained and validated against the scenario.
    pub advisories_applied: u64,
    /// Advisories dropped at validation (unknown segment / hour).
    pub advisories_invalid: u64,
    /// Epochs in which at least one shard fell back to the heuristic
    /// dispatcher (deadline blown or registry swap failed).
    pub degraded_epochs: u64,
    /// Ingestion re-offers performed by
    /// [`crate::DispatchService::ingest_with_retry`] after a shed.
    pub ingest_retries: u64,
    /// Model swaps that failed because a fault injector simulated the
    /// registry being unreachable.
    pub swap_failures_injected: u64,
    /// Model swaps that failed because the installed bundle could not
    /// build a dispatcher (parse/shape failure).
    pub swap_failures_build: u64,
    /// Rollout canary candidates that failed to build on a shard (each is
    /// a canary gate failure).
    pub swap_failures_rollout: u64,
    /// Current model bundle version in the registry.
    pub model_version: u64,
    /// Hot-swaps performed since the registry was created.
    pub model_swaps: u64,
    /// Distribution of per-epoch dispatcher compute latency.
    pub epoch_latency: LatencyHistogram,
    /// One entry per hosted shard.
    pub shards: Vec<ShardMetrics>,
}

impl MetricsSnapshot {
    /// Total requests picked up across shards.
    pub fn total_picked_up(&self) -> usize {
        self.shards.iter().map(|s| s.picked_up).sum()
    }

    /// Total requests delivered across shards.
    pub fn total_delivered(&self) -> usize {
        self.shards.iter().map(|s| s.delivered).sum()
    }

    /// Total requests still waiting across shards.
    pub fn total_waiting(&self) -> usize {
        self.shards.iter().map(|s| s.waiting).sum()
    }

    /// Human-readable multi-line report (the serve binary's output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "epoch {:>4} | model v{} ({} swaps) | ingest ok {} shed {} | advisories ok {} shed {} applied {} invalid {}",
            self.epochs_completed,
            self.model_version,
            self.model_swaps,
            self.requests_accepted,
            self.requests_shed,
            self.advisories_accepted,
            self.advisories_shed,
            self.advisories_applied,
            self.advisories_invalid,
        );
        let _ = writeln!(
            out,
            "  latency: {} samples, mean {:.2} ms, max {} ms | degraded epochs {} | ingest retries {} | swap failures {}i/{}b/{}r",
            self.epoch_latency.count(),
            self.epoch_latency.mean_ms(),
            self.epoch_latency.max_ms(),
            self.degraded_epochs,
            self.ingest_retries,
            self.swap_failures_injected,
            self.swap_failures_build,
            self.swap_failures_rollout,
        );
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "  shard {i}: epoch {} queue {} injected {} (rejected {}) waiting {} picked-up {} delivered {} route-cache {}h/{}m degraded {}",
                s.epochs,
                s.queue_depth,
                s.injected,
                s.rejected,
                s.waiting,
                s.picked_up,
                s.delivered,
                s.routing_hits,
                s.routing_misses,
                s.degraded,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = LatencyHistogram::new();
        for ms in [0, 1, 3, 9, 10_000] {
            h.record(ms);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ms(), 10_000);
        assert!((h.mean_ms() - 2_002.6).abs() < 1e-9);
        // 0 and 1 → bucket 0 (≤1); 3 → ≤5; 9 → ≤10; 10_000 → overflow.
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.buckets()[LATENCY_BOUNDS_MS.len()], 1);
    }

    #[test]
    fn histogram_line_round_trips() {
        let mut h = LatencyHistogram::new();
        for ms in [2, 7, 450] {
            h.record(ms);
        }
        let back = LatencyHistogram::from_line(&h.to_line()).expect("parses");
        assert_eq!(back, h);
        assert!(LatencyHistogram::from_line("1 2").is_none());
        assert!(LatencyHistogram::from_line("not numbers at all").is_none());
    }

    #[test]
    fn snapshot_totals_and_render() {
        let m = MetricsSnapshot {
            epochs_completed: 3,
            requests_accepted: 10,
            requests_shed: 2,
            advisories_accepted: 4,
            advisories_shed: 0,
            advisories_applied: 3,
            advisories_invalid: 1,
            degraded_epochs: 1,
            ingest_retries: 2,
            swap_failures_injected: 1,
            swap_failures_build: 0,
            swap_failures_rollout: 2,
            model_version: 2,
            model_swaps: 1,
            epoch_latency: LatencyHistogram::new(),
            shards: vec![
                ShardMetrics {
                    picked_up: 3,
                    delivered: 2,
                    waiting: 1,
                    ..Default::default()
                },
                ShardMetrics {
                    picked_up: 4,
                    delivered: 4,
                    waiting: 0,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(m.total_picked_up(), 7);
        assert_eq!(m.total_delivered(), 6);
        assert_eq!(m.total_waiting(), 1);
        let text = m.render();
        assert!(text.contains("model v2"));
        assert!(text.contains("shard 1"));
        assert!(text.contains("degraded epochs 1"));
        assert!(text.contains("ingest retries 2"));
        assert!(text.contains("swap failures 1i/0b/2r"));
    }
}
