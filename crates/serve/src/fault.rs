//! Deterministic fault injection for the dispatch service.
//!
//! A disaster-time dispatcher must keep producing plans while its own
//! infrastructure degrades: ingestion links drop and reorder events,
//! worker processes die mid-epoch, model pushes fail, checkpoints get
//! truncated on a failing disk. This module makes those conditions a
//! *first-class, reproducible test input*: a [`FaultPlan`] is a seeded,
//! inspectable schedule of faults, and a [`FaultInjector`] applies it —
//! each fault exactly once — at the hook points threaded through
//! [`crate::DispatchService`] and its shard workers.
//!
//! Determinism is the whole point. The plan is fully decided up front from
//! a seed (via the vendored `rand` shim), every fault is consumed
//! one-shot, and the service runs on a [`crate::SimClock`] in tests — so a
//! chaos run is a pure function of `(scenario seed, fault seed)` and every
//! failure reproduces exactly. Consuming faults one-shot is also what
//! makes crash recovery testable: when a crashed shard's epoch is replayed
//! after restore, the crash (already consumed) does not re-fire, so the
//! replay is the *masked* — unfaulted — execution of the same epoch.

use mobirescue_core::rl_dispatch::FEATURE_DIM;
use mobirescue_rl::nn::Mlp;
use mobirescue_rl::persist::mlp_to_text;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fault applied to one rescue request offered to
/// [`crate::DispatchService::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestFault {
    /// The event is lost: not queued, reported as not admitted.
    Drop,
    /// The event is deferred by this many epochs before reaching its
    /// shard's queue (network delay / out-of-order delivery).
    Delay(u32),
    /// The event is enqueued twice (at-least-once delivery upstream).
    Duplicate,
    /// The event's payload is damaged in flight; the service's validation
    /// must reject it with a typed error.
    Corrupt,
}

/// A fault applied to one shard worker at one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// The dispatcher stalls for this many clock milliseconds mid-epoch
    /// (GC pause, page fault storm) — with a configured epoch deadline
    /// this trips the fallback to the heuristic dispatcher.
    Stall(u64),
    /// The worker thread dies mid-epoch without replying; the service must
    /// restart it from the last boundary checkpoint and replay.
    Crash,
}

/// A fault applied by a misbehaving client to one frame offered over the
/// TCP front door (`mobirescue-net`). The serve crate owns the schedule —
/// like every other fault kind — and the network chaos harness applies it
/// at the socket, so a front-door chaos run stays a pure function of its
/// fault seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// The client writes part of a frame and disconnects. The listener
    /// must treat the torso as a rejected frame, never as a request.
    MidFrameDisconnect,
    /// The frame arrives split across two writes with a pause in between
    /// (a torn write). The listener must reassemble it and respond
    /// normally — torn delivery is not data loss.
    TornWrite,
    /// The client trickles a partial frame header and then stalls
    /// (slow-loris). The listener's frame deadline must close the
    /// connection instead of pinning a handler thread forever.
    SlowLoris,
}

/// A fault applied to the online trainer (`crate::trainer`) at one epoch
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainerFault {
    /// The trainer dies at the boundary; the service must respawn it from
    /// its last boundary checkpoint, and the recovered run must stay
    /// bit-identical to an unfaulted twin (checkpoints are taken every
    /// boundary, so a boundary crash loses nothing).
    Crash,
    /// A wedged trainer replays an old queue: a burst of this many stale,
    /// reward-tanking candidates floods the rollout pipeline. The gates
    /// must keep every one of them away from primary dispatch.
    StaleCandidateFlood(u32),
    /// This epoch's tapped transitions are lost in transit before reaching
    /// the trainer queue — they never count as offered, so transition
    /// conservation (`offered == accepted + shed`) must still hold.
    TransitionDrop,
}

/// A fault applied to the durable ingest journal (`crate::wal`) at one
/// journaled push attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFault {
    /// The process "dies" mid-append: a torn prefix of the record hits
    /// disk and the entry is never journaled. The service must surface
    /// the typed `WalError::TornTail` — the request is not admitted and
    /// must never be acked.
    TornAppend,
    /// Silent storage rot: one bit of an already-journaled record flips
    /// on disk. The live run is unaffected; the *next* recovery must
    /// refuse with a typed error naming the segment and offset.
    SegmentBitFlip,
    /// The device stalls under fsync (a failing disk's write cache
    /// draining) for this many clock milliseconds. The append blocks for
    /// the stall and then completes normally.
    FsyncStall(u64),
}

/// How a submitted checkpoint is poisoned before it reaches the rollout
/// pipeline's admission gate (a corrupted training job, a bad export, or
/// an adversarially regressed policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPoison {
    /// The policy parses but carries a NaN weight — admission must reject.
    NanWeights,
    /// The policy's input layer disagrees with `FEATURE_DIM` — admission
    /// must reject.
    WrongDims,
    /// A structurally valid policy that pins every team on stand-by,
    /// tanking the paper reward — only the shadow gate can catch it.
    RewardTank,
}

/// How a snapshot text is damaged on write (failing disk / torn write).
/// The embedded position is reduced modulo the snapshot length when
/// applied, so plans stay valid for any snapshot size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotCorruption {
    /// The text is cut short at a plan-chosen byte offset.
    Truncate(u64),
    /// One byte at a plan-chosen offset has a bit flipped.
    BitFlip(u64),
}

/// Probabilities and horizons from which a seeded [`FaultPlan`] is drawn.
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Epochs the schedule covers (shard faults are drawn per epoch).
    pub epochs: u32,
    /// Shards the schedule covers.
    pub num_shards: usize,
    /// Request offers covered by ingestion-fault decisions; offers beyond
    /// the horizon pass through clean.
    pub ingest_horizon: usize,
    /// Per-offer probability of [`IngestFault::Drop`].
    pub p_drop: f64,
    /// Per-offer probability of [`IngestFault::Delay`].
    pub p_delay: f64,
    /// Per-offer probability of [`IngestFault::Duplicate`].
    pub p_duplicate: f64,
    /// Per-offer probability of [`IngestFault::Corrupt`].
    pub p_corrupt: f64,
    /// Largest delay, epochs (delays are drawn uniformly in `1..=max`).
    pub max_delay_epochs: u32,
    /// Per-(epoch, shard) probability of [`ShardFault::Stall`].
    pub p_stall: f64,
    /// Per-(epoch, shard) probability of [`ShardFault::Crash`].
    pub p_crash: f64,
    /// Per-(epoch, shard) probability of an injected registry-swap
    /// failure.
    pub p_swap_fail: f64,
    /// Stall magnitude, clock milliseconds (choose it above the service's
    /// epoch deadline to guarantee the fallback trips).
    pub stall_ms: u64,
    /// How many [`crate::DispatchService::snapshot`] calls get corrupted
    /// on write.
    pub snapshot_corruptions: u32,
    /// How many rollout submissions get their policy checkpoint replaced
    /// with a poisoned one (kinds cycle NaN → wrong-dims → reward-tank).
    pub poisoned_checkpoints: u32,
    /// Frame offers over the TCP front door covered by connection-fault
    /// decisions; offers beyond the horizon are sent clean.
    pub conn_horizon: usize,
    /// Per-frame probability of [`ConnFault::MidFrameDisconnect`].
    pub p_conn_disconnect: f64,
    /// Per-frame probability of [`ConnFault::TornWrite`].
    pub p_conn_torn: f64,
    /// Per-frame probability of [`ConnFault::SlowLoris`].
    pub p_conn_slowloris: f64,
    /// Epochs covered by trainer-fault decisions (one draw per epoch;
    /// epochs beyond the horizon pass through clean).
    pub trainer_horizon: u32,
    /// Per-epoch probability of [`TrainerFault::Crash`].
    pub p_trainer_crash: f64,
    /// Per-epoch probability of [`TrainerFault::StaleCandidateFlood`].
    pub p_trainer_flood: f64,
    /// Per-epoch probability of [`TrainerFault::TransitionDrop`].
    pub p_trainer_drop: f64,
    /// Candidates per [`TrainerFault::StaleCandidateFlood`] burst.
    pub trainer_flood_len: u32,
    /// Journaled push attempts covered by WAL-fault decisions; attempts
    /// beyond the horizon append clean.
    pub wal_horizon: usize,
    /// Per-attempt probability of [`WalFault::TornAppend`].
    pub p_wal_torn: f64,
    /// Per-attempt probability of [`WalFault::SegmentBitFlip`].
    pub p_wal_bitflip: f64,
    /// Per-attempt probability of [`WalFault::FsyncStall`].
    pub p_wal_stall: f64,
    /// Fsync-stall magnitude, clock milliseconds.
    pub wal_stall_ms: u64,
}

impl FaultPlanConfig {
    /// The standard chaos mix: every fault kind armed with moderate
    /// probability.
    pub fn chaos(epochs: u32, num_shards: usize) -> Self {
        Self {
            epochs,
            num_shards,
            ingest_horizon: 256,
            p_drop: 0.08,
            p_delay: 0.08,
            p_duplicate: 0.06,
            p_corrupt: 0.05,
            max_delay_epochs: 2,
            p_stall: 0.10,
            p_crash: 0.08,
            p_swap_fail: 0.06,
            stall_ms: 50,
            snapshot_corruptions: 0,
            poisoned_checkpoints: 0,
            conn_horizon: 0,
            p_conn_disconnect: 0.0,
            p_conn_torn: 0.0,
            p_conn_slowloris: 0.0,
            trainer_horizon: 0,
            p_trainer_crash: 0.0,
            p_trainer_flood: 0.0,
            p_trainer_drop: 0.0,
            trainer_flood_len: 3,
            wal_horizon: 0,
            p_wal_torn: 0.0,
            p_wal_bitflip: 0.0,
            p_wal_stall: 0.0,
            wal_stall_ms: 0,
        }
    }

    /// The front-door chaos mix: connection faults armed on top of the
    /// standard [`FaultPlanConfig::chaos`] schedule. The network chaos
    /// harness uses this; in-process chaos keeps `conn_horizon == 0`.
    pub fn net_chaos(epochs: u32, num_shards: usize) -> Self {
        Self {
            conn_horizon: 192,
            p_conn_disconnect: 0.08,
            p_conn_torn: 0.10,
            p_conn_slowloris: 0.05,
            ..Self::chaos(epochs, num_shards)
        }
    }

    /// The trainer chaos mix: *only* trainer faults armed. Shard faults
    /// stay off on purpose — a shard crash rebuilds its dispatcher (losing
    /// the in-flight transition tap), so trainer-loop invariants are
    /// verified against an otherwise-healthy fleet, and shard recovery has
    /// its own suite.
    pub fn trainer_chaos(epochs: u32, num_shards: usize) -> Self {
        Self {
            trainer_horizon: epochs,
            p_trainer_crash: 0.15,
            p_trainer_flood: 0.10,
            p_trainer_drop: 0.15,
            trainer_flood_len: 3,
            ..Self::quiet(epochs, num_shards)
        }
    }

    /// The journal chaos mix: *only* WAL faults armed (torn appends and
    /// fsync stalls; bit flips are forced explicitly by harnesses that
    /// want them, since a flipped segment poisons every later recovery).
    /// Everything else stays off so journal invariants are verified
    /// against an otherwise-healthy fleet, mirroring
    /// [`FaultPlanConfig::trainer_chaos`].
    pub fn wal_chaos(epochs: u32, num_shards: usize) -> Self {
        Self {
            wal_horizon: 64,
            p_wal_torn: 0.10,
            p_wal_bitflip: 0.0,
            p_wal_stall: 0.12,
            wal_stall_ms: 15,
            ..Self::quiet(epochs, num_shards)
        }
    }

    /// No faults at all — the control arm of a chaos comparison.
    pub fn quiet(epochs: u32, num_shards: usize) -> Self {
        Self {
            epochs,
            num_shards,
            ingest_horizon: 0,
            p_drop: 0.0,
            p_delay: 0.0,
            p_duplicate: 0.0,
            p_corrupt: 0.0,
            max_delay_epochs: 1,
            p_stall: 0.0,
            p_crash: 0.0,
            p_swap_fail: 0.0,
            stall_ms: 0,
            snapshot_corruptions: 0,
            poisoned_checkpoints: 0,
            conn_horizon: 0,
            p_conn_disconnect: 0.0,
            p_conn_torn: 0.0,
            p_conn_slowloris: 0.0,
            trainer_horizon: 0,
            p_trainer_crash: 0.0,
            p_trainer_flood: 0.0,
            p_trainer_drop: 0.0,
            trainer_flood_len: 0,
            wal_horizon: 0,
            p_wal_torn: 0.0,
            p_wal_bitflip: 0.0,
            p_wal_stall: 0.0,
            wal_stall_ms: 0,
        }
    }
}

/// What a plan has scheduled, by kind — inspectable before the run so
/// tests can assert "faults fired" against "faults were planned".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduledFaults {
    /// Ingestion offers with a fault decision.
    pub ingest: usize,
    /// Scheduled stalls.
    pub stalls: usize,
    /// Scheduled crashes.
    pub crashes: usize,
    /// Scheduled registry-swap failures.
    pub swap_fails: usize,
    /// Scheduled snapshot corruptions.
    pub snapshot_corruptions: usize,
    /// Scheduled checkpoint poisonings.
    pub poisoned_checkpoints: usize,
    /// Front-door frame offers with a connection-fault decision.
    pub conn: usize,
    /// Scheduled trainer faults.
    pub trainer: usize,
    /// Journaled push attempts with a WAL-fault decision.
    pub wal: usize,
}

impl ScheduledFaults {
    /// Whether anything is scheduled at all.
    pub fn any(&self) -> bool {
        self.ingest
            + self.stalls
            + self.crashes
            + self.swap_fails
            + self.snapshot_corruptions
            + self.poisoned_checkpoints
            + self.conn
            + self.trainer
            + self.wal
            > 0
    }
}

/// A deterministic, inspectable schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    ingest: Vec<Option<IngestFault>>,
    shard: BTreeMap<(u32, usize), ShardFault>,
    swap_fail: BTreeSet<(u32, usize)>,
    snapshot: Vec<SnapshotCorruption>,
    poison: Vec<CheckpointPoison>,
    conn: Vec<Option<ConnFault>>,
    trainer: BTreeMap<u32, TrainerFault>,
    wal: Vec<Option<WalFault>>,
}

impl FaultPlan {
    /// A plan with nothing scheduled (compose with the builder methods).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Draws a full schedule from `seed` under `cfg`. The same
    /// `(seed, cfg)` always yields the same plan.
    pub fn generate(seed: u64, cfg: &FaultPlanConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d72_6663_6861_6f73); // "mrfchaos"
        let ingest = (0..cfg.ingest_horizon)
            .map(|_| {
                let roll: f64 = rng.random();
                let mut acc = cfg.p_drop;
                if roll < acc {
                    return Some(IngestFault::Drop);
                }
                acc += cfg.p_delay;
                if roll < acc {
                    let d = rng.random_range(1..=cfg.max_delay_epochs.max(1));
                    return Some(IngestFault::Delay(d));
                }
                acc += cfg.p_duplicate;
                if roll < acc {
                    return Some(IngestFault::Duplicate);
                }
                acc += cfg.p_corrupt;
                if roll < acc {
                    return Some(IngestFault::Corrupt);
                }
                None
            })
            .collect();
        let mut shard = BTreeMap::new();
        let mut swap_fail = BTreeSet::new();
        for epoch in 0..cfg.epochs {
            for s in 0..cfg.num_shards {
                let roll: f64 = rng.random();
                if roll < cfg.p_crash {
                    shard.insert((epoch, s), ShardFault::Crash);
                } else if roll < cfg.p_crash + cfg.p_stall {
                    shard.insert((epoch, s), ShardFault::Stall(cfg.stall_ms));
                }
                if rng.random_bool(cfg.p_swap_fail) {
                    swap_fail.insert((epoch, s));
                }
            }
        }
        let snapshot = (0..cfg.snapshot_corruptions)
            .map(|_| {
                if rng.random::<bool>() {
                    SnapshotCorruption::Truncate(rng.random::<u64>())
                } else {
                    SnapshotCorruption::BitFlip(rng.random::<u64>())
                }
            })
            .collect();
        // Drawn after every other kind so enabling poisons never perturbs
        // a seed's existing schedule.
        let poison = (0..cfg.poisoned_checkpoints)
            .map(|i| match i % 3 {
                0 => CheckpointPoison::NanWeights,
                1 => CheckpointPoison::WrongDims,
                _ => CheckpointPoison::RewardTank,
            })
            .collect();
        // Connection faults draw last for the same reason: arming the
        // front door must leave a seed's in-process schedule untouched.
        let conn = (0..cfg.conn_horizon)
            .map(|_| {
                let roll: f64 = rng.random();
                let mut acc = cfg.p_conn_disconnect;
                if roll < acc {
                    return Some(ConnFault::MidFrameDisconnect);
                }
                acc += cfg.p_conn_torn;
                if roll < acc {
                    return Some(ConnFault::TornWrite);
                }
                acc += cfg.p_conn_slowloris;
                if roll < acc {
                    return Some(ConnFault::SlowLoris);
                }
                None
            })
            .collect();
        // Trainer faults draw after conn for the same reason again: arming
        // the trainer must leave every earlier schedule for a seed intact.
        let mut trainer = BTreeMap::new();
        for epoch in 0..cfg.trainer_horizon {
            let roll: f64 = rng.random();
            let mut acc = cfg.p_trainer_crash;
            if roll < acc {
                trainer.insert(epoch, TrainerFault::Crash);
                continue;
            }
            acc += cfg.p_trainer_flood;
            if roll < acc {
                trainer.insert(
                    epoch,
                    TrainerFault::StaleCandidateFlood(cfg.trainer_flood_len.max(1)),
                );
                continue;
            }
            acc += cfg.p_trainer_drop;
            if roll < acc {
                trainer.insert(epoch, TrainerFault::TransitionDrop);
            }
        }
        // WAL faults draw after trainer, with their own offer index, so
        // arming the journal leaves every existing seeded plan intact.
        let wal = (0..cfg.wal_horizon)
            .map(|_| {
                let roll: f64 = rng.random();
                let mut acc = cfg.p_wal_torn;
                if roll < acc {
                    return Some(WalFault::TornAppend);
                }
                acc += cfg.p_wal_bitflip;
                if roll < acc {
                    return Some(WalFault::SegmentBitFlip);
                }
                acc += cfg.p_wal_stall;
                if roll < acc {
                    return Some(WalFault::FsyncStall(cfg.wal_stall_ms));
                }
                None
            })
            .collect();
        Self {
            ingest,
            shard,
            swap_fail,
            snapshot,
            poison,
            conn,
            trainer,
            wal,
        }
    }

    /// Schedules `fault` for the `offer_index`-th request offer.
    pub fn with_ingest_fault(mut self, offer_index: usize, fault: IngestFault) -> Self {
        if self.ingest.len() <= offer_index {
            self.ingest.resize(offer_index + 1, None);
        }
        self.ingest[offer_index] = Some(fault);
        self
    }

    /// Schedules a crash of `shard` at `epoch`.
    pub fn with_crash(mut self, epoch: u32, shard: usize) -> Self {
        self.shard.insert((epoch, shard), ShardFault::Crash);
        self
    }

    /// Schedules an `ms`-millisecond stall of `shard` at `epoch`.
    pub fn with_stall(mut self, epoch: u32, shard: usize, ms: u64) -> Self {
        self.shard.insert((epoch, shard), ShardFault::Stall(ms));
        self
    }

    /// Schedules a registry-swap failure for `shard` at `epoch`.
    pub fn with_swap_failure(mut self, epoch: u32, shard: usize) -> Self {
        self.swap_fail.insert((epoch, shard));
        self
    }

    /// Schedules a corruption of the next not-yet-corrupted snapshot
    /// write.
    pub fn with_snapshot_corruption(mut self, corruption: SnapshotCorruption) -> Self {
        self.snapshot.push(corruption);
        self
    }

    /// Schedules the next rollout submission's policy checkpoint to be
    /// replaced with a poisoned one of the given kind.
    pub fn with_poisoned_checkpoint(mut self, kind: CheckpointPoison) -> Self {
        self.poison.push(kind);
        self
    }

    /// Schedules `fault` for the `offer_index`-th frame sent over the
    /// front door.
    pub fn with_conn_fault(mut self, offer_index: usize, fault: ConnFault) -> Self {
        if self.conn.len() <= offer_index {
            self.conn.resize(offer_index + 1, None);
        }
        self.conn[offer_index] = Some(fault);
        self
    }

    /// Schedules `fault` for the trainer at `epoch`.
    pub fn with_trainer_fault(mut self, epoch: u32, fault: TrainerFault) -> Self {
        self.trainer.insert(epoch, fault);
        self
    }

    /// Schedules `fault` for the `offer_index`-th journaled push attempt.
    pub fn with_wal_fault(mut self, offer_index: usize, fault: WalFault) -> Self {
        if self.wal.len() <= offer_index {
            self.wal.resize(offer_index + 1, None);
        }
        self.wal[offer_index] = Some(fault);
        self
    }

    /// What the plan has scheduled, by kind.
    pub fn scheduled(&self) -> ScheduledFaults {
        ScheduledFaults {
            ingest: self.ingest.iter().filter(|f| f.is_some()).count(),
            stalls: self
                .shard
                .values()
                .filter(|f| matches!(f, ShardFault::Stall(_)))
                .count(),
            crashes: self
                .shard
                .values()
                .filter(|f| matches!(f, ShardFault::Crash))
                .count(),
            swap_fails: self.swap_fail.len(),
            snapshot_corruptions: self.snapshot.len(),
            poisoned_checkpoints: self.poison.len(),
            conn: self.conn.iter().filter(|f| f.is_some()).count(),
            trainer: self.trainer.len(),
            wal: self.wal.iter().filter(|f| f.is_some()).count(),
        }
    }
}

/// Cumulative counts of faults that actually *fired* during a run.
///
/// `delays_released` is incremented by the service when a deferred event
/// finally reaches its queue; `delays - delays_released` is therefore the
/// number of delayed events still in flight — the "retried/delayed
/// in-flight" term of the chaos harness's conservation invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Request offers inspected by the injector (including retries).
    pub offers: u64,
    /// Offers dropped.
    pub drops: u64,
    /// Offers deferred.
    pub delays: u64,
    /// Deferred events released into their queue so far.
    pub delays_released: u64,
    /// Offers duplicated.
    pub duplicates: u64,
    /// Offers corrupted.
    pub corrupts: u64,
    /// Shard stalls fired.
    pub stalls: u64,
    /// Shard crashes fired.
    pub crashes: u64,
    /// Registry-swap failures fired.
    pub swap_fails: u64,
    /// Snapshot writes corrupted.
    pub snapshot_corruptions: u64,
    /// Rollout submissions whose checkpoint was poisoned.
    pub poisoned_checkpoints: u64,
    /// Mid-frame disconnects fired at the front door.
    pub conn_disconnects: u64,
    /// Torn writes fired at the front door.
    pub conn_torn_writes: u64,
    /// Slow-loris stalls fired at the front door.
    pub conn_slow_loris: u64,
    /// Trainer crashes fired.
    pub trainer_crashes: u64,
    /// Stale-candidate floods fired.
    pub trainer_floods: u64,
    /// Transition drops fired.
    pub trainer_drops: u64,
    /// Torn journal appends fired.
    pub wal_torn: u64,
    /// Journal segment bit-flips fired.
    pub wal_bitflips: u64,
    /// Journal fsync stalls fired.
    pub wal_stalls: u64,
}

impl FaultCounters {
    /// Faults that degrade an epoch when they fire (stall past the
    /// deadline, or a failed swap).
    pub fn degrading(&self) -> u64 {
        self.stalls + self.swap_fails
    }

    /// Whether any fault fired at all.
    pub fn any(&self) -> bool {
        self.drops
            + self.delays
            + self.duplicates
            + self.corrupts
            + self.stalls
            + self.crashes
            + self.swap_fails
            + self.snapshot_corruptions
            + self.poisoned_checkpoints
            + self.conn_disconnects
            + self.conn_torn_writes
            + self.conn_slow_loris
            + self.trainer_crashes
            + self.trainer_floods
            + self.trainer_drops
            + self.wal_torn
            + self.wal_bitflips
            + self.wal_stalls
            > 0
    }
}

/// Applies a [`FaultPlan`] at the service's hook points, each fault
/// exactly once, with cumulative fired-fault counters.
#[derive(Debug)]
pub struct FaultInjector {
    ingest: Vec<Option<IngestFault>>,
    shard: Mutex<BTreeMap<(u32, usize), ShardFault>>,
    swap_fail: Mutex<BTreeSet<(u32, usize)>>,
    snapshot: Mutex<VecDeque<SnapshotCorruption>>,
    poison: Mutex<VecDeque<CheckpointPoison>>,
    conn: Vec<Option<ConnFault>>,
    trainer: Mutex<BTreeMap<u32, TrainerFault>>,
    wal: Vec<Option<WalFault>>,
    scheduled: ScheduledFaults,
    offer_idx: AtomicUsize,
    conn_offer_idx: AtomicUsize,
    wal_offer_idx: AtomicUsize,
    c_offers: AtomicU64,
    c_drops: AtomicU64,
    c_delays: AtomicU64,
    c_delays_released: AtomicU64,
    c_duplicates: AtomicU64,
    c_corrupts: AtomicU64,
    c_stalls: AtomicU64,
    c_crashes: AtomicU64,
    c_swap_fails: AtomicU64,
    c_snapshot_corruptions: AtomicU64,
    c_poisoned_checkpoints: AtomicU64,
    c_conn_disconnects: AtomicU64,
    c_conn_torn_writes: AtomicU64,
    c_conn_slow_loris: AtomicU64,
    c_trainer_crashes: AtomicU64,
    c_trainer_floods: AtomicU64,
    c_trainer_drops: AtomicU64,
    c_wal_torn: AtomicU64,
    c_wal_bitflips: AtomicU64,
    c_wal_stalls: AtomicU64,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let scheduled = plan.scheduled();
        Self {
            ingest: plan.ingest,
            shard: Mutex::new(plan.shard),
            swap_fail: Mutex::new(plan.swap_fail),
            snapshot: Mutex::new(plan.snapshot.into()),
            poison: Mutex::new(plan.poison.into()),
            conn: plan.conn,
            trainer: Mutex::new(plan.trainer),
            wal: plan.wal,
            scheduled,
            offer_idx: AtomicUsize::new(0),
            conn_offer_idx: AtomicUsize::new(0),
            wal_offer_idx: AtomicUsize::new(0),
            c_offers: AtomicU64::new(0),
            c_drops: AtomicU64::new(0),
            c_delays: AtomicU64::new(0),
            c_delays_released: AtomicU64::new(0),
            c_duplicates: AtomicU64::new(0),
            c_corrupts: AtomicU64::new(0),
            c_stalls: AtomicU64::new(0),
            c_crashes: AtomicU64::new(0),
            c_swap_fails: AtomicU64::new(0),
            c_snapshot_corruptions: AtomicU64::new(0),
            c_poisoned_checkpoints: AtomicU64::new(0),
            c_conn_disconnects: AtomicU64::new(0),
            c_conn_torn_writes: AtomicU64::new(0),
            c_conn_slow_loris: AtomicU64::new(0),
            c_trainer_crashes: AtomicU64::new(0),
            c_trainer_floods: AtomicU64::new(0),
            c_trainer_drops: AtomicU64::new(0),
            c_wal_torn: AtomicU64::new(0),
            c_wal_bitflips: AtomicU64::new(0),
            c_wal_stalls: AtomicU64::new(0),
        }
    }

    /// An injector executing the schedule drawn from `(seed, cfg)`.
    pub fn from_seed(seed: u64, cfg: &FaultPlanConfig) -> Self {
        Self::new(FaultPlan::generate(seed, cfg))
    }

    /// What the underlying plan scheduled (fixed at construction).
    pub fn scheduled(&self) -> ScheduledFaults {
        self.scheduled
    }

    fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The fault (if any) for the next request offer. Counts the offer and
    /// the fired fault.
    pub fn next_ingest_fault(&self) -> Option<IngestFault> {
        let idx = self.offer_idx.fetch_add(1, Ordering::Relaxed);
        self.c_offers.fetch_add(1, Ordering::Relaxed);
        let fault = self.ingest.get(idx).copied().flatten();
        match fault {
            Some(IngestFault::Drop) => {
                self.c_drops.fetch_add(1, Ordering::Relaxed);
            }
            Some(IngestFault::Delay(_)) => {
                self.c_delays.fetch_add(1, Ordering::Relaxed);
            }
            Some(IngestFault::Duplicate) => {
                self.c_duplicates.fetch_add(1, Ordering::Relaxed);
            }
            Some(IngestFault::Corrupt) => {
                self.c_corrupts.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        fault
    }

    /// The fault (if any) for the next frame offered over the front door.
    /// Consumes the offer index and counts the fired fault. Connection
    /// offers advance independently of ingest offers: the front-door
    /// harness perturbs the wire without shifting the in-process schedule.
    pub fn next_conn_fault(&self) -> Option<ConnFault> {
        let idx = self.conn_offer_idx.fetch_add(1, Ordering::Relaxed);
        let fault = self.conn.get(idx).copied().flatten();
        match fault {
            Some(ConnFault::MidFrameDisconnect) => {
                self.c_conn_disconnects.fetch_add(1, Ordering::Relaxed);
            }
            Some(ConnFault::TornWrite) => {
                self.c_conn_torn_writes.fetch_add(1, Ordering::Relaxed);
            }
            Some(ConnFault::SlowLoris) => {
                self.c_conn_slow_loris.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        fault
    }

    /// The fault (if any) for the next journaled push attempt. WAL
    /// offers advance on their own index: arming the journal never
    /// shifts the ingest or conn schedules, and vice versa.
    pub fn next_wal_fault(&self) -> Option<WalFault> {
        let idx = self.wal_offer_idx.fetch_add(1, Ordering::Relaxed);
        let fault = self.wal.get(idx).copied().flatten();
        match fault {
            Some(WalFault::TornAppend) => {
                self.c_wal_torn.fetch_add(1, Ordering::Relaxed);
            }
            Some(WalFault::SegmentBitFlip) => {
                self.c_wal_bitflips.fetch_add(1, Ordering::Relaxed);
            }
            Some(WalFault::FsyncStall(_)) => {
                self.c_wal_stalls.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        fault
    }

    /// Notes that a deferred event reached its queue.
    pub(crate) fn note_delay_released(&self) {
        self.c_delays_released.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes (consumes) the shard fault scheduled for `(epoch, shard)`, if
    /// any. One-shot: a crashed epoch's replay sees no fault.
    pub fn take_shard_fault(&self, epoch: u32, shard: usize) -> Option<ShardFault> {
        let fault = Self::lock(&self.shard).remove(&(epoch, shard));
        match fault {
            Some(ShardFault::Stall(_)) => {
                self.c_stalls.fetch_add(1, Ordering::Relaxed);
            }
            Some(ShardFault::Crash) => {
                self.c_crashes.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        fault
    }

    /// Takes (consumes) the trainer fault scheduled for `epoch`, if any.
    /// One-shot, like every other fault kind.
    pub fn take_trainer_fault(&self, epoch: u32) -> Option<TrainerFault> {
        let fault = Self::lock(&self.trainer).remove(&epoch);
        match fault {
            Some(TrainerFault::Crash) => {
                self.c_trainer_crashes.fetch_add(1, Ordering::Relaxed);
            }
            Some(TrainerFault::StaleCandidateFlood(_)) => {
                self.c_trainer_floods.fetch_add(1, Ordering::Relaxed);
            }
            Some(TrainerFault::TransitionDrop) => {
                self.c_trainer_drops.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        fault
    }

    /// Takes (consumes) the registry-swap failure scheduled for
    /// `(epoch, shard)`, if any.
    pub fn take_swap_failure(&self, epoch: u32, shard: usize) -> bool {
        let fired = Self::lock(&self.swap_fail).remove(&(epoch, shard));
        if fired {
            self.c_swap_fails.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Damages `text` according to the next scheduled snapshot corruption,
    /// or returns it untouched when none is scheduled.
    pub fn corrupt_snapshot(&self, text: String) -> String {
        let Some(c) = Self::lock(&self.snapshot).pop_front() else {
            return text;
        };
        self.c_snapshot_corruptions.fetch_add(1, Ordering::Relaxed);
        apply_corruption(text, c)
    }

    /// Replaces a rollout submission's policy checkpoint text with the
    /// next scheduled poison (consumed one-shot), or passes the text
    /// through untouched when none is scheduled.
    pub fn poison_checkpoint(&self, policy_text: Option<String>) -> Option<String> {
        let Some(kind) = Self::lock(&self.poison).pop_front() else {
            return policy_text;
        };
        self.c_poisoned_checkpoints.fetch_add(1, Ordering::Relaxed);
        Some(poisoned_policy_text(kind))
    }

    /// The faults fired so far.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            offers: self.c_offers.load(Ordering::Relaxed),
            drops: self.c_drops.load(Ordering::Relaxed),
            delays: self.c_delays.load(Ordering::Relaxed),
            delays_released: self.c_delays_released.load(Ordering::Relaxed),
            duplicates: self.c_duplicates.load(Ordering::Relaxed),
            corrupts: self.c_corrupts.load(Ordering::Relaxed),
            stalls: self.c_stalls.load(Ordering::Relaxed),
            crashes: self.c_crashes.load(Ordering::Relaxed),
            swap_fails: self.c_swap_fails.load(Ordering::Relaxed),
            snapshot_corruptions: self.c_snapshot_corruptions.load(Ordering::Relaxed),
            poisoned_checkpoints: self.c_poisoned_checkpoints.load(Ordering::Relaxed),
            conn_disconnects: self.c_conn_disconnects.load(Ordering::Relaxed),
            conn_torn_writes: self.c_conn_torn_writes.load(Ordering::Relaxed),
            conn_slow_loris: self.c_conn_slow_loris.load(Ordering::Relaxed),
            trainer_crashes: self.c_trainer_crashes.load(Ordering::Relaxed),
            trainer_floods: self.c_trainer_floods.load(Ordering::Relaxed),
            trainer_drops: self.c_trainer_drops.load(Ordering::Relaxed),
            wal_torn: self.c_wal_torn.load(Ordering::Relaxed),
            wal_bitflips: self.c_wal_bitflips.load(Ordering::Relaxed),
            wal_stalls: self.c_wal_stalls.load(Ordering::Relaxed),
        }
    }
}

/// The checkpoint text a poisoning of `kind` substitutes for the submitted
/// policy. Deterministic per kind.
pub fn poisoned_policy_text(kind: CheckpointPoison) -> String {
    match kind {
        CheckpointPoison::NanWeights => {
            let mut net = Mlp::new(&[FEATURE_DIM, 4, 1], 0x6e616e);
            net.visit_params_mut(|i, w, _| {
                if i == 5 {
                    *w = f64::NAN;
                }
            });
            mlp_to_text(&net)
        }
        CheckpointPoison::WrongDims => mlp_to_text(&Mlp::new(&[FEATURE_DIM + 1, 4, 1], 0x646d73)),
        CheckpointPoison::RewardTank => reward_tank_policy_text(),
    }
}

/// A structurally valid policy that passes every admission check yet tanks
/// the paper reward: a single linear layer whose only non-zero weight
/// (1000, well under the probe bound) sits on the stand-by feature flag, so
/// standing by always out-scores every rescue candidate and no team is
/// ever dispatched.
pub fn reward_tank_policy_text() -> String {
    let mut net = Mlp::new(&[FEATURE_DIM, 1], 0);
    net.visit_params_mut(|i, w, _| {
        *w = if i == FEATURE_DIM - 1 { 1_000.0 } else { 0.0 };
    });
    mlp_to_text(&net)
}

/// Applies one corruption to a snapshot text. Snapshot formats are pure
/// ASCII, so byte surgery stays valid UTF-8; `from_utf8_lossy` guards the
/// general case anyway.
fn apply_corruption(text: String, c: SnapshotCorruption) -> String {
    let mut bytes = text.into_bytes();
    if bytes.is_empty() {
        return String::new();
    }
    match c {
        SnapshotCorruption::Truncate(at) => {
            // Keep at least one byte, lose at least one.
            let keep = 1 + (at as usize) % bytes.len().max(2).saturating_sub(1);
            bytes.truncate(keep.min(bytes.len() - 1));
        }
        SnapshotCorruption::BitFlip(at) => {
            let i = (at as usize) % bytes.len();
            bytes[i] ^= 0x10;
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_inspectable() {
        let cfg = FaultPlanConfig::chaos(8, 2);
        let a = FaultPlan::generate(42, &cfg);
        let b = FaultPlan::generate(42, &cfg);
        assert_eq!(a.scheduled(), b.scheduled());
        assert_eq!(a.ingest, b.ingest);
        assert_eq!(a.shard, b.shard);
        let c = FaultPlan::generate(43, &cfg);
        assert_ne!(
            (a.ingest.clone(), a.shard.clone(), a.swap_fail.clone()),
            (c.ingest.clone(), c.shard.clone(), c.swap_fail.clone()),
            "different seeds draw different schedules"
        );
        let quiet = FaultPlan::generate(42, &FaultPlanConfig::quiet(8, 2));
        assert!(!quiet.scheduled().any());
    }

    #[test]
    fn injector_consumes_faults_one_shot() {
        let plan = FaultPlan::empty()
            .with_crash(3, 0)
            .with_stall(4, 1, 500)
            .with_swap_failure(2, 0)
            .with_ingest_fault(1, IngestFault::Drop);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.next_ingest_fault(), None);
        assert_eq!(inj.next_ingest_fault(), Some(IngestFault::Drop));
        assert_eq!(inj.next_ingest_fault(), None, "beyond the horizon");
        assert_eq!(inj.take_shard_fault(3, 0), Some(ShardFault::Crash));
        assert_eq!(inj.take_shard_fault(3, 0), None, "crash fires once");
        assert_eq!(inj.take_shard_fault(4, 1), Some(ShardFault::Stall(500)));
        assert!(inj.take_swap_failure(2, 0));
        assert!(!inj.take_swap_failure(2, 0), "swap failure fires once");
        let c = inj.counters();
        assert_eq!(c.offers, 3);
        assert_eq!(c.drops, 1);
        assert_eq!(c.crashes, 1);
        assert_eq!(c.stalls, 1);
        assert_eq!(c.swap_fails, 1);
        assert!(c.any());
    }

    #[test]
    fn poisoned_checkpoints_consume_one_shot_and_build_what_they_claim() {
        use mobirescue_rl::persist::mlp_from_text;
        let plan = FaultPlan::empty()
            .with_poisoned_checkpoint(CheckpointPoison::NanWeights)
            .with_poisoned_checkpoint(CheckpointPoison::WrongDims)
            .with_poisoned_checkpoint(CheckpointPoison::RewardTank);
        assert_eq!(plan.scheduled().poisoned_checkpoints, 3);
        let inj = FaultInjector::new(plan);

        let nan = inj.poison_checkpoint(Some("good".into())).expect("text");
        let net = mlp_from_text(&nan).expect("NaN poison still parses");
        assert!(net.first_non_finite_param().is_some());

        let wrong = inj.poison_checkpoint(None).expect("poison ignores None");
        let net = mlp_from_text(&wrong).expect("parses");
        assert_eq!(net.input_dim(), FEATURE_DIM + 1);

        let tank = inj.poison_checkpoint(Some("good".into())).expect("text");
        let net = mlp_from_text(&tank).expect("parses");
        assert_eq!((net.input_dim(), net.output_dim()), (FEATURE_DIM, 1));
        assert!(net.first_non_finite_param().is_none());
        // Stand-by (flag set) out-scores any zone candidate (flag clear).
        let mut standby = [0.0; FEATURE_DIM];
        standby[FEATURE_DIM - 1] = 1.0;
        let mut zone = [0.9; FEATURE_DIM];
        zone[FEATURE_DIM - 1] = 0.0;
        assert!(net.predict(&standby)[0] > net.predict(&zone)[0] + 100.0);

        // Exhausted: submissions pass through untouched.
        assert_eq!(
            inj.poison_checkpoint(Some("good".into())).as_deref(),
            Some("good")
        );
        assert_eq!(inj.counters().poisoned_checkpoints, 3);
    }

    #[test]
    fn generated_poisons_cycle_and_leave_seeded_plans_untouched() {
        let base_cfg = FaultPlanConfig::chaos(6, 2);
        let with_poison = FaultPlanConfig {
            poisoned_checkpoints: 4,
            ..base_cfg.clone()
        };
        let a = FaultPlan::generate(7, &base_cfg);
        let b = FaultPlan::generate(7, &with_poison);
        assert_eq!(a.ingest, b.ingest, "poisons must not perturb other draws");
        assert_eq!(a.shard, b.shard);
        assert_eq!(a.swap_fail, b.swap_fail);
        assert_eq!(
            b.poison,
            vec![
                CheckpointPoison::NanWeights,
                CheckpointPoison::WrongDims,
                CheckpointPoison::RewardTank,
                CheckpointPoison::NanWeights,
            ]
        );
    }

    #[test]
    fn conn_faults_consume_one_shot_with_their_own_index() {
        let plan = FaultPlan::empty()
            .with_conn_fault(1, ConnFault::TornWrite)
            .with_conn_fault(2, ConnFault::MidFrameDisconnect)
            .with_conn_fault(3, ConnFault::SlowLoris)
            .with_ingest_fault(0, IngestFault::Drop);
        assert_eq!(plan.scheduled().conn, 3);
        assert!(plan.scheduled().any());
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.next_conn_fault(), None);
        assert_eq!(inj.next_conn_fault(), Some(ConnFault::TornWrite));
        assert_eq!(inj.next_conn_fault(), Some(ConnFault::MidFrameDisconnect));
        assert_eq!(inj.next_conn_fault(), Some(ConnFault::SlowLoris));
        assert_eq!(inj.next_conn_fault(), None, "beyond the horizon");
        // The conn index did not consume the ingest schedule.
        assert_eq!(inj.next_ingest_fault(), Some(IngestFault::Drop));
        let c = inj.counters();
        assert_eq!(c.conn_disconnects, 1);
        assert_eq!(c.conn_torn_writes, 1);
        assert_eq!(c.conn_slow_loris, 1);
        assert!(c.any());
    }

    #[test]
    fn conn_draws_leave_seeded_plans_untouched() {
        // Arming the front door must not perturb the in-process schedule a
        // seed already draws — conn faults are drawn after everything else.
        let base_cfg = FaultPlanConfig::chaos(6, 2);
        let with_conn = FaultPlanConfig::net_chaos(6, 2);
        let a = FaultPlan::generate(7, &base_cfg);
        let b = FaultPlan::generate(7, &with_conn);
        assert_eq!(a.ingest, b.ingest, "conn draws must not perturb ingest");
        assert_eq!(a.shard, b.shard);
        assert_eq!(a.swap_fail, b.swap_fail);
        assert_eq!(a.scheduled().conn, 0);
        assert!(b.scheduled().conn > 0, "net chaos schedules conn faults");
        // And the conn schedule itself is deterministic per seed.
        let c = FaultPlan::generate(7, &with_conn);
        assert_eq!(b.conn, c.conn);
    }

    #[test]
    fn trainer_faults_consume_one_shot() {
        let plan = FaultPlan::empty()
            .with_trainer_fault(1, TrainerFault::Crash)
            .with_trainer_fault(2, TrainerFault::StaleCandidateFlood(4))
            .with_trainer_fault(3, TrainerFault::TransitionDrop);
        assert_eq!(plan.scheduled().trainer, 3);
        assert!(plan.scheduled().any());
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.take_trainer_fault(0), None);
        assert_eq!(inj.take_trainer_fault(1), Some(TrainerFault::Crash));
        assert_eq!(inj.take_trainer_fault(1), None, "crash fires once");
        assert_eq!(
            inj.take_trainer_fault(2),
            Some(TrainerFault::StaleCandidateFlood(4))
        );
        assert_eq!(
            inj.take_trainer_fault(3),
            Some(TrainerFault::TransitionDrop)
        );
        let c = inj.counters();
        assert_eq!(c.trainer_crashes, 1);
        assert_eq!(c.trainer_floods, 1);
        assert_eq!(c.trainer_drops, 1);
        assert!(c.any());
    }

    #[test]
    fn trainer_draws_leave_seeded_plans_untouched() {
        // Arming the trainer must not perturb anything a seed already
        // draws — trainer faults are drawn after every other kind.
        let base_cfg = FaultPlanConfig::net_chaos(6, 2);
        let with_trainer = FaultPlanConfig {
            trainer_horizon: 6,
            p_trainer_crash: 0.3,
            p_trainer_flood: 0.3,
            p_trainer_drop: 0.3,
            ..base_cfg.clone()
        };
        let a = FaultPlan::generate(7, &base_cfg);
        let b = FaultPlan::generate(7, &with_trainer);
        assert_eq!(a.ingest, b.ingest, "trainer draws must not perturb ingest");
        assert_eq!(a.shard, b.shard);
        assert_eq!(a.swap_fail, b.swap_fail);
        assert_eq!(a.conn, b.conn, "trainer draws must not perturb conn");
        assert_eq!(a.scheduled().trainer, 0);
        assert!(b.scheduled().trainer > 0, "horizon 6 at p=0.9 draws faults");
        // And the trainer schedule itself is deterministic per seed.
        let c = FaultPlan::generate(7, &with_trainer);
        assert_eq!(b.trainer, c.trainer);
        // The dedicated mix schedules only trainer faults.
        let solo = FaultPlan::generate(7, &FaultPlanConfig::trainer_chaos(8, 2));
        let sched = solo.scheduled();
        assert_eq!(
            (
                sched.ingest,
                sched.stalls,
                sched.crashes,
                sched.swap_fails,
                sched.conn
            ),
            (0, 0, 0, 0, 0),
            "trainer chaos arms no other fault kind"
        );
    }

    #[test]
    fn wal_faults_consume_one_shot_with_their_own_index() {
        let plan = FaultPlan::empty()
            .with_wal_fault(1, WalFault::TornAppend)
            .with_wal_fault(2, WalFault::SegmentBitFlip)
            .with_wal_fault(3, WalFault::FsyncStall(7))
            .with_ingest_fault(0, IngestFault::Drop)
            .with_conn_fault(0, ConnFault::TornWrite);
        assert_eq!(plan.scheduled().wal, 3);
        assert!(plan.scheduled().any());
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.next_wal_fault(), None);
        assert_eq!(inj.next_wal_fault(), Some(WalFault::TornAppend));
        assert_eq!(inj.next_wal_fault(), Some(WalFault::SegmentBitFlip));
        assert_eq!(inj.next_wal_fault(), Some(WalFault::FsyncStall(7)));
        assert_eq!(inj.next_wal_fault(), None, "beyond the horizon");
        // The WAL index consumed neither the ingest nor the conn schedule.
        assert_eq!(inj.next_ingest_fault(), Some(IngestFault::Drop));
        assert_eq!(inj.next_conn_fault(), Some(ConnFault::TornWrite));
        let c = inj.counters();
        assert_eq!(c.wal_torn, 1);
        assert_eq!(c.wal_bitflips, 1);
        assert_eq!(c.wal_stalls, 1);
        assert!(c.any());
    }

    #[test]
    fn wal_draws_leave_seeded_plans_untouched() {
        // Arming the journal must not perturb anything a seed already
        // draws — WAL faults are drawn after every other kind.
        let base_cfg = FaultPlanConfig {
            trainer_horizon: 6,
            p_trainer_crash: 0.2,
            p_trainer_flood: 0.2,
            p_trainer_drop: 0.2,
            ..FaultPlanConfig::net_chaos(6, 2)
        };
        let with_wal = FaultPlanConfig {
            wal_horizon: 64,
            p_wal_torn: 0.3,
            p_wal_bitflip: 0.3,
            p_wal_stall: 0.3,
            wal_stall_ms: 10,
            ..base_cfg.clone()
        };
        let a = FaultPlan::generate(7, &base_cfg);
        let b = FaultPlan::generate(7, &with_wal);
        assert_eq!(a.ingest, b.ingest, "wal draws must not perturb ingest");
        assert_eq!(a.shard, b.shard);
        assert_eq!(a.swap_fail, b.swap_fail);
        assert_eq!(a.conn, b.conn, "wal draws must not perturb conn");
        assert_eq!(a.trainer, b.trainer, "wal draws must not perturb trainer");
        assert_eq!(a.scheduled().wal, 0);
        assert!(b.scheduled().wal > 0, "horizon 64 at p=0.9 draws faults");
        // And the WAL schedule itself is deterministic per seed.
        let c = FaultPlan::generate(7, &with_wal);
        assert_eq!(b.wal, c.wal);
        // The dedicated mix schedules only WAL faults.
        let solo = FaultPlan::generate(7, &FaultPlanConfig::wal_chaos(8, 2));
        let sched = solo.scheduled();
        assert_eq!(
            (
                sched.ingest,
                sched.stalls,
                sched.crashes,
                sched.swap_fails,
                sched.conn,
                sched.trainer
            ),
            (0, 0, 0, 0, 0, 0),
            "wal chaos arms no other fault kind"
        );
        assert!(sched.wal > 0);
    }

    #[test]
    fn snapshot_corruption_damages_text() {
        let plan = FaultPlan::empty()
            .with_snapshot_corruption(SnapshotCorruption::BitFlip(7))
            .with_snapshot_corruption(SnapshotCorruption::Truncate(5));
        let inj = FaultInjector::new(plan);
        let original = "mrserve 1\nepochs 3\nend\nsum 0123456789abcdef\n".to_owned();
        let flipped = inj.corrupt_snapshot(original.clone());
        assert_ne!(flipped, original);
        assert_eq!(flipped.len(), original.len());
        let truncated = inj.corrupt_snapshot(original.clone());
        assert!(truncated.len() < original.len());
        // Plan exhausted: further writes pass through untouched.
        assert_eq!(inj.corrupt_snapshot(original.clone()), original);
        assert_eq!(inj.counters().snapshot_corruptions, 2);
    }
}
