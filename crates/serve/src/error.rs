//! The service-boundary error type.
//!
//! Inside the simulator, violated invariants still panic — a corrupted
//! engine state is a bug, not an operating condition. At the *service*
//! boundary everything a caller or a peer process can get wrong (bad
//! events, unreadable checkpoints, truncated snapshots, a dead shard)
//! surfaces as a [`ServeError`] instead, so a long-running dispatcher
//! keeps serving through malformed input.

use crate::rollout::RolloutError;
use crate::wal::WalError;
use mobirescue_sim::WorldError;

/// Why a service operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// An event or snapshot referenced a shard the service does not host.
    UnknownShard {
        /// The referenced shard index.
        shard: usize,
        /// How many shards the service hosts.
        num_shards: usize,
    },
    /// The simulation engine rejected an event or snapshot.
    World(WorldError),
    /// A shard worker died or replied out of protocol.
    Shard {
        /// Index of the failing shard.
        shard: usize,
        /// What went wrong.
        message: String,
    },
    /// A service snapshot failed to parse.
    BadSnapshot(String),
    /// A model checkpoint failed to load.
    BadModel(String),
    /// The rollout pipeline rejected a candidate bundle (admission
    /// failure or a rollout already in flight).
    Rollout(RolloutError),
    /// Reading or writing a checkpoint/snapshot file failed.
    Io(String),
    /// The configuration cannot host a service (e.g. zero shards).
    BadConfig(&'static str),
    /// The durable ingest journal failed (torn append, corrupt segment,
    /// filesystem failure) — the request was *not* made durable and
    /// must not be acked.
    Wal(WalError),
    /// Recovery (journal replay or snapshot restore) overflowed a bounded
    /// request queue: admitting the remainder would silently shed
    /// durably-acked requests, so the service refuses to start. Restart
    /// with a queue capacity at least as large as the crashed process
    /// used.
    ReplayOverflow {
        /// The shard whose restored queue is full.
        shard: usize,
        /// The configured capacity that was exceeded.
        capacity: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownShard { shard, num_shards } => {
                write!(f, "unknown shard {shard} (service hosts {num_shards})")
            }
            ServeError::World(e) => write!(f, "engine rejected the operation: {e}"),
            ServeError::Shard { shard, message } => {
                write!(f, "shard {shard} failed: {message}")
            }
            ServeError::BadSnapshot(why) => write!(f, "bad service snapshot: {why}"),
            ServeError::BadModel(why) => write!(f, "bad model checkpoint: {why}"),
            ServeError::Rollout(e) => write!(f, "rollout rejected: {e}"),
            ServeError::Io(why) => write!(f, "i/o error: {why}"),
            ServeError::BadConfig(what) => write!(f, "bad service config: {what}"),
            ServeError::Wal(e) => write!(f, "ingest journal failed: {e}"),
            ServeError::ReplayOverflow { shard, capacity } => write!(
                f,
                "recovery would shed acked requests: shard {shard}'s restored queue \
                 exceeds its capacity of {capacity}; restart with at least the \
                 crashed process's queue capacity"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WorldError> for ServeError {
    fn from(e: WorldError) -> Self {
        ServeError::World(e)
    }
}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        ServeError::Wal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ServeError::UnknownShard {
            shard: 7,
            num_shards: 2,
        };
        assert!(e.to_string().contains("shard 7"));
        let e: ServeError = WorldError::NoHospitals.into();
        assert!(e.to_string().contains("hospitals"));
        assert!(ServeError::BadSnapshot("x".into())
            .to_string()
            .contains("snapshot"));
        assert!(ServeError::BadModel("y".into())
            .to_string()
            .contains("checkpoint"));
        assert!(ServeError::BadConfig("zero shards")
            .to_string()
            .contains("zero shards"));
        assert!(ServeError::Rollout(RolloutError::InFlight)
            .to_string()
            .contains("in flight"));
        let e: ServeError = WalError::TornTail {
            segment: "wal-1.log".into(),
            offset: 42,
        }
        .into();
        assert!(e.to_string().contains("torn tail"));
        assert!(e.to_string().contains("42"));
    }
}
