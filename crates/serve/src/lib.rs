//! `mobirescue-serve`: an online dispatch service runtime over the
//! MobiRescue reproduction.
//!
//! The paper's dispatcher is evaluated in batch simulation; this crate
//! hosts the same dispatcher as a long-running service the way a real
//! emergency-operations deployment would run it:
//!
//! * **Streaming ingestion** ([`Event`], [`BoundedQueue`]) — rescue
//!   requests, weather updates and road-damage advisories arrive from
//!   producer threads into bounded queues with an explicit shed policy
//!   ([`ShedPolicy`]) and accepted/shed counters, so overload is a
//!   measured decision instead of unbounded memory growth.
//! * **Epoch scheduler** ([`EpochScheduler`]) — runs the dispatch tick on
//!   the paper's 5-minute period against a pluggable [`Clock`]
//!   ([`WallClock`] for deployment, [`SimClock`] for accelerated and
//!   deterministic runs), measuring per-epoch dispatcher latency and
//!   feeding it back into the simulation as order delay exactly as
//!   `mobirescue_sim::engine` models dispatch latency.
//! * **Model hot-swap** ([`ModelRegistry`]) — SVM + DQN checkpoints load
//!   through the existing persistence formats and swap in atomically via
//!   `Arc` between epochs, without pausing ingestion.
//! * **Snapshot recovery** ([`DispatchService::snapshot`],
//!   [`DispatchService::restore`]) — the full service state (each shard's
//!   world, pending queues, counters) serializes at epoch boundaries so a
//!   killed service resumes mid-disaster.
//! * **Sharded runner** ([`DispatchService`]) — hosts independent city
//!   shards on worker threads and aggregates a [`MetricsSnapshot`]
//!   (queue depths, epoch-latency histogram, served/shed totals).
//!
//! Built entirely on `std` (`std::thread`, `std::sync::mpsc`).

#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod event;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod scheduler;
pub mod service;
mod shard;

pub use clock::{Clock, SimClock, WallClock};
pub use error::ServeError;
pub use event::Event;
pub use metrics::{LatencyHistogram, MetricsSnapshot, ShardMetrics, LATENCY_BOUNDS_MS};
pub use queue::{BoundedQueue, ShedPolicy};
pub use registry::{ModelBundle, ModelRegistry};
pub use scheduler::EpochScheduler;
pub use service::{DispatchService, ServeConfig};
