//! `mobirescue-serve`: an online dispatch service runtime over the
//! MobiRescue reproduction.
//!
//! The paper's dispatcher is evaluated in batch simulation; this crate
//! hosts the same dispatcher as a long-running service the way a real
//! emergency-operations deployment would run it:
//!
//! * **Streaming ingestion** ([`Event`], [`BoundedQueue`]) — rescue
//!   requests, weather updates and road-damage advisories arrive from
//!   producer threads into bounded queues with an explicit shed policy
//!   ([`ShedPolicy`]) and accepted/shed counters, so overload is a
//!   measured decision instead of unbounded memory growth.
//! * **Epoch scheduler** ([`EpochScheduler`]) — runs the dispatch tick on
//!   the paper's 5-minute period against a pluggable [`Clock`]
//!   ([`WallClock`] for deployment, [`SimClock`] for accelerated and
//!   deterministic runs), measuring per-epoch dispatcher latency and
//!   feeding it back into the simulation as order delay exactly as
//!   `mobirescue_sim::engine` models dispatch latency.
//! * **Model hot-swap** ([`ModelRegistry`]) — SVM + DQN checkpoints load
//!   through the existing persistence formats and swap in atomically via
//!   `Arc` between epochs, without pausing ingestion.
//! * **Snapshot recovery** ([`DispatchService::snapshot`],
//!   [`DispatchService::restore`]) — the full service state (each shard's
//!   world, pending queues, counters) serializes at epoch boundaries so a
//!   killed service resumes mid-disaster.
//! * **Sharded runner** ([`DispatchService`]) — hosts independent city
//!   shards on worker threads and aggregates a [`MetricsSnapshot`]
//!   (queue depths, epoch-latency histogram, served/shed totals).
//! * **Fault injection & graceful degradation** ([`FaultPlan`],
//!   [`FaultInjector`], [`chaos`]) — a seeded, deterministic fault
//!   schedule (drop/delay/duplicate/corrupt ingestion, stall/crash a
//!   shard, fail a hot-swap, poison a checkpoint, corrupt a snapshot
//!   write) threaded through the service, paired with the recovery it
//!   demands: bounded ingestion retry, per-epoch dispatch deadline with
//!   fallback to the heuristic dispatcher (`degraded_epochs`),
//!   crash-restart from the last boundary checkpoint, and
//!   checksum-validated snapshots.
//! * **Guarded model rollout** ([`rollout`],
//!   [`DispatchService::submit_rollout`]) — hot-swapped checkpoints pass
//!   an admission probe (finite weights, matching shapes, sane outputs on
//!   a deterministic probe batch), then shadow-score K epochs against the
//!   incumbent, then serve a canary shard subset, before fleet-wide
//!   promotion; any gate failure or post-promotion regression atomically
//!   rolls back to the pinned previous version.
//! * **Online training loop** ([`trainer`], [`TrainerConfig`]) — shards
//!   tap the transitions their frozen dispatchers would have learned
//!   from into a bounded, shed-counting stream; a background DQN trainer
//!   replays them through seeded mini-batch updates and periodically
//!   emits candidate checkpoints into the rollout pipeline, so the
//!   service improves itself without ever serving an unguarded model.
//!   Deterministic on a [`SimClock`], snapshot/restore-exact, and pinned
//!   by its own chaos suite ([`TrainerFault`]).
//! * **Durable ingest journal** ([`wal`], [`Wal`], [`FsyncPolicy`]) —
//!   every accepted offer is appended to a checksummed, segment-rotated
//!   write-ahead log *before* it can be acked; recovery replays the
//!   journal suffix past the snapshot's high-water mark, bit-identical
//!   to an uncrashed twin at any crash byte. Torn tails truncate with a
//!   typed report, interior damage is a typed refusal, and the
//!   crash-at-any-byte contract is pinned by its own chaos suite
//!   ([`WalFault`]).
//!
//! Built entirely on `std` (`std::thread`, `std::sync::mpsc`).

#![warn(missing_docs)]

pub mod chaos;
pub mod clock;
pub mod error;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod rollout;
pub mod scheduler;
pub mod service;
mod shard;
pub mod trainer;
pub mod wal;

pub use chaos::{
    rollout_chaos_divergence, run_chaos, trainer_chaos_divergence, wal_chaos_divergence,
    ChaosOptions, ChaosOutcome, RolloutChaosOptions, TrainerChaosOptions, WalChaosOptions,
    CHAOS_SEEDS,
};
pub use clock::{Clock, ClockTimeSource, SimClock, WallClock};
pub use error::ServeError;
pub use event::Event;
pub use fault::{
    poisoned_policy_text, reward_tank_policy_text, CheckpointPoison, ConnFault, FaultCounters,
    FaultInjector, FaultPlan, FaultPlanConfig, IngestFault, ScheduledFaults, ShardFault,
    SnapshotCorruption, TrainerFault, WalFault,
};
pub use metrics::{LatencyHistogram, MetricsSnapshot, ShardMetrics, LATENCY_BOUNDS_MS};
pub use mobirescue_obs as obs;
pub use queue::{BoundedQueue, ShedPolicy};
pub use registry::{ModelBundle, ModelRegistry};
pub use rollout::{
    Artifact, RolloutConfig, RolloutCounters, RolloutError, RolloutStage, RolloutStatus,
};
pub use scheduler::EpochScheduler;
pub use service::{DispatchService, RetryPolicy, ServeConfig};
pub use shard::SwapError;
pub use trainer::{TrainerConfig, TrainerStatus};
pub use wal::{FsyncPolicy, Wal, WalConfig, WalEntry, WalError, WalRecord, WalRecovery};
