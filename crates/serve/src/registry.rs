//! The model registry: versioned, atomically hot-swappable bundles.
//!
//! A bundle pairs the SVM request predictor (Section IV-B) with the RL
//! scoring network's weights (Section IV-C). The registry hands out
//! `Arc<ModelBundle>` clones — readers (shard dispatchers mid-epoch) keep
//! whatever bundle they started with while a writer installs a newer one,
//! so ingestion and dispatch never pause for a swap. Shards notice the new
//! version at the next epoch boundary and rebuild their dispatcher from
//! it, which is exactly when a dispatch policy may change consistently.
//!
//! Checkpoints load through the existing persistence formats:
//! [`mobirescue_core::predictor::RequestPredictor::from_text`] (which
//! wraps `mobirescue_svm::persist`) and [`mobirescue_rl::persist`].

use crate::error::ServeError;
use mobirescue_core::predictor::RequestPredictor;
use mobirescue_rl::nn::Mlp;
use mobirescue_rl::persist::mlp_from_text;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One deployable set of models.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// Monotonically increasing version, assigned by the registry.
    pub version: u64,
    /// The SVM request predictor (`None` ablates prediction).
    pub predictor: Option<RequestPredictor>,
    /// The RL scoring network's weights (`None` → shards fall back to a
    /// freshly initialized policy).
    pub policy: Option<Mlp>,
}

/// Atomic holder of the current [`ModelBundle`].
#[derive(Debug)]
pub struct ModelRegistry {
    current: RwLock<Arc<ModelBundle>>,
    swaps: AtomicU64,
    rollbacks: AtomicU64,
}

impl ModelRegistry {
    /// A registry whose initial bundle (version 1) holds the given models.
    pub fn new(predictor: Option<RequestPredictor>, policy: Option<Mlp>) -> Self {
        Self {
            current: RwLock::new(Arc::new(ModelBundle {
                version: 1,
                predictor,
                policy,
            })),
            swaps: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
        }
    }

    fn read(&self) -> Arc<ModelBundle> {
        Arc::clone(
            &self
                .current
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// The bundle currently served.
    pub fn current(&self) -> Arc<ModelBundle> {
        self.read()
    }

    /// Atomically installs a new bundle; returns its version.
    pub fn install(&self, predictor: Option<RequestPredictor>, policy: Option<Mlp>) -> u64 {
        let mut slot = self
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let version = slot.version + 1;
        *slot = Arc::new(ModelBundle {
            version,
            predictor,
            policy,
        });
        self.swaps.fetch_add(1, Ordering::Relaxed);
        version
    }

    /// Atomically restores a previously pinned bundle *exactly* — the same
    /// `Arc`, same version, bit-identical models. Used by the rollout
    /// pipeline's auto-rollback; counted separately from [`Self::swaps`]
    /// (a rollback undoes a promotion, it is not a new deployment).
    pub fn restore_bundle(&self, bundle: Arc<ModelBundle>) {
        let mut slot = self
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = bundle;
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Rollbacks performed since creation.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks.load(Ordering::Relaxed)
    }

    /// Parses checkpoint texts and installs them as a new bundle. `None`
    /// keeps that slot empty (not the previous model — a bundle is
    /// installed whole, so a swap is never half of one checkpoint and half
    /// of another).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadModel`] without swapping when either text
    /// fails to parse.
    pub fn install_from_text(
        &self,
        predictor_text: Option<&str>,
        policy_text: Option<&str>,
    ) -> Result<u64, ServeError> {
        let predictor = predictor_text
            .map(|t| {
                RequestPredictor::from_text(t)
                    .map_err(|e| ServeError::BadModel(format!("svm predictor checkpoint: {e}")))
            })
            .transpose()?;
        let policy = policy_text
            .map(|t| {
                mlp_from_text(t)
                    .map_err(|e| ServeError::BadModel(format!("dqn policy checkpoint: {e}")))
            })
            .transpose()?;
        Ok(self.install(predictor, policy))
    }

    /// Reads checkpoint files and installs them as a new bundle.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when a file cannot be read and
    /// [`ServeError::BadModel`] when its contents fail to parse; the
    /// current bundle stays in place either way.
    pub fn install_from_files(
        &self,
        predictor_path: Option<&Path>,
        policy_path: Option<&Path>,
    ) -> Result<u64, ServeError> {
        let read = |p: &Path| {
            std::fs::read_to_string(p).map_err(|e| ServeError::Io(format!("{}: {e}", p.display())))
        };
        let predictor_text = predictor_path.map(read).transpose()?;
        let policy_text = policy_path.map(read).transpose()?;
        self.install_from_text(predictor_text.as_deref(), policy_text.as_deref())
    }

    /// Hot-swaps performed since creation.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_rl::persist::mlp_to_text;

    #[test]
    fn swap_is_versioned_and_readers_keep_old_bundles() {
        let reg = ModelRegistry::new(None, None);
        let held = reg.current();
        assert_eq!(held.version, 1);
        let v2 = reg.install(None, Some(Mlp::new(&[6, 4, 1], 3)));
        assert_eq!(v2, 2);
        assert_eq!(reg.swaps(), 1);
        // The old Arc is untouched; the new read sees the swap.
        assert_eq!(held.version, 1);
        assert!(held.policy.is_none());
        assert!(reg.current().policy.is_some());
    }

    #[test]
    fn text_install_round_trips_weights() {
        let reg = ModelRegistry::new(None, None);
        let net = Mlp::new(&[6, 8, 1], 7);
        let v = reg
            .install_from_text(None, Some(&mlp_to_text(&net)))
            .expect("valid checkpoint");
        assert_eq!(v, 2);
        let loaded = reg.current().policy.clone().expect("policy installed");
        let x = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        assert_eq!(loaded.predict(&x), net.predict(&x));
    }

    #[test]
    fn bad_checkpoints_leave_the_bundle_alone() {
        let reg = ModelRegistry::new(None, Some(Mlp::new(&[2, 1], 0)));
        let err = reg.install_from_text(None, Some("garbage")).unwrap_err();
        assert!(matches!(err, ServeError::BadModel(_)));
        let err = reg
            .install_from_text(Some("not a predictor"), None)
            .unwrap_err();
        assert!(matches!(err, ServeError::BadModel(_)));
        assert_eq!(reg.current().version, 1);
        assert!(reg.current().policy.is_some());
        assert_eq!(reg.swaps(), 0);
    }

    #[test]
    fn bad_checkpoint_errors_name_the_artifact() {
        let reg = ModelRegistry::new(None, None);
        let ServeError::BadModel(msg) = reg.install_from_text(None, Some("garbage")).unwrap_err()
        else {
            panic!("expected BadModel");
        };
        assert!(
            msg.starts_with("dqn policy checkpoint: ") && msg.contains("header"),
            "{msg}"
        );
        let ServeError::BadModel(msg) = reg
            .install_from_text(Some("not a predictor"), None)
            .unwrap_err()
        else {
            panic!("expected BadModel");
        };
        assert!(
            msg.starts_with("svm predictor checkpoint: ") && msg.contains("predictor header"),
            "{msg}"
        );
    }

    #[test]
    fn restore_bundle_is_exact_and_counted() {
        let reg = ModelRegistry::new(None, Some(Mlp::new(&[6, 4, 1], 9)));
        let pinned = reg.current();
        reg.install(None, Some(Mlp::new(&[6, 8, 1], 10)));
        assert_eq!(reg.current().version, 2);
        reg.restore_bundle(Arc::clone(&pinned));
        assert!(Arc::ptr_eq(&reg.current(), &pinned));
        assert_eq!(reg.current().version, 1);
        assert_eq!(reg.swaps(), 1, "rollback is not a swap");
        assert_eq!(reg.rollbacks(), 1);
    }

    #[test]
    fn missing_files_are_io_errors() {
        let reg = ModelRegistry::new(None, None);
        let err = reg
            .install_from_files(None, Some(Path::new("/nonexistent/policy.txt")))
            .unwrap_err();
        assert!(matches!(err, ServeError::Io(_)));
    }
}
