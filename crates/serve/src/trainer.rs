//! The online trainer: closes the learning loop behind the rollout gate.
//!
//! Serve shards run *frozen* dispatchers, but each one taps the
//! `(features, reward, next_candidates)` transitions its dispatcher would
//! have learned from (see
//! `MobiRescueDispatcher::set_transition_tap`). The service offers those
//! transitions into this trainer's bounded, shed-counting queue — the same
//! backpressure discipline as request ingestion: a slow trainer sheds
//! training data, never dispatch throughput. Once per epoch the trainer
//! drains the queue into a capacity-bounded replay ring and runs a fixed
//! number of seeded mini-batch DQN updates (the exact TD rule the offline
//! `QScore` learner uses: pairwise candidate scoring, target network,
//! Adam). Every `candidate_every` epochs it emits its online network as a
//! candidate checkpoint — which the service routes through
//! [`crate::DispatchService::submit_rollout`], so a self-trained model is
//! admission-probed, shadow-evaluated, canaried and auto-rolled-back
//! exactly like one delivered from outside.
//!
//! # Determinism contract
//!
//! The trainer holds **no** long-lived RNG: each learning step re-seeds a
//! fresh [`StdRng`] from `seed` mixed with the step counter, so sampling
//! is a pure function of `(seed, steps, replay contents)`. Combined with
//! zero-span [`crate::SimClock`] timing this makes a trainer run a pure
//! function of its transition stream: same seed + same stream ⇒
//! byte-identical candidate checkpoints — and snapshot/restore at an epoch
//! boundary resumes bit-identically, which the chaos suite exploits to
//! verify crash recovery against an unfaulted twin.

use crate::queue::{BoundedQueue, ShedPolicy};
use mobirescue_core::rl_dispatch::FEATURE_DIM;
use mobirescue_obs::{Counter, Histogram, Registry, TimeSource};
use mobirescue_rl::nn::Mlp;
use mobirescue_rl::persist::{mlp_from_text, mlp_to_text};
use mobirescue_rl::qscore::PairTransition;
use mobirescue_rl::replay::{pair_from_line, pair_to_line, PairReplay};
use mobirescue_rl::Adam;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::Arc;

/// Hyperparameters of the background trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Transition queue capacity (overflow is shed and counted, exactly
    /// like the ingest queues).
    pub queue_capacity: usize,
    /// Replay ring capacity.
    pub replay_capacity: usize,
    /// Transitions required in replay before learning starts.
    pub min_replay: usize,
    /// Mini-batch size per learning step.
    pub batch_size: usize,
    /// Learning steps attempted per service epoch.
    pub steps_per_epoch: u32,
    /// Emit a candidate checkpoint every this many epochs (0 disables
    /// emission; the trainer still learns).
    pub candidate_every: u32,
    /// TD discount γ.
    pub gamma: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Hidden layers of the trained policy network.
    pub hidden: Vec<usize>,
    /// Copy online → target every this many learning steps.
    pub target_sync_every: u64,
    /// Network-initialization and batch-sampling seed.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 4_096,
            replay_capacity: 4_096,
            min_replay: 64,
            batch_size: 16,
            steps_per_epoch: 4,
            candidate_every: 8,
            gamma: 0.9,
            lr: 1e-3,
            hidden: vec![32, 32],
            target_sync_every: 32,
            seed: 0,
        }
    }
}

/// Public view of the trainer's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrainerStatus {
    /// Service epochs the trainer has ticked through.
    pub epochs: u32,
    /// Mini-batch learning steps performed.
    pub steps: u64,
    /// Transitions offered to the trainer queue.
    pub offered: u64,
    /// Transitions accepted into the queue.
    pub accepted: u64,
    /// Transitions shed at the queue (backpressure).
    pub shed: u64,
    /// Transitions currently held in the replay ring.
    pub replay_len: usize,
    /// Candidate checkpoints the trainer has emitted.
    pub candidates: u64,
}

/// Observability handles the trainer records into (fetched once from the
/// service registry; all zero-cost on a [`crate::SimClock`]).
pub(crate) struct TrainerObs {
    pub steps: Counter,
    pub offered: Counter,
    pub accepted: Counter,
    pub shed: Counter,
    pub loss: Histogram,
    pub step_ms: Histogram,
    pub time: Arc<dyn TimeSource>,
}

impl TrainerObs {
    pub(crate) fn new(obs: &Registry, time: Arc<dyn TimeSource>) -> Self {
        Self {
            steps: obs.counter("train.steps"),
            offered: obs.counter("train.transitions_offered"),
            accepted: obs.counter("train.transitions_accepted"),
            shed: obs.counter("train.transitions_shed"),
            loss: obs.histogram("train.loss"),
            step_ms: obs.histogram("train.step_ms"),
            time,
        }
    }
}

/// The online DQN trainer. Owned by the service and stepped synchronously
/// at each epoch boundary — on a [`crate::SimClock`] that makes the whole
/// learning loop bit-for-bit deterministic, and it means trainer state can
/// only ever be snapshotted between steps.
pub(crate) struct Trainer {
    config: TrainerConfig,
    online: Mlp,
    target: Mlp,
    adam: Adam,
    replay: PairReplay,
    queue: BoundedQueue<PairTransition>,
    /// Service epochs ticked.
    epochs: u32,
    /// Learning steps performed (also the per-step RNG stream position).
    steps: u64,
    /// Candidates emitted.
    candidates: u64,
}

impl Trainer {
    /// A fresh trainer: seeded nets, empty replay, empty queue.
    pub fn new(config: TrainerConfig) -> Self {
        let mut dims = vec![FEATURE_DIM];
        dims.extend_from_slice(&config.hidden);
        dims.push(1);
        let online = Mlp::new(&dims, config.seed);
        let mut target = Mlp::new(&dims, config.seed.wrapping_add(1));
        target.copy_params_from(&online);
        let adam = Adam::new(&online, config.lr);
        let replay = PairReplay::new(config.replay_capacity.max(1));
        let queue = BoundedQueue::new(config.queue_capacity.max(1), ShedPolicy::DropNewest);
        Self {
            config,
            online,
            target,
            adam,
            replay,
            queue,
            epochs: 0,
            steps: 0,
            candidates: 0,
        }
    }

    /// Offers one epoch's tapped transitions into the bounded queue,
    /// recording offer/accept/shed counts.
    pub fn offer(&self, transitions: Vec<PairTransition>, obs: &TrainerObs) {
        for t in transitions {
            obs.offered.inc();
            if self.queue.push(t) {
                obs.accepted.inc();
            } else {
                obs.shed.inc();
            }
        }
    }

    /// One epoch boundary: drain the queue into replay, run the configured
    /// learning steps (if warmed up), and return a candidate checkpoint
    /// text when the emission cadence is due.
    pub fn epoch_tick(&mut self, obs: &TrainerObs) -> Option<String> {
        for t in self.queue.drain() {
            self.replay.push(t);
        }
        let warm = self.replay.len() >= self.config.min_replay.max(self.config.batch_size);
        if warm {
            for _ in 0..self.config.steps_per_epoch {
                let span = obs.step_ms.time(obs.time.as_ref());
                let loss = self.learn_step();
                drop(span);
                obs.steps.inc();
                // The log2-bucket histogram stores integers; milli-loss
                // keeps sub-1.0 TD errors distinguishable from zero.
                obs.loss.record((loss * 1_000.0).round() as u64);
            }
        }
        self.epochs += 1;
        let due = self.config.candidate_every > 0
            && self.epochs.is_multiple_of(self.config.candidate_every)
            && self.steps > 0;
        due.then(|| {
            self.candidates += 1;
            mlp_to_text(&self.online)
        })
    }

    /// One seeded mini-batch TD update (the `QScore` rule: pairwise
    /// candidate max over the target net); returns the mean squared TD
    /// error. The batch RNG is derived from `(seed, steps)` alone, so a
    /// restored trainer samples identically to one that never stopped.
    fn learn_step(&mut self) -> f64 {
        let mut rng = StdRng::seed_from_u64(
            self.config.seed
                ^ 0x7472_6169_6e00_0000u64
                ^ self.steps.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let batch_size = self.config.batch_size.max(1);
        let batch: Vec<PairTransition> = self
            .replay
            .sample(&mut rng, batch_size)
            .into_iter()
            .cloned()
            .collect();
        self.online.zero_grad();
        let mut loss = 0.0;
        for t in &batch {
            let target_q = if t.next_candidates.is_empty() {
                t.reward
            } else {
                let best = t
                    .next_candidates
                    .iter()
                    .map(|c| self.target.predict(c)[0])
                    .fold(f64::NEG_INFINITY, f64::max);
                t.reward + self.config.gamma * best
            };
            let cache = self.online.forward(&t.features);
            let err = cache.output()[0] - target_q;
            loss += err * err;
            self.online.backward(&cache, &[err]);
        }
        self.adam.step(&mut self.online, batch_size);
        self.steps += 1;
        if self
            .steps
            .is_multiple_of(self.config.target_sync_every.max(1))
        {
            self.target.copy_params_from(&self.online);
        }
        loss / batch_size as f64
    }

    /// The current online network's checkpoint text (what the next
    /// candidate emission would contain).
    pub fn policy_text(&self) -> String {
        mlp_to_text(&self.online)
    }

    /// Progress counters (queue totals come from the shed-counting queue).
    pub fn status(&self) -> TrainerStatus {
        TrainerStatus {
            epochs: self.epochs,
            steps: self.steps,
            offered: self.queue.accepted() + self.queue.shed(),
            accepted: self.queue.accepted(),
            shed: self.queue.shed(),
            replay_len: self.replay.len(),
            candidates: self.candidates,
        }
    }

    /// Serializes the full trainer state as line-oriented text:
    /// a `trainer` header (counters), the optimizer, both networks, the
    /// replay ring, and any still-queued transitions. Floats use `{:?}`,
    /// so restore is bit-exact.
    pub fn snapshot_text(&self) -> String {
        let mut out = format!(
            "trainer {} {} {} {} {}\n",
            self.epochs,
            self.steps,
            self.candidates,
            self.queue.accepted(),
            self.queue.shed()
        );
        out.push_str(&self.adam.to_text());
        out.push_str(&mlp_to_text(&self.online));
        out.push_str(&mlp_to_text(&self.target));
        out.push_str(&self.replay.to_text());
        let queued = self.queue.peek_all();
        let _ = writeln!(out, "tqueue {}", queued.len());
        for t in &queued {
            out.push_str(&pair_to_line(t));
            out.push('\n');
        }
        out
    }

    /// Rebuilds a trainer from [`Trainer::snapshot_text`] output under
    /// `config` (the config itself is not persisted — like every other
    /// serve component, topology and hyperparameters come from the caller
    /// and only *state* comes from the snapshot).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed record.
    pub fn restore(config: TrainerConfig, text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty trainer snapshot")?;
        let mut it = header.split_whitespace();
        if it.next() != Some("trainer") {
            return Err(format!("bad trainer header: {header:?}"));
        }
        let mut num = |what: &str| -> Result<u64, String> {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad trainer {what}"))
        };
        let epochs =
            u32::try_from(num("epochs")?).map_err(|_| "trainer epochs overflow".to_owned())?;
        let steps = num("steps")?;
        let candidates = num("candidates")?;
        let accepted = num("accepted")?;
        let shed = num("shed")?;
        if it.next().is_some() {
            return Err(format!("trailing fields in trainer header: {header:?}"));
        }
        let adam_line = lines.next().ok_or("trainer snapshot missing optimizer")?;
        let adam = Adam::from_text(adam_line)?;
        let online_line = lines.next().ok_or("trainer snapshot missing online net")?;
        let take_net =
            |header_line: &str, lines: &mut std::str::Lines<'_>| -> Result<Mlp, String> {
                let params = lines.next().ok_or("network text ends early")?;
                mlp_from_text(&format!("{header_line}\n{params}\n")).map_err(|e| e.to_string())
            };
        let online = take_net(online_line, &mut lines)?;
        let target_line = lines.next().ok_or("trainer snapshot missing target net")?;
        let target = take_net(target_line, &mut lines)?;
        let replay_header = lines.next().ok_or("trainer snapshot missing replay")?;
        let mut replay_text = format!("{replay_header}\n");
        let replay_len: usize = replay_header
            .split_whitespace()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .ok_or("bad replay header in trainer snapshot")?;
        for _ in 0..replay_len {
            let line = lines.next().ok_or("trainer replay ends early")?;
            replay_text.push_str(line);
            replay_text.push('\n');
        }
        let replay = PairReplay::from_text(&replay_text)?;
        let tqueue = lines.next().ok_or("trainer snapshot missing tqueue")?;
        let queued_len: usize = tqueue
            .strip_prefix("tqueue ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad tqueue line: {tqueue:?}"))?;
        let queue = BoundedQueue::new(config.queue_capacity.max(1), ShedPolicy::DropNewest);
        for _ in 0..queued_len {
            let line = lines.next().ok_or("trainer queue ends early")?;
            let t = pair_from_line(line).ok_or_else(|| format!("bad queued line: {line:?}"))?;
            let _ = queue.push(t);
        }
        queue.set_counters(accepted, shed);
        if lines.next().is_some() {
            return Err("trailing lines in trainer snapshot".to_owned());
        }
        if online.input_dim() != FEATURE_DIM || online.output_dim() != 1 {
            return Err("trainer online network has the wrong shape".to_owned());
        }
        Ok(Self {
            config,
            online,
            target,
            adam,
            replay,
            queue,
            epochs,
            steps,
            candidates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ClockTimeSource, SimClock};

    fn test_obs() -> (Arc<Registry>, TrainerObs) {
        let registry = Arc::new(Registry::new());
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        let time: Arc<dyn TimeSource> = Arc::new(ClockTimeSource(clock));
        let obs = TrainerObs::new(&registry, time);
        (registry, obs)
    }

    fn stream(seed: u64, n: usize) -> Vec<PairTransition> {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| PairTransition {
                features: (0..FEATURE_DIM).map(|_| rng.random::<f64>()).collect(),
                reward: rng.random::<f64>() * 10.0 - 2.0,
                next_candidates: (0..3)
                    .map(|_| (0..FEATURE_DIM).map(|_| rng.random::<f64>()).collect())
                    .collect(),
            })
            .collect()
    }

    fn small_config() -> TrainerConfig {
        TrainerConfig {
            min_replay: 8,
            batch_size: 4,
            steps_per_epoch: 2,
            candidate_every: 2,
            hidden: vec![8],
            seed: 5,
            ..TrainerConfig::default()
        }
    }

    #[test]
    fn learns_and_emits_candidates_on_cadence() {
        let (_r, obs) = test_obs();
        let mut t = Trainer::new(small_config());
        let initial = t.policy_text();
        let mut emitted = 0;
        for epoch in 0..6u64 {
            t.offer(stream(epoch, 4), &obs);
            if t.epoch_tick(&obs).is_some() {
                emitted += 1;
            }
        }
        assert!(t.status().steps > 0, "never learned");
        assert_eq!(emitted, 3, "cadence is every 2 epochs");
        assert_eq!(t.status().candidates, 3);
        assert_ne!(t.policy_text(), initial, "training never moved the net");
        assert_eq!(obs.steps.value(), t.status().steps);
        assert_eq!(
            obs.offered.value(),
            obs.accepted.value() + obs.shed.value(),
            "transition conservation"
        );
    }

    #[test]
    fn queue_sheds_when_full_and_conserves() {
        let (_r, obs) = test_obs();
        let config = TrainerConfig {
            queue_capacity: 3,
            ..small_config()
        };
        let t = Trainer::new(config);
        t.offer(stream(0, 10), &obs);
        let s = t.status();
        assert_eq!(s.offered, 10);
        assert_eq!(s.accepted, 3);
        assert_eq!(s.shed, 7);
        assert_eq!(s.offered, s.accepted + s.shed);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let (_r, obs) = test_obs();
        let mut a = Trainer::new(small_config());
        for epoch in 0..3u64 {
            a.offer(stream(epoch, 6), &obs);
            let _ = a.epoch_tick(&obs);
        }
        // Snapshot mid-stream — with transitions still queued.
        a.offer(stream(90, 3), &obs);
        let text = a.snapshot_text();
        let mut b = Trainer::restore(small_config(), &text).expect("restores");
        assert_eq!(b.snapshot_text(), text, "restore is lossless");
        for epoch in 3..6u64 {
            a.offer(stream(epoch, 6), &obs);
            b.offer(stream(epoch, 6), &obs);
            let ca = a.epoch_tick(&obs);
            let cb = b.epoch_tick(&obs);
            assert_eq!(ca, cb, "restored trainer diverged at epoch {epoch}");
        }
        assert_eq!(a.policy_text(), b.policy_text());
        assert_eq!(a.snapshot_text(), b.snapshot_text());
    }

    #[test]
    fn restore_rejects_malformed_records() {
        let t = Trainer::new(small_config());
        let text = t.snapshot_text();
        assert!(Trainer::restore(small_config(), "").is_err());
        assert!(Trainer::restore(small_config(), "notatrainer 0 0 0 0 0").is_err());
        let truncated: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(Trainer::restore(small_config(), &truncated).is_err());
        let trailing = format!("{text}junk\n");
        assert!(Trainer::restore(small_config(), &trailing).is_err());
    }

    #[test]
    fn same_seed_same_stream_is_byte_identical_and_seed_changes_it() {
        let (_r, obs) = test_obs();
        let run = |seed: u64| {
            let mut t = Trainer::new(TrainerConfig {
                seed,
                ..small_config()
            });
            for epoch in 0..4u64 {
                t.offer(stream(epoch, 6), &obs);
                let _ = t.epoch_tick(&obs);
            }
            t.policy_text()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
