//! The chaos harness: runs a full [`DispatchService`] under a seeded
//! fault schedule and checks the graceful-degradation invariants.
//!
//! Shared by the `tests/chaos.rs` suite in the workspace facade and the
//! `chaos` binary in `mobirescue-bench`, so a failing seed from a sweep
//! reproduces byte-for-byte as a test. Everything runs on a
//! [`SimClock`], so a run is a pure function of `(fault plan, options)`.
//!
//! Invariants checked after every run (violations are returned as
//! strings, one per broken invariant, rather than panicking — the caller
//! decides whether to assert or report):
//!
//! 1. **No epoch skipped silently** — the service completes exactly the
//!    requested number of epochs and every epoch yields one report per
//!    shard, faults or not.
//! 2. **Metrics conservation** — admitted + shed equals offered, minus
//!    events the injector dropped/corrupted/still holds in flight, plus
//!    duplicates; and everything admitted is either injected into a
//!    world, rejected by it, or still queued.
//! 3. **Degradation is honest** — `degraded_epochs` is positive iff a
//!    degrading fault (stall past the deadline, failed swap) actually
//!    fired, and never exceeds the number fired.
//! 4. **Crashes never outlive recovery** — every fired crash maps to
//!    exactly one shard restart.
//! 5. **Snapshot integrity** — the final snapshot restores to an equal
//!    service when written cleanly, and is *rejected with a typed error*
//!    when the injector corrupted the write.
//! 6. **Swap-failure attribution** — every injected registry failure is
//!    counted under its typed cause ([`crate::SwapError::Injected`]), and
//!    no build or rollout failure claims one.
//!
//! [`rollout_chaos_divergence`] adds the poisoned-checkpoint invariants:
//! an inadmissible or shadow-stage candidate never serves a primary
//! dispatch, every injected regression is caught with the registry still
//! pinned to the prior version, and a poisoned run ends bit-identical to
//! a twin that never saw the poison.
//!
//! [`trainer_chaos_divergence`] covers the online training loop
//! ([`crate::trainer`]): transition conservation under injected drops and
//! floods, stale-candidate floods never reaching a primary dispatch, and
//! a trainer that crashes at epoch boundaries recovering bit-identically
//! to an unfaulted twin.
//!
//! [`wal_chaos_divergence`] covers the durable ingest journal
//! ([`crate::wal`]): torn appends surface as typed refusals with the
//! conservation law `acked == dispatched + still_journaled` intact, fsync
//! stalls never perturb state, a process killed at *any byte offset* of
//! the journal recovers bit-identical to a twin that never crashed, and
//! an interior bit flip is a typed [`crate::WalError::Corrupt`] refusal
//! naming the segment and offset.

use crate::clock::{Clock, SimClock};
use crate::error::ServeError;
use crate::event::Event;
use crate::fault::{
    CheckpointPoison, FaultCounters, FaultInjector, FaultPlan, FaultPlanConfig, ScheduledFaults,
    TrainerFault, WalFault,
};
use crate::metrics::MetricsSnapshot;
use crate::registry::ModelRegistry;
use crate::rollout::{RolloutConfig, RolloutError};
use crate::scheduler::EpochScheduler;
use crate::service::{DispatchService, RetryPolicy, ServeConfig};
use crate::trainer::TrainerConfig;
use crate::wal::{FsyncPolicy, WalConfig, WalError};
use mobirescue_core::rl_dispatch::FEATURE_DIM;
use mobirescue_core::scenario::{Scenario, ScenarioConfig};
use mobirescue_obs::ObsSnapshot;
use mobirescue_rl::nn::Mlp;
use mobirescue_rl::persist::mlp_to_text;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::{RequestSpec, SimConfig};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The pinned seed set every chaos sweep and pinned test shares — the
/// chaos binary and the `tests/*_chaos.rs` suites iterate this one
/// constant, so a failing seed from a sweep reproduces as a test without
/// translation.
pub const CHAOS_SEEDS: [u64; 5] = [11, 23, 37, 41, 53];

/// What a chaos run should look like, beyond the fault plan itself.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Dispatch epochs to drive.
    pub epochs: u32,
    /// City shards to host.
    pub num_shards: usize,
    /// Request offers per shard per epoch.
    pub requests_per_epoch: usize,
    /// Request queue capacity (small enough to exercise shedding).
    pub queue_capacity: usize,
    /// Per-epoch dispatch compute budget, ms (keep it below the plan's
    /// stall so every stall trips the fallback).
    pub deadline_ms: u64,
    /// The fault schedule to execute.
    pub plan: FaultPlan,
}

impl ChaosOptions {
    /// The standard sweep configuration: the full fault mix drawn from
    /// `seed`, small queues, a deadline every stall overshoots.
    pub fn seeded(seed: u64, epochs: u32, num_shards: usize) -> Self {
        let cfg = FaultPlanConfig::chaos(epochs, num_shards);
        Self {
            epochs,
            num_shards,
            requests_per_epoch: 6,
            queue_capacity: 4,
            deadline_ms: 10,
            plan: FaultPlan::generate(seed, &cfg),
        }
    }
}

/// Everything a chaos run produced, for reporting and assertions.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The seed the run was labeled with.
    pub seed: u64,
    /// What the plan had scheduled.
    pub scheduled: ScheduledFaults,
    /// What actually fired.
    pub counters: FaultCounters,
    /// Final service metrics.
    pub metrics: MetricsSnapshot,
    /// Shard workers restarted from a checkpoint.
    pub restarts: u64,
    /// Scheduler epochs that finished past their deadline.
    pub overruns: u64,
    /// The service's observability registry at the end of the run
    /// (per-phase epoch histograms, `serve.*` counters, routing gauges).
    /// Diagnostic output only — never part of any invariant: each run
    /// owns a private registry, so twins stay comparable.
    pub obs: ObsSnapshot,
    /// Broken invariants (empty on a clean run).
    pub violations: Vec<String>,
}

impl ChaosOutcome {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// A one-line report for sweep output.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "seed {:>4}: epochs {} degraded {} | fired: drop {} delay {}({} released) dup {} \
             corrupt {} stall {} crash {} swapfail {} snapcorrupt {} poison {} | restarts {} \
             retries {} shed {} -> {}",
            self.seed,
            self.metrics.epochs_completed,
            self.metrics.degraded_epochs,
            self.counters.drops,
            self.counters.delays,
            self.counters.delays_released,
            self.counters.duplicates,
            self.counters.corrupts,
            self.counters.stalls,
            self.counters.crashes,
            self.counters.swap_fails,
            self.counters.snapshot_corruptions,
            self.counters.poisoned_checkpoints,
            self.restarts,
            self.metrics.ingest_retries,
            self.metrics.requests_shed,
            if self.ok() { "OK" } else { "FAIL" },
        );
        for v in &self.violations {
            let _ = write!(line, "\n  violation: {v}");
        }
        line
    }
}

/// The standard small two-shard scenario every serve test runs on.
pub fn chaos_scenario() -> Scenario {
    ScenarioConfig::small().florence().build(11)
}

fn request_events(epoch: u32, num_shards: usize, per_shard: usize, segments: u32) -> Vec<Event> {
    let mut events = Vec::with_capacity(num_shards * per_shard);
    for shard in 0..num_shards {
        for i in 0..per_shard {
            let mix = epoch as usize * 53 + i * 17 + shard * 29;
            events.push(Event::Request {
                shard,
                spec: RequestSpec {
                    appear_s: epoch * 300 + (i as u32 * 37) % 300,
                    segment: SegmentId((mix as u32) % segments),
                },
            });
        }
    }
    events
}

/// Runs the full service under `opts` and checks every invariant.
///
/// # Errors
///
/// Returns the first *unexpected* service error — errors the plan itself
/// provokes (corrupt events rejected at ingestion, corrupted snapshots
/// rejected at restore) are part of the contract and checked, not
/// propagated.
pub fn run_chaos(seed: u64, opts: &ChaosOptions) -> Result<ChaosOutcome, ServeError> {
    let scenario = Arc::new(chaos_scenario());
    let injector = Arc::new(FaultInjector::new(opts.plan.clone()));
    let scheduled = injector.scheduled();
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = opts.num_shards;
    config.request_queue_capacity = opts.queue_capacity;
    config.faults = Some(Arc::clone(&injector));
    config.epoch_deadline_ms = Some(opts.deadline_ms);
    config.auto_recover = true;
    let clock: Arc<SimClock> = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let service = DispatchService::start(
        Arc::clone(&scenario),
        config,
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::clone(&registry),
    )?;
    let segments = scenario.city.network.num_segments() as u32;
    let retry = RetryPolicy::default();
    let mut violations = Vec::new();

    // Offers are counted locally too, so the injector's bookkeeping is
    // cross-checked against an independent tally.
    let mut offered = 0u64;
    let mut rejected_corrupt = 0u64;
    let mut ingest = |service: &DispatchService, epoch: u32| {
        for event in request_events(epoch, opts.num_shards, opts.requests_per_epoch, segments) {
            offered += 1;
            match service.ingest_with_retry(event, &retry) {
                Ok(_) => {}
                Err(ServeError::World(_)) => rejected_corrupt += 1,
                Err(e) => violations.push(format!("unexpected ingest error: {e}")),
            }
        }
        // A couple of advisories per epoch keep the advisory path hot
        // (one valid, one invalid — both bypass fault injection).
        let _ = service.ingest(Event::Weather {
            shard: epoch as usize % opts.num_shards,
            hour: epoch % 4,
            rain_mm: 1.5 + f64::from(epoch),
        });
        let _ = service.ingest(Event::RoadDamage {
            shard: 0,
            segment: SegmentId(u32::MAX),
            hour: 0,
            flooded: true,
        });
    };

    let mut scheduler = EpochScheduler::for_service(&service)?;
    let mut short_epochs = Vec::new();
    ingest(&service, 0);
    scheduler.run(&service, clock.as_ref(), opts.epochs, |e, reports| {
        if reports.len() != opts.num_shards {
            short_epochs.push(format!(
                "epoch {e} produced {} reports for {} shards",
                reports.len(),
                opts.num_shards
            ));
        }
        if e == opts.epochs / 2 {
            // Exercise the hot-swap path mid-run with a valid policy —
            // through the guarded rollout pipeline, like a deployment
            // would. With the pipeline's default gates the candidate is
            // usually still in flight at the end of the run, which drags
            // the rollout state through the snapshot-integrity check.
            let policy = mlp_to_text(&Mlp::new(&[FEATURE_DIM, 8, 1], 5));
            match service.submit_rollout(None, Some(&policy)) {
                Ok(_) => {}
                // A scheduled checkpoint poison replaced the candidate in
                // flight; the typed admission rejection *is* the contract.
                Err(ServeError::Rollout(_)) if scheduled.poisoned_checkpoints > 0 => {}
                Err(e) => short_epochs.push(format!("guarded rollout submission failed: {e}")),
            }
        }
        if e + 1 < opts.epochs {
            ingest(&service, e + 1);
        }
    })?;
    violations.extend(short_epochs);

    let metrics = service.metrics();
    let counters = injector.counters();
    let restarts = service.shard_restarts();

    // Invariant 1: no epoch skipped silently.
    if metrics.epochs_completed != opts.epochs {
        violations.push(format!(
            "completed {} epochs, expected {}",
            metrics.epochs_completed, opts.epochs
        ));
    }
    for (i, s) in metrics.shards.iter().enumerate() {
        if s.epochs != opts.epochs {
            violations.push(format!(
                "shard {i} at epoch {}, expected {}",
                s.epochs, opts.epochs
            ));
        }
    }

    // Invariant 2: conservation. Every offer the injector saw either
    // produced queue pushes (admitted or shed) or is accounted for as
    // dropped, corrupted, or delayed-in-flight; duplicates and released
    // delays add pushes.
    // Every retry re-offers through the injector, so the injector's offer
    // count is the harness's events plus the service's retry count.
    if counters.offers != offered + metrics.ingest_retries {
        violations.push(format!(
            "injector saw {} offers, harness made {} (+{} retries)",
            counters.offers, offered, metrics.ingest_retries
        ));
    }
    if rejected_corrupt != counters.corrupts {
        violations.push(format!(
            "{} typed corrupt rejections for {} corrupt faults",
            rejected_corrupt, counters.corrupts
        ));
    }
    let pushes_expected = counters.offers - counters.drops - counters.corrupts - counters.delays
        + counters.duplicates
        + counters.delays_released;
    let pushes = metrics.requests_accepted + metrics.requests_shed;
    if pushes != pushes_expected {
        violations.push(format!(
            "accepted {} + shed {} = {pushes}, conservation expects {pushes_expected}",
            metrics.requests_accepted, metrics.requests_shed
        ));
    }
    let consumed: u64 = metrics
        .shards
        .iter()
        .map(|s| s.injected + s.rejected + s.queue_depth as u64)
        .sum();
    if metrics.requests_accepted != consumed {
        violations.push(format!(
            "accepted {} but shards account for {consumed} (injected + rejected + queued)",
            metrics.requests_accepted
        ));
    }

    // Invariant 3: degradation is honest.
    let degrading = counters.degrading();
    if (metrics.degraded_epochs > 0) != (degrading > 0) {
        violations.push(format!(
            "degraded_epochs {} with {degrading} degrading faults fired",
            metrics.degraded_epochs
        ));
    }
    if metrics.degraded_epochs > degrading {
        violations.push(format!(
            "degraded_epochs {} exceeds degrading faults fired {degrading}",
            metrics.degraded_epochs
        ));
    }
    let shard_degraded: u64 = metrics.shards.iter().map(|s| s.degraded).sum();
    if shard_degraded != degrading {
        violations.push(format!(
            "shards report {shard_degraded} degraded epochs, {degrading} degrading faults fired"
        ));
    }

    // Invariant 4: every crash was recovered, nothing else restarted.
    if restarts != counters.crashes {
        violations.push(format!(
            "{restarts} restarts for {} crashes",
            counters.crashes
        ));
    }

    // Invariant 6: swap-failure attribution. Every injected registry
    // failure is counted under its typed cause, and neither a bundle
    // build nor a rollout candidate failed in a run that schedules only
    // healthy checkpoints.
    if metrics.swap_failures_injected != counters.swap_fails
        || metrics.swap_failures_build != 0
        || metrics.swap_failures_rollout != 0
    {
        violations.push(format!(
            "swap failures attributed {}i/{}b/{}r, injector fired {}",
            metrics.swap_failures_injected,
            metrics.swap_failures_build,
            metrics.swap_failures_rollout,
            counters.swap_fails
        ));
    }

    // Invariant 5: snapshot integrity. A clean write restores to an equal
    // service; a corrupted write is rejected with a typed error.
    let snapshot = service.snapshot()?;
    let wrote_corrupted = injector.counters().snapshot_corruptions > counters.snapshot_corruptions;
    let restored = DispatchService::restore(
        Arc::clone(&scenario),
        service.config().clone(),
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        Arc::clone(&registry),
        &snapshot,
    );
    match restored {
        Ok(restored) => {
            if wrote_corrupted {
                violations.push("corrupted snapshot restored without error".to_owned());
            } else if restored.metrics() != metrics {
                violations.push("restored metrics differ from the live service".to_owned());
            }
            restored.shutdown();
        }
        Err(ServeError::BadSnapshot(_)) if wrote_corrupted => {}
        Err(e) => violations.push(format!("snapshot restore failed unexpectedly: {e}")),
    }

    let counters = injector.counters();
    let overruns = scheduler.overruns();
    let obs = service.obs_snapshot();
    service.shutdown();
    Ok(ChaosOutcome {
        seed,
        scheduled,
        counters,
        metrics,
        restarts,
        overruns,
        obs,
        violations,
    })
}

/// The replay-masking check: a service whose shards crash (and recover
/// from checkpoints) must end **bit-identical** — snapshot text equality —
/// to an unfaulted twin fed the same event stream, because each crash's
/// faults are consumed when they fire and the replayed epoch runs clean.
///
/// Returns the list of divergences (empty when the runs converged).
///
/// # Errors
///
/// Returns the first service error from either run.
pub fn crash_replay_divergence(
    crashes: &[(u32, usize)],
    epochs: u32,
    num_shards: usize,
) -> Result<Vec<String>, ServeError> {
    let scenario = Arc::new(chaos_scenario());
    let mut plan = FaultPlan::empty();
    for &(epoch, shard) in crashes {
        plan = plan.with_crash(epoch, shard);
    }
    let injector = Arc::new(FaultInjector::new(plan));
    let run =
        |faults: Option<Arc<FaultInjector>>| -> Result<(String, MetricsSnapshot, u64), ServeError> {
            let mut config = ServeConfig::new(SimConfig::small(6));
            config.num_shards = num_shards;
            config.request_queue_capacity = 8;
            config.epoch_deadline_ms = Some(10);
            config.auto_recover = faults.is_some();
            config.faults = faults;
            let clock: Arc<SimClock> = Arc::new(SimClock::new());
            let registry = Arc::new(ModelRegistry::new(None, None));
            let service = DispatchService::start(
                Arc::clone(&scenario),
                config,
                Arc::clone(&clock) as Arc<dyn Clock>,
                registry,
            )?;
            let segments = scenario.city.network.num_segments() as u32;
            let mut scheduler = EpochScheduler::for_service(&service)?;
            for event in request_events(0, num_shards, 4, segments) {
                service.ingest(event)?;
            }
            scheduler.run(&service, clock.as_ref(), epochs, |e, _| {
                if e + 1 < epochs {
                    for event in request_events(e + 1, num_shards, 4, segments) {
                        let _ = service.ingest(event);
                    }
                }
            })?;
            let snapshot = service.snapshot()?;
            let metrics = service.metrics();
            let restarts = service.shard_restarts();
            service.shutdown();
            Ok((snapshot, metrics, restarts))
        };
    let (faulted_snap, faulted_metrics, restarts) = run(Some(Arc::clone(&injector)))?;
    let (clean_snap, clean_metrics, _) = run(None)?;
    let mut divergences = Vec::new();
    let crashes_fired = injector.counters().crashes;
    if crashes_fired != crashes.len() as u64 {
        divergences.push(format!(
            "{crashes_fired} crashes fired, {} scheduled",
            crashes.len()
        ));
    }
    if restarts != crashes_fired {
        divergences.push(format!("{restarts} restarts for {crashes_fired} crashes"));
    }
    if faulted_metrics != clean_metrics {
        divergences
            .push("metrics diverged between crashed+recovered and unfaulted runs".to_owned());
    }
    if faulted_snap != clean_snap {
        let at = faulted_snap
            .bytes()
            .zip(clean_snap.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| faulted_snap.len().min(clean_snap.len()));
        divergences.push(format!(
            "snapshot texts diverge at byte {at} (faulted {} bytes, clean {} bytes)",
            faulted_snap.len(),
            clean_snap.len()
        ));
    }
    Ok(divergences)
}

/// What a poisoned-checkpoint chaos run should look like.
#[derive(Debug, Clone)]
pub struct RolloutChaosOptions {
    /// Dispatch epochs to drive (leave room after `good_at` for the good
    /// candidate's full shadow → canary → watch pipeline).
    pub epochs: u32,
    /// City shards to host.
    pub num_shards: usize,
    /// Request offers per shard per epoch.
    pub requests_per_epoch: usize,
    /// Poisoned checkpoints delivered (one per submission) before the good
    /// candidate. Structural poisons must be rejected at admission; a
    /// reward-tanking poison must be admitted and then killed by the
    /// shadow gate.
    pub poisons: Vec<CheckpointPoison>,
    /// Epoch after which the genuine candidate is submitted (every poison
    /// must have been consumed and resolved by then).
    pub good_at: u32,
}

impl RolloutChaosOptions {
    /// The standard sweep configuration: one poison of each kind, then a
    /// good candidate with enough epochs left to fully promote.
    pub fn standard(num_shards: usize) -> Self {
        Self {
            epochs: 18,
            num_shards,
            // Light enough that free teams exist at every dispatch tick:
            // the shadow gate can only separate a reward tank from the
            // incumbent when there is work a free team *could* take.
            requests_per_epoch: 3,
            poisons: vec![
                CheckpointPoison::NanWeights,
                CheckpointPoison::WrongDims,
                CheckpointPoison::RewardTank,
            ],
            good_at: 8,
        }
    }
}

/// The poisoned-checkpoint invariants, checked as a twin experiment:
///
/// * an **inadmissible** candidate (NaN weights, wrong dims) is rejected
///   with a typed error and never reaches the registry;
/// * an admitted but **reward-tanking** candidate never serves a primary
///   dispatch (it dies in shadow), and its rejection leaves the registry
///   pinned to the *exact* prior bundle (`Arc` identity);
/// * a run that saw every poison ends **bit-identical** — snapshot text
///   and metrics — to a twin run that never saw any poison, because every
///   guard fired before dispatch could be affected.
///
/// The incumbent starts from the same weights the good candidate carries,
/// so the good candidate's shadow replay ties the incumbent exactly and
/// passes the gate deterministically, while the reward tank — which
/// refuses every dispatch — falls strictly short.
///
/// Returns the list of divergences/violations (empty on a clean run).
///
/// # Errors
///
/// Returns the first *unexpected* service error from either run (typed
/// admission rejections are the contract, not errors).
pub fn rollout_chaos_divergence(
    seed: u64,
    opts: &RolloutChaosOptions,
) -> Result<Vec<String>, ServeError> {
    let scenario = Arc::new(chaos_scenario());
    // The incumbent (and the good candidate, which carries the same
    // weights) must be a *competent* dispatcher, not a random init: the
    // shadow gate can only separate a reward tank from the incumbent if
    // the incumbent reliably out-picks a policy that recalls every team.
    // Hand-set weights score candidate zones by live requests and
    // remaining demand, penalise distance, and pin the standby feature
    // strongly negative; the seed contributes a small perturbation on
    // top so the sweep still covers distinct policies.
    let mut good_net = Mlp::new(&[FEATURE_DIM, 1], seed ^ 0x600d);
    let base = [-2.0, 1.0, 3.0, 0.0, 0.0, -1_000.0, 0.0];
    good_net.visit_params_mut(|i, w, _| {
        *w = base[i] + 0.05 * *w;
    });
    let good_text = mlp_to_text(&good_net);
    let segments = scenario.city.network.num_segments() as u32;
    // Canary and watch slacks are wide open: in this harness those stages
    // only need to *pass* for the good candidate (the tank must die in
    // shadow, and the dedicated watch tests cover post-promotion
    // regression); the shadow gate is the one under test.
    let rollout_cfg = RolloutConfig {
        shadow_epochs: 4,
        shadow_slack: 0.0,
        canary_epochs: 2,
        canary_shards: 1,
        canary_slack: 1e9,
        watch_epochs: 2,
        watch_slack: 1e9,
        probe_bound: 1e6,
    };
    struct RunEnd {
        snapshot: String,
        metrics: MetricsSnapshot,
        swaps: u64,
        rollbacks: u64,
        final_version: u64,
        violations: Vec<String>,
    }
    let run = |poisons: &[CheckpointPoison]| -> Result<RunEnd, ServeError> {
        let mut plan = FaultPlan::empty();
        for &kind in poisons {
            plan = plan.with_poisoned_checkpoint(kind);
        }
        let injector = Arc::new(FaultInjector::new(plan));
        let mut config = ServeConfig::new(SimConfig::small(6));
        config.num_shards = opts.num_shards;
        config.request_queue_capacity = 8;
        config.faults = Some(Arc::clone(&injector));
        config.rollout = rollout_cfg.clone();
        let clock: Arc<SimClock> = Arc::new(SimClock::new());
        let registry = Arc::new(ModelRegistry::new(None, Some(good_net.clone())));
        let v1 = registry.current();
        let service = DispatchService::start(
            Arc::clone(&scenario),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&registry),
        )?;
        let mut violations = Vec::new();
        let mut pending: VecDeque<CheckpointPoison> = poisons.iter().copied().collect();
        let mut scheduler = EpochScheduler::for_service(&service)?;
        for event in request_events(0, opts.num_shards, opts.requests_per_epoch, segments) {
            service.ingest(event)?;
        }
        scheduler.run(&service, clock.as_ref(), opts.epochs, |e, _| {
            // One submission at a time: poisoned deliveries first, the
            // genuine candidate at `good_at`. Every submission sends the
            // *good* text — the injector swaps the poison in transit.
            if e < opts.good_at && service.rollout_status().is_none() {
                if let Some(kind) = pending.pop_front() {
                    let outcome = service.submit_rollout(None, Some(&good_text));
                    match (kind, outcome) {
                        (CheckpointPoison::RewardTank, Ok(_)) => {}
                        (
                            CheckpointPoison::NanWeights | CheckpointPoison::WrongDims,
                            Err(ServeError::Rollout(RolloutError::Probe { .. })),
                        ) => {}
                        (kind, outcome) => violations.push(format!(
                            "epoch {e}: poisoned submission ({kind:?}) resolved as {outcome:?}"
                        )),
                    }
                }
            } else if e == opts.good_at {
                if let Err(err) = service.submit_rollout(None, Some(&good_text)) {
                    violations.push(format!("epoch {e}: good candidate rejected: {err}"));
                }
            }
            // While poisons are being delivered and screened, nothing may
            // serve but the exact original bundle: the registry still
            // holds the v1 Arc and every shard dispatches at version 1.
            if e < opts.good_at {
                if !Arc::ptr_eq(&registry.current(), &v1) {
                    violations.push(format!("epoch {e}: registry moved off the v1 bundle"));
                }
                for (i, s) in service.metrics().shards.iter().enumerate() {
                    if s.model_version != 1 {
                        violations.push(format!(
                            "epoch {e}: shard {i} served model v{} during poison screening",
                            s.model_version
                        ));
                    }
                }
            }
            if e + 1 < opts.epochs {
                for event in
                    request_events(e + 1, opts.num_shards, opts.requests_per_epoch, segments)
                {
                    let _ = service.ingest(event);
                }
            }
        })?;
        if !pending.is_empty() {
            violations.push(format!(
                "{} poisons never submitted (good_at too early)",
                pending.len()
            ));
        }
        let tanks = poisons
            .iter()
            .filter(|p| matches!(p, CheckpointPoison::RewardTank))
            .count() as u64;
        let structural = poisons.len() as u64 - tanks;
        let counters = service.rollout_counters();
        if counters.rejected != structural {
            violations.push(format!(
                "{} admission rejections for {structural} structural poisons",
                counters.rejected
            ));
        }
        if counters.admitted != tanks + 1 {
            violations.push(format!(
                "{} admissions for {tanks} reward tanks plus the good candidate",
                counters.admitted
            ));
        }
        if counters.rolled_back != tanks {
            violations.push(format!(
                "{} rollbacks for {tanks} reward tanks",
                counters.rolled_back
            ));
        }
        if injector.counters().poisoned_checkpoints != poisons.len() as u64 {
            violations.push(format!(
                "{} poisons fired, {} scheduled",
                injector.counters().poisoned_checkpoints,
                poisons.len()
            ));
        }
        if service.rollout_status().is_some() {
            violations.push("rollout still in flight at end of run".to_owned());
        }
        let snapshot = service.snapshot()?;
        let metrics = service.metrics();
        let end = RunEnd {
            snapshot,
            metrics,
            swaps: registry.swaps(),
            rollbacks: registry.rollbacks(),
            final_version: registry.current().version,
            violations,
        };
        service.shutdown();
        Ok(end)
    };
    let mut faulted = run(&opts.poisons)?;
    let clean = run(&[])?;
    let mut divergences = std::mem::take(&mut faulted.violations);
    for v in &clean.violations {
        divergences.push(format!("clean twin: {v}"));
    }
    // The good candidate promoted exactly once in both runs; no poison
    // ever made it far enough to need a registry-level rollback.
    for (name, end) in [("faulted", &faulted), ("clean", &clean)] {
        if end.swaps != 1 || end.rollbacks != 0 || end.final_version != 2 {
            divergences.push(format!(
                "{name} run ended at v{} with {} swaps, {} rollbacks (expected v2, 1, 0)",
                end.final_version, end.swaps, end.rollbacks
            ));
        }
    }
    if faulted.metrics != clean.metrics {
        divergences.push("metrics diverged between poisoned and clean runs".to_owned());
    }
    if faulted.snapshot != clean.snapshot {
        let at = faulted
            .snapshot
            .bytes()
            .zip(clean.snapshot.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| faulted.snapshot.len().min(clean.snapshot.len()));
        divergences.push(format!(
            "snapshot texts diverge at byte {at} (poisoned {} bytes, clean {} bytes)",
            faulted.snapshot.len(),
            clean.snapshot.len()
        ));
    }
    Ok(divergences)
}

/// What a trainer chaos run should look like.
#[derive(Debug, Clone)]
pub struct TrainerChaosOptions {
    /// Dispatch epochs to drive.
    pub epochs: u32,
    /// City shards to host.
    pub num_shards: usize,
    /// Request offers per shard per epoch. Keep it light enough that free
    /// teams exist at every tick — the shadow gate can only separate a
    /// stale reward tank from the incumbent when there is work a free
    /// team *could* take.
    pub requests_per_epoch: usize,
}

impl TrainerChaosOptions {
    /// The standard sweep configuration.
    pub fn standard(num_shards: usize) -> Self {
        Self {
            epochs: 14,
            num_shards,
            requests_per_epoch: 3,
        }
    }
}

/// The online-training-loop invariants, checked as two arms:
///
/// **Arm A (floods + transition drops, no crashes):**
/// * **Transition conservation** — `train.transitions_offered` equals
///   accepted + shed even while injected drops destroy tapped transitions
///   upstream (a dropped transition is never *offered*), and the trainer's
///   own counters agree with the registry's.
/// * **No unguarded serve** — candidate emission is disabled, so every
///   rollout submission in the run is an injected stale, reward-tanking
///   candidate; the gates must keep the registry at v1, zero swaps, and
///   every shard serving v1 at every epoch.
/// * The trainer keeps learning through the faults.
///
/// **Arm B (boundary crashes):** a run whose trainer crashes at epoch
/// boundaries (respawning from its per-boundary checkpoint) must end
/// **bit-identical** — service snapshot text, metrics, trainer status and
/// policy checkpoint — to an unfaulted twin fed the same event stream.
///
/// Returns the list of violations/divergences (empty on a clean run).
///
/// # Errors
///
/// Returns the first service error from any run.
pub fn trainer_chaos_divergence(
    seed: u64,
    opts: &TrainerChaosOptions,
) -> Result<Vec<String>, ServeError> {
    let scenario = Arc::new(chaos_scenario());
    let segments = scenario.city.network.num_segments() as u32;
    // Competent incumbent (same construction as the rollout harness): the
    // shadow gate can only kill a reward-tanking flood candidate when the
    // incumbent reliably out-picks it.
    let mut incumbent = Mlp::new(&[FEATURE_DIM, 1], seed ^ 0x600d);
    let base = [-2.0, 1.0, 3.0, 0.0, 0.0, -1_000.0, 0.0];
    incumbent.visit_params_mut(|i, w, _| {
        *w = base[i] + 0.05 * *w;
    });
    let rollout_cfg = RolloutConfig {
        shadow_epochs: 4,
        shadow_slack: 0.0,
        canary_epochs: 2,
        canary_shards: 1,
        canary_slack: 1e9,
        watch_epochs: 2,
        watch_slack: 1e9,
        probe_bound: 1e6,
    };
    let trainer_cfg = |candidate_every: u32| TrainerConfig {
        min_replay: 8,
        batch_size: 4,
        steps_per_epoch: 2,
        candidate_every,
        hidden: vec![8],
        seed,
        ..TrainerConfig::default()
    };
    struct RunEnd {
        snapshot: String,
        metrics: MetricsSnapshot,
        status: crate::trainer::TrainerStatus,
        policy_text: String,
        swaps: u64,
        final_version: u64,
        fired: FaultCounters,
        offered: u64,
        accepted: u64,
        shed: u64,
        submitted: u64,
        admitted: u64,
        rejected: u64,
        violations: Vec<String>,
    }
    let run =
        |plan: FaultPlan, candidate_every: u32, check_pinned: bool| -> Result<RunEnd, ServeError> {
            let injector = Arc::new(FaultInjector::new(plan));
            let mut config = ServeConfig::new(SimConfig::small(6));
            config.num_shards = opts.num_shards;
            config.request_queue_capacity = 8;
            config.rollout = rollout_cfg.clone();
            config.trainer = Some(trainer_cfg(candidate_every));
            config.faults = Some(Arc::clone(&injector));
            let clock: Arc<SimClock> = Arc::new(SimClock::new());
            let registry = Arc::new(ModelRegistry::new(None, Some(incumbent.clone())));
            let service = DispatchService::start(
                Arc::clone(&scenario),
                config,
                Arc::clone(&clock) as Arc<dyn Clock>,
                Arc::clone(&registry),
            )?;
            let mut violations = Vec::new();
            let mut scheduler = EpochScheduler::for_service(&service)?;
            for event in request_events(0, opts.num_shards, opts.requests_per_epoch, segments) {
                service.ingest(event)?;
            }
            scheduler.run(&service, clock.as_ref(), opts.epochs, |e, _| {
                if check_pinned {
                    // With emission disabled, every submission this run ever
                    // makes is an injected stale candidate — primary dispatch
                    // must stay pinned to v1 on every shard at every epoch.
                    for (i, s) in service.metrics().shards.iter().enumerate() {
                        if s.model_version != 1 {
                            violations.push(format!(
                            "epoch {e}: shard {i} served model v{} under a stale-candidate flood",
                            s.model_version
                        ));
                        }
                    }
                }
                if e + 1 < opts.epochs {
                    for event in
                        request_events(e + 1, opts.num_shards, opts.requests_per_epoch, segments)
                    {
                        let _ = service.ingest(event);
                    }
                }
            })?;
            let o = service.obs();
            let end = RunEnd {
                snapshot: service.snapshot()?,
                metrics: service.metrics(),
                status: service.trainer_status().expect("trainer configured"),
                policy_text: service.trainer_policy_text().expect("trainer configured"),
                swaps: registry.swaps(),
                final_version: registry.current().version,
                fired: injector.counters(),
                offered: o.counter("train.transitions_offered").value(),
                accepted: o.counter("train.transitions_accepted").value(),
                shed: o.counter("train.transitions_shed").value(),
                submitted: o.counter("train.candidates_submitted").value(),
                admitted: o.counter("train.candidates_admitted").value(),
                rejected: o.counter("train.candidates_rejected").value(),
                violations,
            };
            service.shutdown();
            Ok(end)
        };

    // Arm A: seeded floods and transition drops, with one of each forced
    // so every seed exercises both kinds.
    let flood_drop_cfg = FaultPlanConfig {
        trainer_horizon: opts.epochs,
        p_trainer_flood: 0.20,
        p_trainer_drop: 0.25,
        trainer_flood_len: 2,
        ..FaultPlanConfig::quiet(opts.epochs, opts.num_shards)
    };
    let plan_a = FaultPlan::generate(seed, &flood_drop_cfg)
        .with_trainer_fault(2, TrainerFault::StaleCandidateFlood(2))
        .with_trainer_fault(3, TrainerFault::TransitionDrop);
    let a = run(plan_a, 0, true)?;
    let mut divergences = a.violations;
    if a.fired.trainer_floods == 0 || a.fired.trainer_drops == 0 {
        divergences.push(format!(
            "arm A fired {} floods / {} drops, expected at least one of each",
            a.fired.trainer_floods, a.fired.trainer_drops
        ));
    }
    if a.offered != a.accepted + a.shed {
        divergences.push(format!(
            "transition conservation broken: offered {} != accepted {} + shed {}",
            a.offered, a.accepted, a.shed
        ));
    }
    if a.accepted != a.status.accepted || a.shed != a.status.shed || a.offered != a.status.offered {
        divergences.push(format!(
            "registry counters ({}/{}/{}) disagree with trainer status ({}/{}/{})",
            a.offered, a.accepted, a.shed, a.status.offered, a.status.accepted, a.status.shed
        ));
    }
    if a.offered == 0 {
        divergences.push("no transitions ever offered — the tap is dead".to_owned());
    }
    if a.status.steps == 0 {
        divergences.push("trainer never learned under flood/drop faults".to_owned());
    }
    if a.submitted == 0 || a.submitted != a.admitted + a.rejected {
        divergences.push(format!(
            "candidate accounting broken: submitted {} admitted {} rejected {}",
            a.submitted, a.admitted, a.rejected
        ));
    }
    if a.swaps != 0 || a.final_version != 1 {
        divergences.push(format!(
            "stale-candidate flood reached the registry: v{} after {} swaps",
            a.final_version, a.swaps
        ));
    }

    // Arm B: seeded boundary crashes (one forced) against an unfaulted
    // twin — recovery must be bit-identical.
    let crash_cfg = FaultPlanConfig {
        trainer_horizon: opts.epochs,
        p_trainer_crash: 0.20,
        ..FaultPlanConfig::quiet(opts.epochs, opts.num_shards)
    };
    let plan_b = FaultPlan::generate(seed, &crash_cfg).with_trainer_fault(1, TrainerFault::Crash);
    let faulted = run(plan_b, 5, false)?;
    let clean = run(FaultPlan::empty(), 5, false)?;
    for v in clean.violations {
        divergences.push(format!("clean twin: {v}"));
    }
    if faulted.fired.trainer_crashes == 0 {
        divergences.push("arm B fired no trainer crashes".to_owned());
    }
    if faulted.status != clean.status {
        divergences.push(format!(
            "trainer status diverged after crash recovery: {:?} vs {:?}",
            faulted.status, clean.status
        ));
    }
    if faulted.policy_text != clean.policy_text {
        divergences.push("trainer policy checkpoint diverged after crash recovery".to_owned());
    }
    if faulted.metrics != clean.metrics {
        divergences.push("metrics diverged between crashed and unfaulted trainer runs".to_owned());
    }
    if faulted.snapshot != clean.snapshot {
        let at = faulted
            .snapshot
            .bytes()
            .zip(clean.snapshot.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| faulted.snapshot.len().min(clean.snapshot.len()));
        divergences.push(format!(
            "snapshot texts diverge at byte {at} (crashed {} bytes, clean {} bytes)",
            faulted.snapshot.len(),
            clean.snapshot.len()
        ));
    }
    Ok(divergences)
}

/// What a WAL chaos run should look like.
#[derive(Debug, Clone)]
pub struct WalChaosOptions {
    /// Dispatch epochs to drive (the crash arm snapshots at the halfway
    /// boundary, so keep this even and at least 2).
    pub epochs: u32,
    /// City shards to host.
    pub num_shards: usize,
    /// Request offers per shard per epoch.
    pub requests_per_epoch: usize,
    /// Seeded interior byte offsets the crash arm kills at, on top of the
    /// two endpoints (right after the boundary snapshot, and after every
    /// post-snapshot offer was journaled).
    pub interior_crash_points: usize,
}

impl WalChaosOptions {
    /// The standard sweep configuration.
    pub fn standard(num_shards: usize) -> Self {
        Self {
            epochs: 8,
            num_shards,
            requests_per_epoch: 4,
            interior_crash_points: 3,
        }
    }
}

fn wal_chaos_dir(seed: u64, arm: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mobirescue-walchaos-{}-{seed}-{arm}",
        std::process::id()
    ))
}

fn fresh_dir(dir: &Path) {
    let _ = fs::remove_dir_all(dir);
}

fn wal_serve_config(
    opts: &WalChaosOptions,
    dir: &Path,
    faults: Option<Arc<FaultInjector>>,
) -> ServeConfig {
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = opts.num_shards;
    config.request_queue_capacity = 8;
    config.faults = faults;
    let mut wal = WalConfig::new(dir);
    // One segment keeps the crash arm's byte-offset arithmetic over a
    // single file; rotation/compaction have their own unit coverage.
    wal.segment_max_bytes = 1 << 20;
    wal.fsync = FsyncPolicy::Always;
    config.wal = Some(wal);
    config
}

/// The one journal segment a [`wal_serve_config`] run produced.
fn only_segment(dir: &Path) -> Result<PathBuf, String> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("journal dir unreadable: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    match segs.len() {
        1 => Ok(segs.remove(0)),
        n => Err(format!("expected one journal segment, found {n}")),
    }
}

/// The durable-ingest-journal invariants, checked as four arms:
///
/// **Arm A (seeded torn appends + fsync stalls):**
/// * every injected torn append surfaces as a typed
///   [`ServeError::Wal`]([`WalError::TornTail`]) refusal at ingestion —
///   the request was never made durable, so it is never acked;
/// * **conservation** — every acked (admitted) request is dispatched
///   (injected into a world), rejected by it, or still journaled in a
///   queue: `acked == dispatched + still_journaled`;
/// * the journal stays parseable through every injected tear (the tail
///   self-heals exactly as recovery would truncate it), so the final
///   snapshot restores over the same journal directory to an equal
///   service.
///
/// **Arm A2 (stall-only twin):** a run whose appends stall on fsync ends
/// **bit-identical** — snapshot text and metrics — to a twin that never
/// stalled: durability latency must never leak into state.
///
/// **Arm B (kill -9 at any byte):** a reference run snapshots at the
/// halfway boundary, journals one more epoch's offers, then finishes
/// cleanly. For each crash offset — right after the boundary snapshot,
/// after every post-snapshot offer, and seeded interior bytes (torn
/// mid-record included) — a twin restores from the boundary snapshot plus
/// the journal *truncated at that byte*, re-offers exactly the suffix the
/// truncated journal lost (the client-retry model: an un-journaled offer
/// was never acked), runs the remaining epochs, and must end
/// **bit-identical** to the reference: snapshot text, metrics, and
/// journal sequence numbers.
///
/// **Arm C (interior bit flip):** a run whose journal was bit-flipped
/// in place must be *refused* at recovery with a typed
/// [`WalError::Corrupt`] naming the segment and byte offset — never a
/// panic, never a silent wrong replay.
///
/// Returns the list of violations/divergences (empty on a clean run).
///
/// # Errors
///
/// Returns the first *unexpected* service error from any run (typed torn
/// refusals and the arm-C corrupt rejection are the contract, not
/// errors).
pub fn wal_chaos_divergence(seed: u64, opts: &WalChaosOptions) -> Result<Vec<String>, ServeError> {
    let scenario = Arc::new(chaos_scenario());
    let segments = scenario.city.network.num_segments() as u32;
    let mut violations = Vec::new();

    // ---- Arm A: seeded torn appends + fsync stalls, one of each forced.
    {
        let dir = wal_chaos_dir(seed, "a");
        fresh_dir(&dir);
        let cfg = FaultPlanConfig::wal_chaos(opts.epochs, opts.num_shards);
        let plan = FaultPlan::generate(seed, &cfg)
            .with_wal_fault(1, WalFault::TornAppend)
            .with_wal_fault(4, WalFault::FsyncStall(7));
        let injector = Arc::new(FaultInjector::new(plan));
        let config = wal_serve_config(opts, &dir, Some(Arc::clone(&injector)));
        let clock: Arc<SimClock> = Arc::new(SimClock::new());
        let registry = Arc::new(ModelRegistry::new(None, None));
        let service = DispatchService::start(
            Arc::clone(&scenario),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&registry),
        )?;
        let mut torn_refused = 0u64;
        let mut ingest_errors = Vec::new();
        {
            let mut offer = |service: &DispatchService, epoch: u32| {
                for event in
                    request_events(epoch, opts.num_shards, opts.requests_per_epoch, segments)
                {
                    match service.ingest(event) {
                        Ok(_) => {}
                        Err(ServeError::Wal(WalError::TornTail { .. })) => torn_refused += 1,
                        Err(e) => ingest_errors.push(format!("unexpected ingest error: {e}")),
                    }
                }
            };
            let mut scheduler = EpochScheduler::for_service(&service)?;
            offer(&service, 0);
            scheduler.run(&service, clock.as_ref(), opts.epochs, |e, _| {
                if e + 1 < opts.epochs {
                    offer(&service, e + 1);
                }
            })?;
        }
        violations.extend(ingest_errors);
        let counters = injector.counters();
        if counters.wal_torn == 0 {
            violations.push("arm A fired no torn appends".to_owned());
        }
        if counters.wal_stalls == 0 {
            violations.push("arm A fired no fsync stalls".to_owned());
        }
        if torn_refused != counters.wal_torn {
            violations.push(format!(
                "{torn_refused} typed torn refusals for {} torn appends fired",
                counters.wal_torn
            ));
        }
        // Conservation: acked == dispatched + still_journaled.
        let metrics = service.metrics();
        let consumed: u64 = metrics
            .shards
            .iter()
            .map(|s| s.injected + s.rejected + s.queue_depth as u64)
            .sum();
        if metrics.requests_accepted != consumed {
            violations.push(format!(
                "acked {} but shards account for {consumed} (dispatched + still journaled)",
                metrics.requests_accepted
            ));
        }
        // Every injected tear self-healed: the journal directory restores
        // to an equal service.
        let snapshot = service.snapshot()?;
        match DispatchService::restore(
            Arc::clone(&scenario),
            service.config().clone(),
            Arc::new(SimClock::new()) as Arc<dyn Clock>,
            Arc::clone(&registry),
            &snapshot,
        ) {
            Ok(restored) => {
                if restored.metrics() != metrics {
                    violations
                        .push("arm A restore over the torn journal diverged from live".to_owned());
                }
                if restored.wal_last_seq() != service.wal_last_seq() {
                    violations.push(format!(
                        "arm A restore recovered journal seq {}, live is at {}",
                        restored.wal_last_seq(),
                        service.wal_last_seq()
                    ));
                }
                restored.shutdown();
            }
            Err(e) => violations.push(format!("arm A journal unrecoverable after tears: {e}")),
        }
        service.shutdown();
        fresh_dir(&dir);
    }

    // ---- Arm A2: fsync stalls must never leak into state.
    {
        let run = |arm: &str, plan: FaultPlan| -> Result<(String, MetricsSnapshot), ServeError> {
            let dir = wal_chaos_dir(seed, arm);
            fresh_dir(&dir);
            let injector = Arc::new(FaultInjector::new(plan));
            let config = wal_serve_config(opts, &dir, Some(injector));
            let clock: Arc<SimClock> = Arc::new(SimClock::new());
            let service = DispatchService::start(
                Arc::clone(&scenario),
                config,
                Arc::clone(&clock) as Arc<dyn Clock>,
                Arc::new(ModelRegistry::new(None, None)),
            )?;
            let mut scheduler = EpochScheduler::for_service(&service)?;
            for event in request_events(0, opts.num_shards, opts.requests_per_epoch, segments) {
                service.ingest(event)?;
            }
            scheduler.run(&service, clock.as_ref(), opts.epochs, |e, _| {
                if e + 1 < opts.epochs {
                    for event in
                        request_events(e + 1, opts.num_shards, opts.requests_per_epoch, segments)
                    {
                        let _ = service.ingest(event);
                    }
                }
            })?;
            let end = (service.snapshot()?, service.metrics());
            service.shutdown();
            fresh_dir(&dir);
            Ok(end)
        };
        let stall_cfg = FaultPlanConfig {
            wal_horizon: 64,
            p_wal_stall: 0.5,
            wal_stall_ms: 15,
            ..FaultPlanConfig::quiet(opts.epochs, opts.num_shards)
        };
        let plan = FaultPlan::generate(seed, &stall_cfg).with_wal_fault(0, WalFault::FsyncStall(5));
        let (stalled_snap, stalled_metrics) = run("a2s", plan)?;
        let (clean_snap, clean_metrics) = run("a2c", FaultPlan::empty())?;
        if stalled_metrics != clean_metrics {
            violations.push("metrics diverged between stalled and clean journal runs".to_owned());
        }
        if stalled_snap != clean_snap {
            let at = stalled_snap
                .bytes()
                .zip(clean_snap.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| stalled_snap.len().min(clean_snap.len()));
            violations.push(format!(
                "stall twin snapshots diverge at byte {at} (stalled {} bytes, clean {} bytes)",
                stalled_snap.len(),
                clean_snap.len()
            ));
        }
    }

    // ---- Arm B: kill -9 at any byte of the journal.
    {
        let mid = (opts.epochs / 2).max(1);
        let dir = wal_chaos_dir(seed, "ref");
        fresh_dir(&dir);
        let config = wal_serve_config(opts, &dir, None);
        let clock: Arc<SimClock> = Arc::new(SimClock::new());
        let service = DispatchService::start(
            Arc::clone(&scenario),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::new(ModelRegistry::new(None, None)),
        )?;
        let mut scheduler = EpochScheduler::for_service(&service)?;
        for event in request_events(0, opts.num_shards, opts.requests_per_epoch, segments) {
            service.ingest(event)?;
        }
        scheduler.run(&service, clock.as_ref(), mid, |e, _| {
            if e + 1 < mid {
                for event in
                    request_events(e + 1, opts.num_shards, opts.requests_per_epoch, segments)
                {
                    let _ = service.ingest(event);
                }
            }
        })?;
        // The boundary snapshot pins the journal high-water mark; every
        // offer after it lives only in the journal until dispatched.
        let boundary_snapshot = service.snapshot()?;
        let hwm = service.wal_last_seq();
        let segment = match only_segment(&dir) {
            Ok(p) => p,
            Err(why) => {
                violations.push(format!("arm B: {why}"));
                service.shutdown();
                fresh_dir(&dir);
                return Ok(violations);
            }
        };
        let prefix_len = fs::read(&segment)
            .map_err(|e| ServeError::Io(format!("read {}: {e}", segment.display())))?
            .len();
        let post: Vec<Event> =
            request_events(mid, opts.num_shards, opts.requests_per_epoch, segments);
        for event in post.iter().cloned() {
            service.ingest(event)?;
        }
        let journal = fs::read(&segment)
            .map_err(|e| ServeError::Io(format!("read {}: {e}", segment.display())))?;
        let mut tail = EpochScheduler::for_service(&service)?;
        tail.run(&service, clock.as_ref(), opts.epochs - mid, |_, _| {})?;
        let reference_snapshot = service.snapshot()?;
        let reference_metrics = service.metrics();
        let reference_seq = service.wal_last_seq();
        service.shutdown();

        if journal.len() <= prefix_len {
            violations.push("arm B journal never grew past the boundary snapshot".to_owned());
        } else {
            // Crash offsets: both endpoints plus seeded interior bytes —
            // interior cuts usually land mid-record, exercising the torn
            // tail truncation on the recovery path.
            let span = (journal.len() - prefix_len) as u64;
            let mut cuts = vec![prefix_len, journal.len()];
            let mut x = seed ^ 0x0007_7a1c_4a05_u64;
            for _ in 0..opts.interior_crash_points {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                cuts.push(prefix_len + (x % span) as usize);
            }
            cuts.sort_unstable();
            cuts.dedup();
            let segment_file = segment.file_name().expect("segment has a name").to_owned();
            for (i, &cut) in cuts.iter().enumerate() {
                let crash_dir = wal_chaos_dir(seed, &format!("b{i}"));
                fresh_dir(&crash_dir);
                fs::create_dir_all(&crash_dir)
                    .map_err(|e| ServeError::Io(format!("create {}: {e}", crash_dir.display())))?;
                fs::write(crash_dir.join(&segment_file), &journal[..cut])
                    .map_err(|e| ServeError::Io(format!("write truncated journal: {e}")))?;
                let config = wal_serve_config(opts, &crash_dir, None);
                let clock: Arc<SimClock> = Arc::new(SimClock::new());
                let restored = DispatchService::restore(
                    Arc::clone(&scenario),
                    config,
                    Arc::clone(&clock) as Arc<dyn Clock>,
                    Arc::new(ModelRegistry::new(None, None)),
                    &boundary_snapshot,
                )?;
                let recovered = restored.wal_last_seq();
                if recovered < hwm {
                    violations.push(format!(
                        "crash at byte {cut}: recovery lost journal seq {recovered} below \
                         snapshot hwm {hwm}"
                    ));
                }
                // The client-retry model: an offer the truncated journal
                // lost was never acked, so the client re-offers exactly
                // that suffix, in order.
                let missing = (hwm + post.len() as u64 - recovered) as usize;
                for event in post[post.len() - missing..].iter().cloned() {
                    restored.ingest(event)?;
                }
                let mut tail = EpochScheduler::for_service(&restored)?;
                tail.run(&restored, clock.as_ref(), opts.epochs - mid, |_, _| {})?;
                let crashed_snapshot = restored.snapshot()?;
                if restored.metrics() != reference_metrics {
                    violations.push(format!(
                        "crash at byte {cut}: metrics diverged from the never-crashed twin"
                    ));
                }
                if restored.wal_last_seq() != reference_seq {
                    violations.push(format!(
                        "crash at byte {cut}: journal resumed at seq {}, twin at {reference_seq}",
                        restored.wal_last_seq()
                    ));
                }
                if crashed_snapshot != reference_snapshot {
                    let at = crashed_snapshot
                        .bytes()
                        .zip(reference_snapshot.bytes())
                        .position(|(a, b)| a != b)
                        .unwrap_or_else(|| crashed_snapshot.len().min(reference_snapshot.len()));
                    violations.push(format!(
                        "crash at byte {cut}: snapshots diverge at byte {at} (crashed {} bytes, \
                         twin {} bytes)",
                        crashed_snapshot.len(),
                        reference_snapshot.len()
                    ));
                }
                restored.shutdown();
                fresh_dir(&crash_dir);
            }
        }
        fresh_dir(&dir);
    }

    // ---- Arm C: an interior bit flip is a typed refusal, never a panic.
    {
        let dir = wal_chaos_dir(seed, "c");
        fresh_dir(&dir);
        let plan = FaultPlan::empty().with_wal_fault(2, WalFault::SegmentBitFlip);
        let injector = Arc::new(FaultInjector::new(plan));
        let config = wal_serve_config(opts, &dir, Some(Arc::clone(&injector)));
        let service = DispatchService::start(
            Arc::clone(&scenario),
            config,
            Arc::new(SimClock::new()) as Arc<dyn Clock>,
            Arc::new(ModelRegistry::new(None, None)),
        )?;
        for event in request_events(0, opts.num_shards, opts.requests_per_epoch, segments) {
            let _ = service.ingest(event);
        }
        if injector.counters().wal_bitflips == 0 {
            violations.push("arm C fired no bit flips".to_owned());
        }
        let snapshot = service.snapshot()?;
        match DispatchService::restore(
            Arc::clone(&scenario),
            service.config().clone(),
            Arc::new(SimClock::new()) as Arc<dyn Clock>,
            Arc::new(ModelRegistry::new(None, None)),
            &snapshot,
        ) {
            Err(ServeError::Wal(WalError::Corrupt { segment, .. })) => {
                if segment.is_empty() {
                    violations.push("arm C corrupt refusal names no segment".to_owned());
                }
            }
            Ok(restored) => {
                violations.push("bit-flipped journal recovered without error".to_owned());
                restored.shutdown();
            }
            Err(e) => violations.push(format!("arm C refused with the wrong error: {e}")),
        }
        service.shutdown();
        fresh_dir(&dir);
    }

    Ok(violations)
}
