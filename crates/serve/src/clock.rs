//! Pluggable service time.
//!
//! The epoch scheduler and latency measurement never read the OS clock
//! directly; they go through a [`Clock`]. In production that is
//! [`WallClock`] and a dispatch period is five real minutes. In tests and
//! accelerated replays it is [`SimClock`], whose sleeps return instantly
//! and whose reads only move when something advances it — so a full
//! simulated disaster day schedules in milliseconds and every measured
//! latency is exactly zero, making service metrics reproducible
//! bit-for-bit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic millisecond clock the service runs on.
pub trait Clock: Send + Sync {
    /// Milliseconds since the clock was created.
    fn now_ms(&self) -> u64;

    /// Blocks (or simulates blocking) for `ms` milliseconds.
    fn sleep_ms(&self, ms: u64);
}

/// Real time: [`Clock::sleep_ms`] actually blocks the calling thread.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A wall clock starting at zero now.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Accelerated time: sleeping advances the clock instantly, nothing else
/// moves it. Deterministic — two runs see identical timestamps.
#[derive(Debug, Default)]
pub struct SimClock {
    now: AtomicU64,
}

impl SimClock {
    /// A simulated clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ms` without sleeping (e.g. to model elapsed
    /// compute time in a test).
    pub fn advance_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn sleep_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
    }
}

/// Adapts a service [`Clock`] to the observability [`TimeSource`] so that
/// every span the service records measures on the same clock the scheduler
/// runs on. Under [`SimClock`] all span durations are exactly zero, which
/// keeps instrumented runs bit-identical to uninstrumented ones.
///
/// [`TimeSource`]: mobirescue_obs::TimeSource
pub struct ClockTimeSource(pub std::sync::Arc<dyn Clock>);

impl mobirescue_obs::TimeSource for ClockTimeSource {
    fn now_ms(&self) -> u64 {
        self.0.now_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_only_when_told() {
        let c = SimClock::new();
        assert_eq!(c.now_ms(), 0);
        c.sleep_ms(250);
        assert_eq!(c.now_ms(), 250);
        c.advance_ms(50);
        assert_eq!(c.now_ms(), 300);
    }

    #[test]
    fn wall_clock_moves_forward() {
        let c = WallClock::new();
        let a = c.now_ms();
        c.sleep_ms(2);
        assert!(c.now_ms() > a);
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<Box<dyn Clock>> =
            vec![Box::new(SimClock::new()), Box::new(WallClock::new())];
        for c in &clocks {
            let _ = c.now_ms();
        }
    }
}
