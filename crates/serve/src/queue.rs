//! Bounded ingestion queues with an explicit load-shedding policy.
//!
//! A disaster-time dispatch service is exactly the workload that gets
//! bursts far above its drain rate (the paper's request stream peaks with
//! the flood). Rather than let memory grow unboundedly or block producers,
//! each queue has a hard capacity and a declared [`ShedPolicy`]; every
//! accepted and every shed event is counted, and both counters are
//! surfaced in the service's metrics snapshot.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What to drop when a bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Reject the incoming event (favor already-queued work).
    DropNewest,
    /// Evict the oldest queued event to admit the new one (favor fresh
    /// information — the right default for weather advisories).
    DropOldest,
}

/// A thread-safe bounded queue with shed accounting.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
    policy: ShedPolicy,
    accepted: AtomicU64,
    shed: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize, policy: ShedPolicy) -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            policy,
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        // A producer panicking mid-push cannot corrupt a VecDeque in a way
        // that matters here; keep serving rather than poisoning the whole
        // ingestion front.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Offers one event. Returns `true` if it was admitted, `false` if it
    /// was shed (under [`ShedPolicy::DropOldest`] the *new* event is
    /// admitted and the eviction is what counts as shed).
    pub fn push(&self, item: T) -> bool {
        let mut q = self.lock();
        if q.len() < self.capacity {
            q.push_back(item);
            self.accepted.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        match self.policy {
            ShedPolicy::DropNewest => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                false
            }
            ShedPolicy::DropOldest => {
                q.pop_front();
                q.push_back(item);
                self.shed.fetch_add(1, Ordering::Relaxed);
                self.accepted.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }

    /// How many of `n` back-to-back offers made right now would be
    /// admitted: limited by the free room under [`ShedPolicy::DropNewest`],
    /// all of them (by eviction) under [`ShedPolicy::DropOldest`]. Only
    /// meaningful while the caller serializes pushes externally;
    /// concurrent drains can only make room, never take it.
    pub fn admittable(&self, n: usize) -> usize {
        match self.policy {
            ShedPolicy::DropOldest => n,
            ShedPolicy::DropNewest => self.capacity.saturating_sub(self.lock().len()).min(n),
        }
    }

    /// The hard capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Takes every queued event, oldest first.
    pub fn drain(&self) -> Vec<T> {
        self.lock().drain(..).collect()
    }

    /// Events currently queued.
    pub fn depth(&self) -> usize {
        self.lock().len()
    }

    /// Total events admitted since creation.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Total events shed since creation.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Overwrites the counters (snapshot restore).
    pub(crate) fn set_counters(&self, accepted: u64, shed: u64) {
        self.accepted.store(accepted, Ordering::Relaxed);
        self.shed.store(shed, Ordering::Relaxed);
    }
}

impl<T: Clone> BoundedQueue<T> {
    /// Copies the queued events without disturbing them (snapshotting).
    pub fn peek_all(&self) -> Vec<T> {
        self.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn drop_newest_rejects_overflow() {
        let q = BoundedQueue::new(2, ShedPolicy::DropNewest);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(!q.push(3));
        assert_eq!(q.drain(), vec![1, 2]);
        assert_eq!(q.accepted(), 2);
        assert_eq!(q.shed(), 1);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn drop_oldest_evicts_head() {
        let q = BoundedQueue::new(2, ShedPolicy::DropOldest);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(q.push(3));
        assert_eq!(q.peek_all(), vec![2, 3]);
        assert_eq!(q.accepted(), 3);
        assert_eq!(q.shed(), 1);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0, ShedPolicy::DropNewest);
        assert!(q.push(9));
        assert!(!q.push(10));
    }

    /// Exercises one policy at the capacity boundaries: fill to `cap`
    /// exactly, then overflow by one, checking depth and both counters at
    /// every step.
    fn boundary_case(cap: usize, policy: ShedPolicy) {
        let effective = cap.max(1);
        let q = BoundedQueue::new(cap, policy);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.drain(), Vec::<usize>::new(), "empty queue drains empty");

        // Up to capacity every offer is admitted, whatever the policy.
        for i in 0..effective {
            assert!(q.push(i), "push {i} under capacity {effective} shed");
            assert_eq!(q.depth(), i + 1);
        }
        assert_eq!(q.accepted() as usize, effective);
        assert_eq!(q.shed(), 0, "no shedding below capacity");

        // The cap+1'th offer is the policy decision; depth never exceeds
        // capacity and exactly one event is counted shed.
        let admitted = q.push(effective);
        assert_eq!(admitted, policy == ShedPolicy::DropOldest);
        assert_eq!(q.depth(), effective);
        assert_eq!(q.shed(), 1);
        match policy {
            ShedPolicy::DropNewest => {
                assert_eq!(q.accepted() as usize, effective);
                assert_eq!(q.peek_all().first(), Some(&0), "head kept");
            }
            ShedPolicy::DropOldest => {
                assert_eq!(q.accepted() as usize, effective + 1);
                let head = if effective == 1 { effective } else { 1 };
                assert_eq!(q.peek_all().first(), Some(&head), "head evicted");
            }
        }

        // Conservation: with nothing drained yet, queued = admitted −
        // evicted (under DropOldest a single overflow offer counts in both
        // `accepted` and `shed`; under DropNewest in exactly one).
        let evicted = match policy {
            ShedPolicy::DropNewest => 0,
            ShedPolicy::DropOldest => q.shed(),
        };
        assert_eq!(q.accepted() - evicted, q.depth() as u64);
        assert_eq!(q.drain().len(), effective);
    }

    #[test]
    fn shed_policies_at_capacity_boundaries() {
        for cap in [0, 1, 4, 5] {
            boundary_case(cap, ShedPolicy::DropNewest);
            boundary_case(cap, ShedPolicy::DropOldest);
        }
    }

    #[test]
    fn counters_survive_restore_overwrite() {
        let q = BoundedQueue::<u32>::new(2, ShedPolicy::DropNewest);
        let _ = q.push(1);
        q.set_counters(40, 7);
        assert_eq!(q.accepted(), 40);
        assert_eq!(q.shed(), 7);
        assert_eq!(q.depth(), 1, "restore overwrites counters, not contents");
    }

    #[test]
    fn concurrent_pushes_account_for_everything() {
        let q = Arc::new(BoundedQueue::new(64, ShedPolicy::DropNewest));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let _ = q.push(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("producer thread panicked");
        }
        assert_eq!(q.accepted() + q.shed(), 400);
        assert_eq!(q.depth() as u64, q.accepted());
        assert_eq!(q.depth(), 64);
    }
}
