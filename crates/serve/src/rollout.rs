//! Guarded model rollout: admission → shadow → canary → watch/rollback.
//!
//! A checkpoint hot-swap that *succeeds* structurally can still be a
//! disaster operationally — a NaN-riddled net, a policy trained against the
//! wrong feature layout, or an adversarially bad Q-function would drive
//! real dispatch on every shard at once. This module gates candidate
//! bundles behind a promotion pipeline in front of
//! [`ModelRegistry`](crate::ModelRegistry):
//!
//! 1. **admission** — structural validation at submit time ([`admit`]):
//!    both artifacts must parse, every weight must be finite, the policy's
//!    layer shapes must match `FEATURE_DIM → 1`, and outputs on a
//!    deterministic probe batch must be sane. Failures are typed
//!    [`RolloutError`]s; nothing reaches the registry.
//! 2. **shadow** — the candidate runs side-by-side for K epochs on the same
//!    epoch inputs without affecting dispatch, accumulating the paper
//!    reward `r = α·N^q − β·T^d − γ·N^m` against the incumbent.
//! 3. **canary** — tentative promotion to a configurable subset of shards,
//!    with a windowed reward comparison against the control shards.
//! 4. **watch / auto-rollback** — after full promotion the fleet reward is
//!    watched for a window; any gate failure or regression atomically
//!    restores the pinned previous version and bumps
//!    `rollouts_rolled_back`.
//!
//! The state machine lives in
//! [`DispatchService`](crate::DispatchService) (`submit_rollout`,
//! `rollout_status`, `rollout_counters`); this module holds the typed
//! pieces plus the pure admission and reward functions.

use crate::registry::ModelBundle;
use mobirescue_core::predictor::RequestPredictor;
use mobirescue_core::rl_dispatch::{RlDispatchConfig, FEATURE_DIM};
use mobirescue_rl::nn::Mlp;
use mobirescue_rl::persist::{mlp_from_text, probe_mlp};
use mobirescue_sim::{EpochReport, SimConfig};
use std::sync::Arc;

/// Which artifact of a candidate bundle an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    /// The SVM request predictor.
    Svm,
    /// The DQN dispatch policy.
    Dqn,
}

impl std::fmt::Display for Artifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Artifact::Svm => write!(f, "svm"),
            Artifact::Dqn => write!(f, "dqn"),
        }
    }
}

/// Typed rejection from the rollout pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RolloutError {
    /// Another rollout is already in flight; finish or roll it back first.
    InFlight,
    /// The candidate carries neither a predictor nor a policy.
    EmptyCandidate,
    /// An artifact's checkpoint text failed to parse.
    Parse {
        /// Which artifact failed.
        artifact: Artifact,
        /// The parser's message.
        message: String,
    },
    /// An artifact parsed but failed the structural admission probe
    /// (non-finite weights, wrong shapes, insane probe outputs).
    Probe {
        /// Which artifact failed.
        artifact: Artifact,
        /// The probe's message.
        message: String,
    },
}

impl std::fmt::Display for RolloutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RolloutError::InFlight => write!(f, "a rollout is already in flight"),
            RolloutError::EmptyCandidate => {
                write!(f, "candidate bundle is empty (no predictor, no policy)")
            }
            RolloutError::Parse { artifact, message } => {
                write!(f, "{artifact} checkpoint failed to parse: {message}")
            }
            RolloutError::Probe { artifact, message } => {
                write!(f, "{artifact} checkpoint failed admission probe: {message}")
            }
        }
    }
}

impl std::error::Error for RolloutError {}

/// Gate parameters for the promotion pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutConfig {
    /// Shadow epochs before the candidate may touch any shard (0 skips the
    /// stage).
    pub shadow_epochs: u32,
    /// Slack added to the candidate's shadow reward before comparing
    /// against the incumbent (`cand + slack >= inc` passes).
    pub shadow_slack: f64,
    /// Canary epochs before fleet-wide promotion (0 skips the stage).
    pub canary_epochs: u32,
    /// Number of shards (`0..canary_shards`) serving the candidate during
    /// the canary stage; the rest are controls.
    pub canary_shards: usize,
    /// Slack added to the canary shards' mean per-shard-epoch reward before
    /// comparing against the control shards.
    pub canary_slack: f64,
    /// Post-promotion watch epochs; a fleet-reward regression beyond
    /// `watch_slack` against the pre-rollout baseline triggers rollback
    /// (0 skips the stage).
    pub watch_epochs: u32,
    /// Tolerated fleet-reward drop per epoch during the watch window.
    pub watch_slack: f64,
    /// `|output|` sanity bound for the admission probe batch.
    pub probe_bound: f64,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        Self {
            shadow_epochs: 2,
            shadow_slack: 0.0,
            canary_epochs: 2,
            canary_shards: 1,
            canary_slack: 0.0,
            watch_epochs: 2,
            watch_slack: 0.0,
            probe_bound: 1e6,
        }
    }
}

/// Stage of an in-flight rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutStage {
    /// Candidate scores epochs side-by-side; incumbent serves everywhere.
    Shadow,
    /// Candidate serves the canary shards; incumbent serves the controls.
    Canary,
    /// Candidate is fully promoted; fleet reward is watched for regression.
    Watch,
}

impl std::fmt::Display for RolloutStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RolloutStage::Shadow => write!(f, "shadow"),
            RolloutStage::Canary => write!(f, "canary"),
            RolloutStage::Watch => write!(f, "watch"),
        }
    }
}

/// Public view of an in-flight rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutStatus {
    /// Current stage.
    pub stage: RolloutStage,
    /// Epochs completed within the current stage.
    pub epochs_done: u32,
    /// The version the candidate holds (tentative before promotion, actual
    /// during the watch stage).
    pub version: u64,
}

/// Lifetime counters for the rollout pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RolloutCounters {
    /// Candidates that passed admission.
    pub admitted: u64,
    /// Candidates rejected at admission.
    pub rejected: u64,
    /// Candidates rolled back by a shadow, canary, or watch gate.
    pub rolled_back: u64,
}

/// An admitted candidate plus the checkpoint texts it was built from (kept
/// for snapshot persistence: rollout state must survive `mrserve` restore).
#[derive(Debug, Clone)]
pub(crate) struct CandidateBundle {
    /// The parsed bundle, carrying its tentative post-promotion version.
    pub bundle: Arc<ModelBundle>,
    /// Normalized predictor checkpoint text, if the candidate has one.
    pub predictor_text: Option<String>,
    /// Normalized policy checkpoint text, if the candidate has one.
    pub policy_text: Option<String>,
}

/// Serialized-state backbone of the service's rollout state machine.
#[derive(Debug, Clone)]
pub(crate) enum RolloutInFlight {
    /// Accumulating shadow rewards.
    Shadow {
        /// Epochs scored so far.
        done: u32,
        /// Candidate's accumulated shadow reward.
        cand_total: f64,
        /// Incumbent's accumulated primary reward over the same epochs.
        inc_total: f64,
        /// The admitted candidate.
        candidate: CandidateBundle,
    },
    /// Candidate serving the canary shards.
    Canary {
        /// Epochs served so far.
        done: u32,
        /// Accumulated reward over canary shard-epochs.
        canary_total: f64,
        /// Accumulated reward over control shard-epochs.
        control_total: f64,
        /// Candidate build failures observed on canary shards.
        failures: u64,
        /// The admitted candidate.
        candidate: CandidateBundle,
    },
    /// Fully promoted; watching for regression.
    Watch {
        /// Epochs watched so far.
        done: u32,
        /// Accumulated fleet reward during the watch window.
        total: f64,
        /// Mean pre-rollout fleet reward (None when no history existed).
        baseline: Option<f64>,
        /// The pinned previous bundle, restored verbatim on rollback.
        prior: Arc<ModelBundle>,
    },
}

impl RolloutInFlight {
    /// The public status view.
    pub(crate) fn status(&self) -> RolloutStatus {
        match self {
            RolloutInFlight::Shadow {
                done, candidate, ..
            } => RolloutStatus {
                stage: RolloutStage::Shadow,
                epochs_done: *done,
                version: candidate.bundle.version,
            },
            RolloutInFlight::Canary {
                done, candidate, ..
            } => RolloutStatus {
                stage: RolloutStage::Canary,
                epochs_done: *done,
                version: candidate.bundle.version,
            },
            RolloutInFlight::Watch { done, prior, .. } => RolloutStatus {
                stage: RolloutStage::Watch,
                epochs_done: *done,
                version: prior.version + 1,
            },
        }
    }
}

/// Admission gate: parse and structurally validate a candidate's checkpoint
/// texts. `probe_bound` caps `|output|` on the policy's probe batch.
///
/// # Errors
///
/// Returns a typed [`RolloutError`]; an empty candidate, a parse failure,
/// or a probe failure — each naming the offending artifact.
pub fn admit(
    predictor_text: Option<&str>,
    policy_text: Option<&str>,
    probe_bound: f64,
) -> Result<(Option<RequestPredictor>, Option<Mlp>), RolloutError> {
    if predictor_text.is_none() && policy_text.is_none() {
        return Err(RolloutError::EmptyCandidate);
    }
    let predictor = match predictor_text {
        Some(text) => {
            let p = RequestPredictor::from_text(text).map_err(|message| RolloutError::Parse {
                artifact: Artifact::Svm,
                message,
            })?;
            p.probe().map_err(|message| RolloutError::Probe {
                artifact: Artifact::Svm,
                message,
            })?;
            Some(p)
        }
        None => None,
    };
    let policy = match policy_text {
        Some(text) => {
            let net = mlp_from_text(text).map_err(|e| RolloutError::Parse {
                artifact: Artifact::Dqn,
                message: e.to_string(),
            })?;
            if net.input_dim() != FEATURE_DIM || net.output_dim() != 1 {
                return Err(RolloutError::Probe {
                    artifact: Artifact::Dqn,
                    message: format!(
                        "policy network is {}→{}, dispatcher needs {FEATURE_DIM}→1",
                        net.input_dim(),
                        net.output_dim()
                    ),
                });
            }
            probe_mlp(&net, probe_bound).map_err(|e| RolloutError::Probe {
                artifact: Artifact::Dqn,
                message: e.to_string(),
            })?;
            Some(net)
        }
        None => None,
    };
    Ok((predictor, policy))
}

/// The paper's Equation 5 reward for one served epoch,
/// `r = α·N^q − β·T^d − γ·N^m`: rescues picked up this epoch, minus the
/// waiting-time cost of the queue (each waiting request waits one dispatch
/// period, in hours), minus the in-motion cost of teams still serving.
pub fn epoch_reward(rl: &RlDispatchConfig, sim: &SimConfig, report: &EpochReport) -> f64 {
    let period_h = f64::from(sim.dispatch_period_s) / 3600.0;
    rl.alpha * f64::from(report.picked_up)
        - rl.beta * (report.waiting_at_tick as f64) * period_h
        - rl.gamma_weight * (report.serving_at_tick as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_rl::persist::mlp_to_text;

    #[test]
    fn admission_accepts_a_healthy_policy() {
        let net = Mlp::new(&[FEATURE_DIM, 8, 1], 5);
        let (pred, policy) = admit(None, Some(&mlp_to_text(&net)), 1e6).expect("admits");
        assert!(pred.is_none());
        assert_eq!(
            policy.expect("policy parsed").num_params(),
            net.num_params()
        );
    }

    #[test]
    fn admission_rejects_empty_parse_shape_and_poison() {
        match admit(None, None, 1e6) {
            Err(RolloutError::EmptyCandidate) => {}
            other => panic!("expected EmptyCandidate, got {:?}", other.map(|_| ())),
        }

        match admit(None, Some("garbage"), 1e6) {
            Err(RolloutError::Parse { artifact, .. }) => assert_eq!(artifact, Artifact::Dqn),
            other => panic!("expected Dqn parse error, got {other:?}"),
        }

        let wrong = Mlp::new(&[FEATURE_DIM + 1, 4, 1], 0);
        match admit(None, Some(&mlp_to_text(&wrong)), 1e6) {
            Err(RolloutError::Probe { artifact, message }) => {
                assert_eq!(artifact, Artifact::Dqn);
                assert!(message.contains("dispatcher needs"), "{message}");
            }
            other => panic!("expected Dqn shape error, got {other:?}"),
        }

        let mut nan = Mlp::new(&[FEATURE_DIM, 4, 1], 0);
        nan.visit_params_mut(|i, w, _| {
            if i == 3 {
                *w = f64::NAN;
            }
        });
        match admit(None, Some(&mlp_to_text(&nan)), 1e6) {
            Err(RolloutError::Probe { artifact, message }) => {
                assert_eq!(artifact, Artifact::Dqn);
                assert!(message.contains("not finite"), "{message}");
            }
            other => panic!("expected Dqn probe error, got {other:?}"),
        }

        match admit(Some("not a predictor"), None, 1e6) {
            Err(RolloutError::Parse { artifact, .. }) => assert_eq!(artifact, Artifact::Svm),
            other => panic!("expected Svm parse error, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_the_artifact() {
        let e = RolloutError::Probe {
            artifact: Artifact::Dqn,
            message: "parameter 3 is not finite".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("dqn") && msg.contains("admission probe"),
            "{msg}"
        );
        assert!(RolloutError::InFlight.to_string().contains("in flight"));
    }

    #[test]
    fn reward_follows_equation_five() {
        let rl = RlDispatchConfig::default();
        let sim = SimConfig::paper(6);
        let report = EpochReport {
            epoch: 0,
            start_s: 0,
            waiting_at_tick: 4,
            serving_at_tick: 3,
            picked_up: 2,
            delivered: 1,
        };
        let period_h = f64::from(sim.dispatch_period_s) / 3600.0;
        let expect = rl.alpha * 2.0 - rl.beta * 4.0 * period_h - rl.gamma_weight * 3.0;
        assert_eq!(epoch_reward(&rl, &sim, &report), expect);
    }
}
