//! The epoch scheduler: drives [`DispatchService::run_epoch`] on the
//! paper's dispatch period against a pluggable [`Clock`].

use crate::clock::Clock;
use crate::error::ServeError;
use crate::service::DispatchService;
use mobirescue_sim::EpochReport;

/// Runs the dispatch tick every `period_ms` of clock time.
///
/// The scheduler sleeps toward fixed epoch deadlines (`start +
/// (n+1)·period`) rather than sleeping a fixed amount after each tick, so
/// one slow epoch does not shift every later deadline. Epochs whose work
/// finishes past their deadline are counted as overruns and the next epoch
/// starts immediately.
///
/// On a [`crate::SimClock`] the sleep advances simulated time instantly,
/// so a full accelerated day takes milliseconds of wall time while every
/// deadline is still hit "exactly".
#[derive(Debug)]
pub struct EpochScheduler {
    period_ms: u64,
    overruns: u64,
}

impl EpochScheduler {
    /// A scheduler ticking every `period_ms` (the paper's period is
    /// 300 000 ms — five minutes).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for a zero period.
    pub fn new(period_ms: u64) -> Result<Self, ServeError> {
        if period_ms == 0 {
            return Err(ServeError::BadConfig(
                "the dispatch period must be positive",
            ));
        }
        Ok(Self {
            period_ms,
            overruns: 0,
        })
    }

    /// A scheduler matching the service's configured dispatch period.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for a zero period.
    pub fn for_service(service: &DispatchService) -> Result<Self, ServeError> {
        Self::new(u64::from(service.config().sim.dispatch_period_s) * 1_000)
    }

    /// The dispatch period, milliseconds.
    pub fn period_ms(&self) -> u64 {
        self.period_ms
    }

    /// Epochs that finished after their deadline so far.
    pub fn overruns(&self) -> u64 {
        self.overruns
    }

    /// Drives `epochs` dispatch ticks, invoking `on_epoch` with each
    /// epoch's index and per-shard reports.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DispatchService::run_epoch`] failure; epochs
    /// already completed stay completed.
    pub fn run(
        &mut self,
        service: &DispatchService,
        clock: &dyn Clock,
        epochs: u32,
        mut on_epoch: impl FnMut(u32, &[EpochReport]),
    ) -> Result<(), ServeError> {
        let start = clock.now_ms();
        for e in 0..epochs {
            let reports = service.run_epoch()?;
            on_epoch(e, &reports);
            let deadline = start + u64::from(e + 1) * self.period_ms;
            let now = clock.now_ms();
            if now > deadline {
                self.overruns += 1;
            } else {
                clock.sleep_ms(deadline - now);
            }
        }
        Ok(())
    }
}
