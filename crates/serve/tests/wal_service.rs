//! Service-level journal invariants the chaos sweeps cannot pin
//! directly: shed offers leave no durable trace, recovery refuses to
//! shed acked requests when the queue capacity shrank, and the
//! snapshot's high-water mark stays consistent with its queue capture
//! under concurrent ingestion.

use mobirescue_core::scenario::{Scenario, ScenarioConfig};
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_serve::{
    Clock, DispatchService, Event, FsyncPolicy, ModelRegistry, ServeConfig, ServeError, SimClock,
    WalConfig,
};
use mobirescue_sim::{RequestSpec, SimConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

fn test_scenario() -> Arc<Scenario> {
    Arc::new(ScenarioConfig::small().florence().build(11))
}

/// A unique scratch journal dir per call, cleaned before use.
fn tdir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mobirescue-walsvc-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wal_config(dir: &PathBuf, num_shards: usize, queue_capacity: usize) -> ServeConfig {
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = num_shards;
    config.request_queue_capacity = queue_capacity;
    let mut wal = WalConfig::new(dir);
    wal.fsync = FsyncPolicy::Off;
    config.wal = Some(wal);
    config
}

fn start(scenario: &Arc<Scenario>, config: ServeConfig) -> Result<DispatchService, ServeError> {
    DispatchService::start(
        Arc::clone(scenario),
        config,
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        Arc::new(ModelRegistry::new(None, None)),
    )
}

fn request(scenario: &Scenario, tag: u32) -> RequestSpec {
    let num_segments = scenario.city.network.num_segments() as u32;
    RequestSpec {
        appear_s: tag,
        segment: SegmentId(tag % num_segments),
    }
}

/// A shed offer got a NACK, so it must leave no durable trace: the
/// journal sequence does not advance, and a restart replays only the
/// admitted (acked) requests — no resurrection, no duplicates.
#[test]
fn shed_offers_are_never_journaled() {
    let scenario = test_scenario();
    let dir = tdir("shed");
    let service = start(&scenario, wal_config(&dir, 1, 2)).expect("service starts");

    for tag in 0..2 {
        let spec = request(&scenario, tag);
        assert!(
            service
                .ingest(Event::Request { shard: 0, spec })
                .expect("valid event"),
            "offer {tag} fits under capacity"
        );
    }
    let overflow = request(&scenario, 99);
    assert!(
        !service
            .ingest(Event::Request {
                shard: 0,
                spec: overflow
            })
            .expect("valid event"),
        "the third offer overflows the capacity-2 queue"
    );
    assert_eq!(
        service.wal_last_seq(),
        2,
        "the shed offer must not reach the journal"
    );
    drop(service);

    let restarted = start(&scenario, wal_config(&dir, 1, 2)).expect("restart recovers");
    assert_eq!(restarted.wal_last_seq(), 2);
    assert_eq!(
        restarted.metrics().shards[0].queue_depth,
        2,
        "replay admits exactly the acked requests, nothing shed"
    );
    drop(restarted);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restarting with a smaller queue capacity than the crashed process
/// used cannot silently shed durably-acked requests: recovery refuses
/// with a typed error instead.
#[test]
fn replay_overflow_is_a_typed_refusal() {
    let scenario = test_scenario();
    let dir = tdir("overflow");
    let service = start(&scenario, wal_config(&dir, 1, 4)).expect("service starts");
    for tag in 0..4 {
        let spec = request(&scenario, tag);
        assert!(service
            .ingest(Event::Request { shard: 0, spec })
            .expect("valid event"));
    }
    assert_eq!(service.wal_last_seq(), 4);
    drop(service);

    match start(&scenario, wal_config(&dir, 1, 2)) {
        Err(ServeError::ReplayOverflow { shard: 0, capacity }) => {
            assert_eq!(capacity, 2, "the refusal names the shrunken capacity");
        }
        Err(other) => panic!("wrong refusal for a shrunken queue: {other}"),
        Ok(_) => panic!("a capacity-2 restart must refuse to replay 4 acked requests"),
    }
    // The full original capacity recovers everything.
    let restarted = start(&scenario, wal_config(&dir, 1, 4)).expect("full capacity recovers");
    assert_eq!(restarted.metrics().shards[0].queue_depth, 4);
    drop(restarted);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `queued` lines of a restored service's own snapshot, as tags.
fn queued_tags(snapshot: &str) -> Vec<u32> {
    snapshot
        .lines()
        .filter_map(|line| {
            let mut p = line.split_whitespace();
            if p.next() != Some("queued") {
                return None;
            }
            let _shard = p.next()?;
            p.next()?.parse().ok()
        })
        .collect()
}

/// Snapshots taken while listener threads are mid-ingest must keep the
/// high-water mark consistent with the captured queue contents: for
/// every such snapshot, restore + suffix replay yields each acked
/// request **exactly once** — a record journaled at or below the mark
/// is never lost, a record past it is never duplicated.
#[test]
fn concurrent_snapshot_never_loses_or_duplicates_acked_requests() {
    const PRODUCERS: u32 = 4;
    const PER_PRODUCER: u32 = 120;
    let scenario = test_scenario();
    let dir = tdir("race");
    let config = wal_config(&dir, 2, 4_096);
    let service = Arc::new(start(&scenario, config.clone()).expect("service starts"));

    let barrier = Arc::new(Barrier::new(PRODUCERS as usize + 1));
    let done = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|t| {
            let service = Arc::clone(&service);
            let scenario = Arc::clone(&scenario);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..PER_PRODUCER {
                    let tag = t * 10_000 + i;
                    let spec = request(&scenario, tag);
                    let shard = (tag % 2) as usize;
                    assert!(
                        service
                            .ingest(Event::Request { shard, spec })
                            .expect("valid event"),
                        "capacity is ample: every offer is acked"
                    );
                }
            })
        })
        .collect();

    // Snapshot as fast as possible while the producers hammer ingest.
    let mut snapshots = Vec::new();
    barrier.wait();
    while !done.load(Ordering::Relaxed) && snapshots.len() < 64 {
        snapshots.push(service.snapshot().expect("snapshot under load"));
        if handles.iter().all(std::thread::JoinHandle::is_finished) {
            done.store(true, Ordering::Relaxed);
        }
    }
    for h in handles {
        h.join().expect("producer thread panicked");
    }
    service.wal_sync().expect("journal flushes");
    let total = u64::from(PRODUCERS * PER_PRODUCER);
    assert_eq!(service.wal_last_seq(), total, "every acked offer journaled");

    for (i, text) in snapshots.iter().enumerate() {
        let restored = DispatchService::restore(
            Arc::clone(&scenario),
            config.clone(),
            Arc::new(SimClock::new()) as Arc<dyn Clock>,
            Arc::new(ModelRegistry::new(None, None)),
            text,
        )
        .unwrap_or_else(|e| panic!("snapshot {i} restores: {e}"));
        let mut tags = queued_tags(&restored.snapshot().expect("restored snapshot"));
        assert_eq!(
            tags.len() as u64,
            total,
            "snapshot {i}: restore + replay must recover every acked request \
             exactly once (loss under the mark or duplication past it)"
        );
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(
            tags.len() as u64,
            total,
            "snapshot {i}: a journaled request was replayed twice"
        );
        drop(restored);
    }
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}
