//! Property tests for the `mrserve 1` snapshot format — restore of any
//! truncated or bit-flipped snapshot must return a typed
//! [`ServeError::BadSnapshot`], never panic, never silently succeed —
//! and for rollout admission, which must reject any candidate policy
//! with mismatched layer shapes or a non-finite weight anywhere.
//!
//! The checksum trailer is verified before a single record is parsed, so
//! every corrupted case fails fast without spawning shard workers.

use mobirescue_core::rl_dispatch::FEATURE_DIM;
use mobirescue_core::scenario::{Scenario, ScenarioConfig};
use mobirescue_rl::nn::Mlp;
use mobirescue_rl::persist::mlp_to_text;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_serve::rollout::admit;
use mobirescue_serve::{
    Clock, DispatchService, Event, ModelRegistry, RolloutError, ServeConfig, ServeError, SimClock,
};
use mobirescue_sim::{RequestSpec, SimConfig};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

struct Fixture {
    scenario: Arc<Scenario>,
    snapshot: String,
}

fn config() -> ServeConfig {
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = 2;
    config.request_queue_capacity = 4;
    config
}

/// A two-epoch service snapshot with queued requests, advisories, and
/// epoch history — every record kind the `mrserve 1` format emits.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = Arc::new(ScenarioConfig::small().florence().build(11));
        let clock = Arc::new(SimClock::new());
        let registry = Arc::new(ModelRegistry::new(None, None));
        let service = DispatchService::start(
            Arc::clone(&scenario),
            config(),
            clock as Arc<dyn Clock>,
            registry,
        )
        .expect("service starts");
        let num_segments = scenario.city.network.num_segments() as u32;
        for epoch in 0..2u32 {
            for shard in 0..2usize {
                for i in 0..3u32 {
                    let spec = RequestSpec {
                        appear_s: epoch * 300 + i * 40,
                        segment: SegmentId(
                            (epoch * 53 + i * 17 + shard as u32 * 29) % num_segments,
                        ),
                    };
                    service
                        .ingest(Event::Request { shard, spec })
                        .expect("valid request");
                }
            }
            service
                .ingest(Event::Weather {
                    shard: 0,
                    hour: epoch,
                    rain_mm: 8.0,
                })
                .expect("valid advisory");
            service.run_epoch().expect("epoch runs");
        }
        let snapshot = service.snapshot().expect("snapshot serializes");
        service.shutdown();
        Fixture { scenario, snapshot }
    })
}

fn restore(text: &str) -> Result<DispatchService, ServeError> {
    let f = fixture();
    DispatchService::restore(
        Arc::clone(&f.scenario),
        config(),
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        Arc::new(ModelRegistry::new(None, None)),
        text,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any strict truncation is rejected with the typed snapshot error.
    #[test]
    fn truncated_snapshot_never_restores(cut in 0usize..8192) {
        let f = fixture();
        let cut = cut % f.snapshot.len();
        let mut truncated = f.snapshot.clone();
        truncated.truncate(cut);
        match restore(&truncated) {
            Err(ServeError::BadSnapshot(_)) => {}
            Err(other) => {
                prop_assert!(false, "truncation to {cut} bytes: wrong error {other}");
            }
            Ok(service) => {
                service.shutdown();
                prop_assert!(false, "truncation to {cut} bytes was accepted");
            }
        }
    }

    /// Any single bit-flip is rejected with the typed snapshot error.
    #[test]
    fn bit_flipped_snapshot_never_restores(pos in 0usize..8192, bit in 0u32..8) {
        let f = fixture();
        let pos = pos % f.snapshot.len();
        let mut bytes = f.snapshot.clone().into_bytes();
        bytes[pos] ^= 1u8 << bit;
        let corrupt = String::from_utf8_lossy(&bytes).into_owned();
        match restore(&corrupt) {
            Err(ServeError::BadSnapshot(_)) => {}
            Err(other) => {
                prop_assert!(false, "flip of bit {bit} at byte {pos}: wrong error {other}");
            }
            Ok(service) => {
                service.shutdown();
                prop_assert!(false, "flip of bit {bit} at byte {pos} was accepted");
            }
        }
    }

    /// Arbitrary text never panics the restore path.
    #[test]
    fn arbitrary_text_never_panics(bytes in prop::collection::vec(9u8..127, 0..300)) {
        let text = String::from_utf8(bytes).expect("ASCII bytes");
        if let Ok(service) = restore(&text) {
            // Only a full re-seal of a valid body could get here; treat it
            // as a failure for anything that is not the fixture itself.
            service.shutdown();
            prop_assert!(false, "arbitrary text restored: {text:?}");
        }
    }

    /// Admission rejects any policy whose layer shapes disagree with the
    /// dispatcher's feature contract, on either end of the network.
    #[test]
    fn admission_rejects_any_shape_mismatch(
        in_extra in 0usize..4,
        out_extra in 0usize..4,
        hidden in 1usize..12,
        seed in 0u64..1000,
    ) {
        // Skew at least one end away from the FEATURE_DIM → 1 contract.
        let (in_extra, out_extra) = if in_extra == 0 && out_extra == 0 {
            (1, 0)
        } else {
            (in_extra, out_extra)
        };
        let net = Mlp::new(&[FEATURE_DIM + in_extra, hidden, 1 + out_extra], seed);
        match admit(None, Some(&mlp_to_text(&net)), 1e6) {
            Err(RolloutError::Probe { message, .. }) => {
                prop_assert!(message.contains("dispatcher needs"), "{message}");
            }
            Err(other) => prop_assert!(false, "wrong rejection: {other}"),
            Ok(_) => prop_assert!(false, "shape mismatch admitted"),
        }
    }

    /// Admission rejects any bundle carrying a non-finite weight, wherever
    /// it hides in the parameter vector.
    #[test]
    fn admission_rejects_any_non_finite_weight(
        idx in 0usize..10_000,
        inf in 0u8..3,
        hidden in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut net = Mlp::new(&[FEATURE_DIM, hidden, 1], seed);
        let poison = match inf {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        let target = idx % net.num_params();
        net.visit_params_mut(|i, w, _| {
            if i == target {
                *w = poison;
            }
        });
        match admit(None, Some(&mlp_to_text(&net)), 1e6) {
            Err(RolloutError::Probe { message, .. }) => {
                prop_assert!(message.contains("not finite"), "{message}");
            }
            Err(other) => prop_assert!(false, "wrong rejection: {other}"),
            Ok(_) => prop_assert!(false, "non-finite weight at {target} admitted"),
        }
    }
}
