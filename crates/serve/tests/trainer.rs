//! Integration tests for the online training loop: pinned-seed
//! determinism of the candidate checkpoints, trainer state surviving the
//! `mrserve 1` snapshot round-trip, and a self-trained candidate passing
//! the full admission → shadow → canary → watch pipeline.

use mobirescue_core::scenario::ScenarioConfig;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_serve::{
    Clock, DispatchService, EpochScheduler, Event, ModelRegistry, RolloutConfig, ServeConfig,
    SimClock, TrainerConfig,
};
use mobirescue_sim::{RequestSpec, SimConfig};
use std::sync::Arc;

const SEED: u64 = 47;

fn trainer_config(seed: u64, candidate_every: u32) -> TrainerConfig {
    TrainerConfig {
        min_replay: 8,
        batch_size: 4,
        steps_per_epoch: 2,
        candidate_every,
        hidden: vec![8],
        seed,
        ..TrainerConfig::default()
    }
}

fn config(seed: u64, candidate_every: u32) -> ServeConfig {
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = 2;
    config.request_queue_capacity = 8;
    // Wide-open slacks: these tests exercise the loop's plumbing and
    // determinism; gate strictness is pinned by the chaos suites.
    config.rollout = RolloutConfig {
        shadow_epochs: 2,
        shadow_slack: 1e9,
        canary_epochs: 2,
        canary_shards: 1,
        canary_slack: 1e9,
        watch_epochs: 2,
        watch_slack: 1e9,
        ..RolloutConfig::default()
    };
    config.trainer = Some(trainer_config(seed, candidate_every));
    config
}

/// Drives `epochs` epochs with a deterministic request stream and returns
/// the service for inspection.
fn run_service(seed: u64, candidate_every: u32, epochs: u32) -> DispatchService {
    let scenario = Arc::new(ScenarioConfig::small().florence().build(11));
    let num_segments = scenario.city.network.num_segments() as u32;
    let clock: Arc<SimClock> = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let service = DispatchService::start(
        Arc::clone(&scenario),
        config(seed, candidate_every),
        Arc::clone(&clock) as Arc<dyn Clock>,
        registry,
    )
    .expect("service starts");
    let ingest = |epoch: u32| {
        for shard in 0..2usize {
            for i in 0..4u32 {
                let spec = RequestSpec {
                    appear_s: epoch * 300 + (i * 37) % 300,
                    segment: SegmentId((epoch * 53 + i * 17 + shard as u32 * 29) % num_segments),
                };
                let _ = service.ingest(Event::Request { shard, spec });
            }
        }
    };
    ingest(0);
    let mut scheduler = EpochScheduler::for_service(&service).expect("scheduler");
    scheduler
        .run(&service, clock.as_ref(), epochs, |e, _| {
            if e + 1 < epochs {
                ingest(e + 1);
            }
        })
        .expect("epochs run");
    service
}

#[test]
fn same_seed_and_stream_yield_byte_identical_candidates() {
    let a = run_service(SEED, 0, 10);
    let b = run_service(SEED, 0, 10);
    let ca = a.trainer_policy_text().expect("trainer configured");
    let cb = b.trainer_policy_text().expect("trainer configured");
    assert_eq!(
        ca, cb,
        "two SimClock runs with the same seed and transition stream must \
         produce byte-identical trainer checkpoints"
    );
    let sa = a.trainer_status().expect("trainer configured");
    let sb = b.trainer_status().expect("trainer configured");
    assert_eq!(sa, sb, "trainer counters must match too");
    assert!(sa.steps > 0, "the trainer must actually have learned");

    let c = run_service(SEED ^ 0xdead, 0, 10);
    let cc = c.trainer_policy_text().expect("trainer configured");
    assert_ne!(
        ca, cc,
        "a different trainer seed must produce a different checkpoint"
    );
    a.shutdown();
    b.shutdown();
    c.shutdown();
}

#[test]
fn trainer_candidate_passes_the_full_rollout_pipeline() {
    // candidate_every 4 over 14 epochs: the first candidate submits at
    // epoch 4 and has 6 epochs of shadow+canary+watch to promote before
    // the next submissions retry.
    let service = run_service(SEED, 4, 14);
    let obs = service.obs();
    let submitted = obs.counter("train.candidates_submitted").value();
    let admitted = obs.counter("train.candidates_admitted").value();
    assert!(
        submitted >= 2,
        "the cadence must have emitted candidates (got {submitted})"
    );
    assert!(
        admitted >= 1,
        "at least one self-trained candidate must pass the admission probe"
    );
    let m = service.metrics();
    assert!(
        m.model_version >= 2 && m.model_swaps >= 1,
        "a trained candidate must have cleared shadow, canary and watch \
         to promote fleet-wide (version {}, swaps {})",
        m.model_version,
        m.model_swaps
    );
    service.shutdown();
}

#[test]
fn trainer_state_survives_snapshot_restore_and_resumes_bit_identically() {
    // A service runs 6 epochs and snapshots; the restored service must
    // come back with the trainer's exact pre-snapshot state (replay
    // buffer, optimizer moments, counters, cadence), and two restores
    // from the same snapshot driven over the same stream must finish
    // byte-identical. (The *dispatchers'* in-flight prev-round pairs are
    // rebuilt on restore — the same semantic as a hot-swap — so a
    // restored run is compared against its restored twin, not against a
    // never-snapshotted one.) Candidate emission stays off so the
    // comparison is purely about trainer state.
    let scenario = Arc::new(ScenarioConfig::small().florence().build(11));
    let num_segments = scenario.city.network.num_segments() as u32;
    let ingest = |service: &DispatchService, epoch: u32| {
        for shard in 0..2usize {
            for i in 0..4u32 {
                let spec = RequestSpec {
                    appear_s: epoch * 300 + (i * 37) % 300,
                    segment: SegmentId((epoch * 53 + i * 17 + shard as u32 * 29) % num_segments),
                };
                let _ = service.ingest(Event::Request { shard, spec });
            }
        }
    };
    let drive = |service: &DispatchService, clock: &SimClock, from: u32, to: u32| {
        let mut scheduler = EpochScheduler::for_service(service).expect("scheduler");
        scheduler
            .run(service, clock, to - from, |i, _| {
                if from + i + 1 < to {
                    ingest(service, from + i + 1);
                }
            })
            .expect("epochs run");
    };

    let clock: Arc<SimClock> = Arc::new(SimClock::new());
    let origin = DispatchService::start(
        Arc::clone(&scenario),
        config(SEED, 0),
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::new(ModelRegistry::new(None, None)),
    )
    .expect("service starts");
    ingest(&origin, 0);
    drive(&origin, &clock, 0, 6);
    ingest(&origin, 6);
    let status_before = origin.trainer_status().expect("trainer configured");
    let policy_before = origin.trainer_policy_text().expect("trainer configured");
    assert!(
        status_before.steps > 0,
        "the trainer learned before the snapshot"
    );
    let snapshot = origin.snapshot().expect("snapshot serializes");
    origin.shutdown();

    let restore = || {
        let clock: Arc<SimClock> = Arc::new(SimClock::new());
        let service = DispatchService::restore(
            Arc::clone(&scenario),
            config(SEED, 0),
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::new(ModelRegistry::new(None, None)),
            &snapshot,
        )
        .expect("snapshot restores");
        (service, clock)
    };

    let (b1, clock_b1) = restore();
    assert_eq!(
        b1.trainer_status().expect("trainer configured"),
        status_before,
        "trainer counters must survive the snapshot/restore cycle"
    );
    assert_eq!(
        b1.trainer_policy_text().expect("trainer configured"),
        policy_before,
        "the trainer's online network must survive byte-exactly"
    );

    let (b2, clock_b2) = restore();
    drive(&b1, &clock_b1, 6, 12);
    drive(&b2, &clock_b2, 6, 12);
    assert_eq!(
        b1.trainer_status().expect("trainer configured"),
        b2.trainer_status().expect("trainer configured"),
        "restored twins must resume in lockstep"
    );
    assert_eq!(
        b1.trainer_policy_text().expect("trainer configured"),
        b2.trainer_policy_text().expect("trainer configured"),
        "restored twins must resume bit-identically"
    );
    assert_eq!(
        b1.snapshot().expect("snapshot"),
        b2.snapshot().expect("snapshot")
    );
    b1.shutdown();
    b2.shutdown();
}
