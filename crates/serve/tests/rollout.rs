//! Integration tests for the guarded rollout pipeline: admission at the
//! service boundary, the shadow gate, post-promotion watch rollback, and
//! in-flight rollout state surviving a snapshot/restore cycle.

use mobirescue_core::rl_dispatch::FEATURE_DIM;
use mobirescue_core::scenario::Scenario;
use mobirescue_rl::nn::Mlp;
use mobirescue_rl::persist::mlp_to_text;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_serve::chaos::chaos_scenario;
use mobirescue_serve::{
    reward_tank_policy_text, Clock, DispatchService, Event, ModelRegistry, RolloutConfig,
    RolloutError, RolloutStage, ServeConfig, ServeError, SimClock,
};
use mobirescue_sim::{RequestSpec, SimConfig};
use std::sync::Arc;

/// A hand-weighted single-layer policy that chases live requests and
/// remaining demand, penalises distance, and never stands a team down —
/// the same construction the rollout chaos harness uses for a competent
/// incumbent.
fn competent_net(seed: u64) -> Mlp {
    let mut net = Mlp::new(&[FEATURE_DIM, 1], seed);
    let base = [-2.0, 1.0, 3.0, 0.0, 0.0, -1_000.0, 0.0];
    net.visit_params_mut(|i, w, _| {
        *w = base[i] + 0.05 * *w;
    });
    net
}

fn serve_config(rollout: RolloutConfig) -> ServeConfig {
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = 2;
    config.request_queue_capacity = 8;
    config.rollout = rollout;
    config
}

fn start(
    scenario: &Arc<Scenario>,
    config: ServeConfig,
    registry: &Arc<ModelRegistry>,
) -> DispatchService {
    DispatchService::start(
        Arc::clone(scenario),
        config,
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        Arc::clone(registry),
    )
    .expect("service starts")
}

/// Three deterministic requests per shard for `epoch`.
fn ingest_epoch(service: &DispatchService, scenario: &Scenario, epoch: u32) {
    let segments = scenario.city.network.num_segments() as u32;
    for shard in 0..2usize {
        for i in 0..3u32 {
            let mix = epoch * 53 + i * 17 + shard as u32 * 29;
            service
                .ingest(Event::Request {
                    shard,
                    spec: RequestSpec {
                        appear_s: epoch * 300 + (i * 37) % 300,
                        segment: SegmentId(mix % segments),
                    },
                })
                .expect("valid request");
        }
    }
}

#[test]
fn second_submission_is_rejected_while_one_is_in_flight() {
    let scenario = Arc::new(chaos_scenario());
    let registry = Arc::new(ModelRegistry::new(None, Some(competent_net(1))));
    let service = start(&scenario, serve_config(RolloutConfig::default()), &registry);

    let text = mlp_to_text(&competent_net(2));
    let status = service
        .submit_rollout(None, Some(&text))
        .expect("admitted")
        .expect("gates configured, so a rollout is in flight");
    assert_eq!(status.stage, RolloutStage::Shadow);
    assert_eq!(status.version, 2);
    assert_eq!(status.epochs_done, 0);

    match service.submit_rollout(None, Some(&text)) {
        Err(ServeError::Rollout(RolloutError::InFlight)) => {}
        other => panic!("expected InFlight rejection, got {other:?}"),
    }
    let counters = service.rollout_counters();
    assert_eq!(counters.admitted, 1);
    assert_eq!(counters.rejected, 1);
    assert_eq!(counters.rolled_back, 0);
    service.shutdown();
}

#[test]
fn reward_tank_dies_in_shadow_and_the_registry_never_moves() {
    let scenario = Arc::new(chaos_scenario());
    let registry = Arc::new(ModelRegistry::new(None, Some(competent_net(1))));
    let v1 = registry.current();
    let config = serve_config(RolloutConfig {
        shadow_epochs: 2,
        canary_epochs: 0,
        watch_epochs: 0,
        ..RolloutConfig::default()
    });
    let service = start(&scenario, config, &registry);

    // Warm the fleet up so the shadow window has live work to separate
    // the policies on.
    for epoch in 0..2 {
        ingest_epoch(&service, &scenario, epoch);
        service.run_epoch().expect("warm-up epoch");
    }
    service
        .submit_rollout(None, Some(&reward_tank_policy_text()))
        .expect("a reward tank is structurally admissible");
    for epoch in 2..4 {
        ingest_epoch(&service, &scenario, epoch);
        service.run_epoch().expect("shadow epoch");
        // While the candidate shadows, primary dispatch stays on v1.
        assert!(Arc::ptr_eq(&registry.current(), &v1));
        let m = service.metrics();
        assert!(m.shards.iter().all(|s| s.model_version == 1));
    }
    assert!(
        service.rollout_status().is_none(),
        "shadow gate resolved after 2 epochs"
    );
    assert_eq!(service.rollout_counters().rolled_back, 1);
    assert!(Arc::ptr_eq(&registry.current(), &v1), "registry untouched");
    assert_eq!(registry.swaps(), 0);
    assert_eq!(registry.rollbacks(), 0, "nothing was promoted to roll back");
    service.shutdown();
}

#[test]
fn watch_regression_rolls_back_to_the_exact_prior_bundle() {
    let scenario = Arc::new(chaos_scenario());
    let registry = Arc::new(ModelRegistry::new(None, Some(competent_net(3))));
    let v1 = registry.current();
    // No shadow or canary: promotion is immediate, and only the watch
    // window guards it.
    let config = serve_config(RolloutConfig {
        shadow_epochs: 0,
        canary_epochs: 0,
        watch_epochs: 2,
        watch_slack: 0.0,
        ..RolloutConfig::default()
    });
    let service = start(&scenario, config, &registry);

    // Establish a healthy reward baseline under the incumbent.
    for epoch in 0..3 {
        ingest_epoch(&service, &scenario, epoch);
        service.run_epoch().expect("baseline epoch");
    }
    let promoted = service
        .submit_rollout(None, Some(&reward_tank_policy_text()))
        .expect("admitted");
    assert!(
        promoted.is_some(),
        "watch window keeps the rollout in flight"
    );
    assert_eq!(registry.current().version, 2, "promoted immediately");
    assert_eq!(registry.swaps(), 1);

    for epoch in 3..5 {
        ingest_epoch(&service, &scenario, epoch);
        service.run_epoch().expect("watch epoch");
    }
    assert!(service.rollout_status().is_none(), "watch window resolved");
    assert_eq!(service.rollout_counters().rolled_back, 1);
    assert_eq!(registry.rollbacks(), 1);
    let restored = registry.current();
    assert!(
        Arc::ptr_eq(&restored, &v1),
        "rollback restores the exact pinned Arc, not a rebuilt equal"
    );
    // And the shards pick the prior bundle back up on the next epoch.
    ingest_epoch(&service, &scenario, 5);
    service.run_epoch().expect("post-rollback epoch");
    let m = service.metrics();
    assert!(m.shards.iter().all(|s| s.model_version == 1));
    service.shutdown();
}

#[test]
fn zero_gate_config_promotes_immediately() {
    let scenario = Arc::new(chaos_scenario());
    let registry = Arc::new(ModelRegistry::new(None, Some(competent_net(4))));
    let config = serve_config(RolloutConfig {
        shadow_epochs: 0,
        canary_epochs: 0,
        watch_epochs: 0,
        ..RolloutConfig::default()
    });
    let service = start(&scenario, config, &registry);
    let outcome = service
        .submit_rollout(None, Some(&mlp_to_text(&competent_net(5))))
        .expect("admitted");
    assert!(
        outcome.is_none(),
        "no gates: promoted with nothing in flight"
    );
    assert_eq!(registry.current().version, 2);
    assert_eq!(registry.swaps(), 1);
    service.shutdown();
}

#[test]
fn in_flight_rollout_survives_snapshot_and_restore() {
    let scenario = Arc::new(chaos_scenario());
    let make_registry = || Arc::new(ModelRegistry::new(None, Some(competent_net(6))));
    let config = serve_config(RolloutConfig {
        shadow_epochs: 3,
        canary_epochs: 2,
        canary_shards: 1,
        watch_epochs: 2,
        ..RolloutConfig::default()
    });

    let registry = make_registry();
    let service = start(&scenario, config.clone(), &registry);
    ingest_epoch(&service, &scenario, 0);
    service.run_epoch().expect("epoch 0");
    service
        .submit_rollout(None, Some(&mlp_to_text(&competent_net(7))))
        .expect("admitted");
    ingest_epoch(&service, &scenario, 1);
    service.run_epoch().expect("first shadow epoch");
    let status = service.rollout_status().expect("shadow in flight");
    assert_eq!(status.stage, RolloutStage::Shadow);
    assert_eq!(status.epochs_done, 1);

    let snapshot = service.snapshot().expect("snapshot serializes");
    let restored = DispatchService::restore(
        Arc::clone(&scenario),
        config,
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        make_registry(),
        &snapshot,
    )
    .expect("snapshot restores with the rollout in flight");
    assert_eq!(
        restored.rollout_status().expect("rollout survived"),
        status,
        "stage, progress and version all round-trip"
    );

    // Drive both services to the end of the pipeline in lock-step: the
    // restored twin must finish bit-identically.
    for epoch in 2..9 {
        for svc in [&service, &restored] {
            ingest_epoch(svc, &scenario, epoch);
            svc.run_epoch().expect("epoch runs");
        }
        assert_eq!(service.rollout_status(), restored.rollout_status());
    }
    assert!(service.rollout_status().is_none(), "pipeline completed");
    assert_eq!(
        service.snapshot().expect("final snapshot"),
        restored.snapshot().expect("final snapshot"),
        "restored run is bit-identical to the uninterrupted one"
    );
    service.shutdown();
    restored.shutdown();
}
