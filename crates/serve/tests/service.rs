//! End-to-end service test: streaming ingestion with shedding, three
//! scheduled epochs on the simulated clock, snapshot, restore, and
//! metrics/evolution equality between the original and restored service —
//! plus a model hot-swap picked up at the next epoch boundary.

use mobirescue_core::rl_dispatch::FEATURE_DIM;
use mobirescue_core::scenario::{Scenario, ScenarioConfig};
use mobirescue_rl::nn::Mlp;
use mobirescue_rl::persist::mlp_to_text;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_serve::{
    Clock, DispatchService, EpochScheduler, Event, ModelRegistry, RetryPolicy, ServeConfig,
    ServeError, SimClock, SwapError,
};
use mobirescue_sim::{RequestSpec, SimConfig};
use std::sync::Arc;

fn test_scenario() -> Arc<Scenario> {
    Arc::new(ScenarioConfig::small().florence().build(11))
}

fn test_config() -> ServeConfig {
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = 2;
    config.request_queue_capacity = 4;
    config
}

fn start_service(
    scenario: &Arc<Scenario>,
    clock: &Arc<SimClock>,
    registry: &Arc<ModelRegistry>,
) -> DispatchService {
    DispatchService::start(
        Arc::clone(scenario),
        test_config(),
        Arc::clone(clock) as Arc<dyn Clock>,
        Arc::clone(registry),
    )
    .expect("service starts")
}

/// Deterministic per-epoch request batch; identical streams are fed to the
/// original and the restored service.
fn requests_for(scenario: &Scenario, shard: usize, epoch: u32, n: u32) -> Vec<RequestSpec> {
    let num_segments = scenario.city.network.num_segments() as u32;
    (0..n)
        .map(|i| RequestSpec {
            appear_s: epoch * 300 + i * 40,
            segment: SegmentId((epoch * 53 + i * 17 + shard as u32 * 29) % num_segments),
        })
        .collect()
}

fn ingest_all(service: &DispatchService, scenario: &Scenario, epoch: u32, n: u32) -> (u32, u32) {
    let mut accepted = 0;
    let mut shed = 0;
    for shard in 0..2 {
        for spec in requests_for(scenario, shard, epoch, n) {
            if service
                .ingest(Event::Request { shard, spec })
                .expect("valid event")
            {
                accepted += 1;
            } else {
                shed += 1;
            }
        }
    }
    (accepted, shed)
}

#[test]
fn ingestion_rejects_malformed_events_and_sheds_overflow() {
    let scenario = test_scenario();
    let clock = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let service = start_service(&scenario, &clock, &registry);

    // Unknown shard and unknown segment are errors, not queued junk.
    let spec = RequestSpec {
        appear_s: 0,
        segment: SegmentId(0),
    };
    assert!(matches!(
        service.ingest(Event::Request { shard: 9, spec }),
        Err(ServeError::UnknownShard {
            shard: 9,
            num_shards: 2
        })
    ));
    let bad = RequestSpec {
        appear_s: 0,
        segment: SegmentId(u32::MAX),
    };
    assert!(matches!(
        service.ingest(Event::Request {
            shard: 0,
            spec: bad
        }),
        Err(ServeError::World(_))
    ));

    // Capacity is 4 per shard; the fifth and sixth pushes are shed
    // (DropNewest) and counted.
    let (accepted, shed) = ingest_all(&service, &scenario, 0, 6);
    assert_eq!(accepted, 8);
    assert_eq!(shed, 4);
    let m = service.metrics();
    assert_eq!(m.requests_accepted, 8);
    assert_eq!(m.requests_shed, 4);
    assert_eq!(m.shards[0].queue_depth, 4);

    // Advisories: valid ones are applied at the next epoch, invalid ones
    // (out-of-window hour) counted as invalid.
    assert!(service
        .ingest(Event::Weather {
            shard: 0,
            hour: 0,
            rain_mm: 12.0
        })
        .expect("valid advisory"));
    assert!(service
        .ingest(Event::RoadDamage {
            shard: 1,
            segment: SegmentId(3),
            hour: 9_999,
            flooded: true
        })
        .expect("shard in range"));
    service.run_epoch().expect("epoch runs");
    let m = service.metrics();
    assert_eq!(m.advisories_applied, 1);
    assert_eq!(m.advisories_invalid, 1);
    assert_eq!(m.epochs_completed, 1);
}

#[test]
fn retry_exhaustion_accounts_every_offer() {
    let scenario = test_scenario();
    let clock = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let service = start_service(&scenario, &clock, &registry);

    // Fill shard 0 to capacity (4), then offer one more with retry. No
    // consumer drains between attempts, so every attempt sheds and the
    // offer is eventually given up.
    for spec in requests_for(&scenario, 0, 0, 4) {
        assert!(service.ingest(Event::Request { shard: 0, spec }).unwrap());
    }
    let extra = requests_for(&scenario, 0, 1, 1).remove(0);
    let retry = RetryPolicy::default();
    let t0 = clock.now_ms();
    let admitted = service
        .ingest_with_retry(
            Event::Request {
                shard: 0,
                spec: extra,
            },
            &retry,
        )
        .expect("valid event");
    assert!(!admitted, "a full queue with no drain must exhaust retries");

    let m = service.metrics();
    assert_eq!(m.ingest_retries, u64::from(retry.max_retries));
    // The initial offer plus each retry is a fresh shed: 1 + max_retries.
    assert_eq!(m.requests_shed, 1 + u64::from(retry.max_retries));
    assert_eq!(m.requests_accepted, 4);
    assert_eq!(m.shards[0].queue_depth, 4, "queue untouched by retries");
    // Backoff really waited on the clock: 10 + 20 + 40 ms for 3 retries.
    assert_eq!(clock.now_ms() - t0, 70);

    // Permanent errors are not retried and not counted as retries.
    let bad = RequestSpec {
        appear_s: 0,
        segment: SegmentId(u32::MAX),
    };
    assert!(service
        .ingest_with_retry(
            Event::Request {
                shard: 0,
                spec: bad
            },
            &retry
        )
        .is_err());
    assert_eq!(
        service.metrics().ingest_retries,
        u64::from(retry.max_retries)
    );
}

#[test]
fn route_planner_counters_survive_restore_exactly() {
    let scenario = test_scenario();
    let clock = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let service = start_service(&scenario, &clock, &registry);

    // Enough dispatch work that every shard's planner both misses (first
    // route to a segment in an epoch) and hits (repeat routes).
    for epoch in 0..3 {
        ingest_all(&service, &scenario, epoch, 3);
        service.run_epoch().expect("epoch runs");
    }
    let before = service.metrics();
    for (i, shard) in before.shards.iter().enumerate() {
        assert!(
            shard.routing_hits + shard.routing_misses > 0,
            "shard {i} planner never consulted; the test would be vacuous"
        );
    }

    let snapshot = service.snapshot().expect("snapshot serializes");
    let restored = DispatchService::restore(
        Arc::clone(&scenario),
        test_config(),
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::clone(&registry),
        &snapshot,
    )
    .expect("snapshot restores");
    let after = restored.metrics();
    for (b, a) in before.shards.iter().zip(&after.shards) {
        assert_eq!(b.routing_hits, a.routing_hits, "hit counter drifted");
        assert_eq!(b.routing_misses, a.routing_misses, "miss counter drifted");
    }

    service.shutdown();
    restored.shutdown();
}

#[test]
fn snapshot_restore_preserves_metrics_and_future_evolution() {
    let scenario = test_scenario();
    let clock = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let service = start_service(&scenario, &clock, &registry);

    // Three scheduled epochs on the simulated clock, with fresh requests
    // ingested between epochs and some left pending in the queues.
    ingest_all(&service, &scenario, 0, 3);
    let mut scheduler = EpochScheduler::for_service(&service).expect("valid period");
    assert_eq!(scheduler.period_ms(), 300_000);
    let mut seen = Vec::new();
    scheduler
        .run(&service, clock.as_ref(), 3, |epoch, reports| {
            seen.push((epoch, reports.to_vec()));
            ingest_all(&service, &scenario, epoch + 1, 3);
        })
        .expect("epochs run");
    assert_eq!(seen.len(), 3);
    assert_eq!(scheduler.overruns(), 0, "sim-clock epochs never overrun");

    let snapshot = service.snapshot().expect("snapshot serializes");
    let before = service.metrics();
    assert_eq!(before.epochs_completed, 3);
    assert!(
        before.shards.iter().any(|s| s.queue_depth > 0),
        "queues have pending work"
    );

    let restored = DispatchService::restore(
        Arc::clone(&scenario),
        test_config(),
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::clone(&registry),
        &snapshot,
    )
    .expect("snapshot restores");
    assert_eq!(
        restored.metrics(),
        before,
        "restored metrics equal the snapshot point"
    );

    // Both services now receive the identical epoch-4 stream and must
    // evolve identically.
    ingest_all(&service, &scenario, 4, 3);
    ingest_all(&restored, &scenario, 4, 3);
    let r_original = service.run_epoch().expect("original epoch 4");
    let r_restored = restored.run_epoch().expect("restored epoch 4");
    assert_eq!(
        r_original, r_restored,
        "epoch reports diverge after restore"
    );
    assert_eq!(
        service.metrics(),
        restored.metrics(),
        "metrics diverge after restore"
    );

    // A second snapshot of the restored service round-trips byte-stable.
    let again = restored.snapshot().expect("second snapshot");
    let twice = DispatchService::restore(
        Arc::clone(&scenario),
        test_config(),
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::clone(&registry),
        &again,
    )
    .expect("second restore");
    assert_eq!(twice.snapshot().expect("third snapshot"), again);

    service.shutdown();
    restored.shutdown();
}

#[test]
fn hot_swap_applies_at_the_next_epoch_without_stopping_ingestion() {
    let scenario = test_scenario();
    let clock = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let service = start_service(&scenario, &clock, &registry);

    ingest_all(&service, &scenario, 0, 2);
    service.run_epoch().expect("epoch 0");
    assert_eq!(service.metrics().model_version, 1);

    // Install a checkpointed policy through the text format mid-run.
    let mut dims = vec![FEATURE_DIM, 8, 1];
    let policy = Mlp::new(&dims, 99);
    let version = registry
        .install_from_text(None, Some(&mlp_to_text(&policy)))
        .expect("valid checkpoint");
    assert_eq!(version, 2);

    // Ingestion keeps working between the swap and the next epoch.
    ingest_all(&service, &scenario, 1, 2);
    service.run_epoch().expect("epoch 1");
    let m = service.metrics();
    assert_eq!(m.model_version, 2);
    assert_eq!(m.model_swaps, 1);
    assert!(
        m.shards.iter().all(|s| s.model_version == 2),
        "all shards rebuilt"
    );
    assert!(service.last_swap_error().is_none());

    // A wrong-shaped policy is rejected by the shards but never kills the
    // service: it keeps dispatching with the previous bundle.
    dims[0] = FEATURE_DIM + 1;
    registry
        .install_from_text(None, Some(&mlp_to_text(&Mlp::new(&dims, 7))))
        .expect("parses fine; shape is checked at rebuild");
    ingest_all(&service, &scenario, 2, 2);
    service.run_epoch().expect("epoch 2 still runs");
    let m = service.metrics();
    assert!(
        m.shards.iter().all(|s| s.model_version == 2),
        "shards keep the old bundle"
    );
    let (_, why) = service.last_swap_error().expect("swap failure surfaced");
    match &why {
        SwapError::Build(msg) => {
            assert!(msg.contains("dispatcher needs"), "unexpected reason: {msg}")
        }
        other => panic!("expected a build failure, got {other}"),
    }
}

#[test]
fn garbage_snapshots_are_rejected() {
    let scenario = test_scenario();
    let clock = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    for text in [
        "",
        "not a snapshot",
        "mrserve 1\n",                    // missing end
        "mrserve 1\nepochs zero\nend\n",  // bad number
        "mrserve 1\nshard 5 0\nend\n",    // shard out of range
        "mrserve 1\nend\n",               // no shard bodies
        "mrserve 1\nwhatever 1 2\nend\n", // unknown record
    ] {
        let err = DispatchService::restore(
            Arc::clone(&scenario),
            test_config(),
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&registry),
            text,
        );
        assert!(
            matches!(err, Err(ServeError::BadSnapshot(_))),
            "snapshot should be rejected: {text:?}"
        );
    }
}
