//! Observability integration: the service publishes its phase histograms,
//! registry-backed counters and routing gauges, and snapshot→restore→
//! continue never double-counts — even into a pre-populated host registry.

use mobirescue_core::scenario::Scenario;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_serve::chaos::chaos_scenario;
use mobirescue_serve::obs::{ObsSnapshot, Registry};
use mobirescue_serve::{Clock, DispatchService, Event, ModelRegistry, ServeConfig, SimClock};
use mobirescue_sim::{RequestSpec, SimConfig};
use std::sync::Arc;

const NUM_SHARDS: usize = 2;
const PHASES: [&str; 5] = [
    "epoch.ingest_ms",
    "epoch.predict_ms",
    "epoch.dispatch_ms",
    "epoch.routing_ms",
    "epoch.snapshot_ms",
];

fn start_service(config: ServeConfig) -> (Arc<Scenario>, DispatchService) {
    let scenario = Arc::new(chaos_scenario());
    let service = DispatchService::start(
        Arc::clone(&scenario),
        config,
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        Arc::new(ModelRegistry::new(None, None)),
    )
    .expect("service starts");
    (scenario, service)
}

fn small_config() -> ServeConfig {
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = NUM_SHARDS;
    config
}

fn ingest_epoch(service: &DispatchService, scenario: &Scenario, epoch: u32) {
    let segments = scenario.city.network.num_segments() as u32;
    for shard in 0..NUM_SHARDS {
        for i in 0..3u32 {
            let spec = RequestSpec {
                appear_s: epoch * 300 + i * 40,
                segment: SegmentId((epoch * 53 + i * 17 + shard as u32 * 29) % segments),
            };
            service
                .ingest(Event::Request { shard, spec })
                .expect("valid request");
        }
    }
    service
        .ingest(Event::Weather {
            shard: 0,
            hour: epoch % 4,
            rain_mm: 2.0,
        })
        .expect("valid advisory");
}

#[test]
fn phase_histograms_cover_every_epoch_and_dump_round_trips() {
    let epochs = 5u32;
    let (scenario, service) = start_service(small_config());
    for e in 0..epochs {
        ingest_epoch(&service, &scenario, e);
        service.run_epoch().expect("epoch runs");
    }
    let _ = service.snapshot().expect("snapshot serializes");

    let snap = service.obs_snapshot();
    // One sample per shard per epoch for each phase; the snapshot span is
    // recorded once per snapshot() call.
    for name in PHASES {
        let hist = snap
            .histograms
            .get(name)
            .unwrap_or_else(|| panic!("{name} histogram missing from the dump"));
        let expected = if name == "epoch.snapshot_ms" {
            1
        } else {
            u64::from(epochs) * NUM_SHARDS as u64
        };
        assert_eq!(hist.count(), expected, "{name} sample count");
    }
    // Every MetricsSnapshot counter appears in the dump.
    let m = service.metrics();
    assert_eq!(snap.counters["serve.epochs_completed"], u64::from(epochs));
    assert_eq!(
        snap.counters["serve.requests_accepted"],
        m.requests_accepted
    );
    assert_eq!(
        snap.counters["serve.advisories_applied"],
        m.advisories_applied
    );
    assert_eq!(snap.counters["serve.ingest_retries"], m.ingest_retries);
    assert_eq!(snap.counters["serve.degraded_epochs"], m.degraded_epochs);
    for i in 0..NUM_SHARDS {
        assert_eq!(
            snap.counters[&format!("serve.shard{i}.injected")],
            m.shards[i].injected
        );
        assert!(snap
            .counters
            .contains_key(&format!("routing.shard{i}.cache_misses")));
        assert!(snap
            .gauges
            .contains_key(&format!("routing.shard{i}.cached_trees")));
    }
    // The machine-readable dump parses back to the same snapshot.
    let parsed = ObsSnapshot::parse(&snap.to_text()).expect("mrobs 1 text parses");
    assert_eq!(parsed, snap);
    // One epoch-complete event per epoch reached the ring.
    assert!(service.obs().events().total_logged() >= u64::from(epochs));
    service.shutdown();
}

/// The registry-backed counter bugfix pinned: restoring a snapshot *sets*
/// the counters rather than adding to them, so a restored service's
/// shard-summed and service-level counters match the live one exactly and
/// keep evolving identically — even when the host hands `restore` a
/// registry that already carries stale values from a previous tenant.
#[test]
fn restore_into_prepopulated_registry_does_not_double_count() {
    let (scenario, service) = start_service(small_config());
    for e in 0..4u32 {
        ingest_epoch(&service, &scenario, e);
        service.run_epoch().expect("epoch runs");
    }
    let snapshot = service.snapshot().expect("snapshot serializes");
    let metrics_at_snap = service.metrics();
    assert!(metrics_at_snap.advisories_applied > 0, "counters are live");

    // A host registry polluted by a previous tenant's totals.
    let host = Arc::new(Registry::new());
    host.counter("serve.ingest_retries").add(99);
    host.counter("serve.advisories_applied").add(77);
    host.counter("serve.advisories_invalid").add(55);
    host.counter("serve.degraded_epochs").add(33);

    let mut config = small_config();
    config.obs = Some(Arc::clone(&host));
    let restored = DispatchService::restore(
        Arc::clone(&scenario),
        config,
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        Arc::new(ModelRegistry::new(None, None)),
        &snapshot,
    )
    .expect("clean snapshot restores");
    assert_eq!(
        restored.metrics(),
        metrics_at_snap,
        "restored counters must equal the snapshot's, not snapshot + stale"
    );
    assert_eq!(host.counter("serve.advisories_applied").value(), {
        metrics_at_snap.advisories_applied
    });

    // Continue both services with the same stream: totals must stay equal
    // (the restored one must not re-count what the snapshot carried).
    for e in 4..6u32 {
        ingest_epoch(&service, &scenario, e);
        ingest_epoch(&restored, &scenario, e);
        service.run_epoch().expect("epoch runs");
        restored.run_epoch().expect("epoch runs");
    }
    assert_eq!(restored.metrics(), service.metrics());
    service.shutdown();
    restored.shutdown();
}
