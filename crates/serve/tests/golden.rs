//! Golden-file test pinning the `mrserve 1` snapshot text format.
//!
//! The checked-in fixture is the byte-exact snapshot of a small
//! deterministic service run. Any change to the wire format — a new
//! record, a reordered field, a float formatting change — shows up as an
//! explicit diff against `tests/golden/mrserve_v1.txt` instead of a
//! silent break for operators holding older snapshots on disk.
//!
//! To bless an *intentional* format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p mobirescue-serve --test golden
//! ```
//!
//! and commit the updated fixture together with the format change and a
//! version-number bump rationale.

use mobirescue_core::scenario::ScenarioConfig;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_serve::{
    Clock, DispatchService, Event, ModelRegistry, ServeConfig, SimClock, TrainerConfig,
};
use mobirescue_sim::{RequestSpec, SimConfig};
use std::sync::Arc;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/mrserve_v1.txt");

/// The trainer the fixture run enables, so the snapshot pins the
/// `tstate` record: small and deterministic, with candidate emission off
/// (a rollout in flight is `rollout`/`rtext`'s job, already pinned).
fn golden_trainer() -> TrainerConfig {
    TrainerConfig {
        min_replay: 4,
        batch_size: 2,
        steps_per_epoch: 1,
        candidate_every: 0,
        hidden: vec![4],
        seed: 11,
        ..TrainerConfig::default()
    }
}

/// The fixed run the fixture pins: 2 shards, queue capacity 4, two epochs
/// with three requests per shard per epoch, one weather advisory, one
/// road-damage advisory, one request left delayed in the queue, and the
/// online trainer ticking (its replay buffer, optimizer state and
/// counters land in the `tstate` record).
fn golden_snapshot() -> String {
    let scenario = Arc::new(ScenarioConfig::small().florence().build(11));
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = 2;
    config.request_queue_capacity = 4;
    config.trainer = Some(golden_trainer());
    let clock = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let service = DispatchService::start(
        Arc::clone(&scenario),
        config,
        clock as Arc<dyn Clock>,
        registry,
    )
    .expect("service starts");

    let num_segments = scenario.city.network.num_segments() as u32;
    for epoch in 0..2u32 {
        for shard in 0..2usize {
            for i in 0..3u32 {
                let spec = RequestSpec {
                    appear_s: epoch * 300 + i * 40,
                    segment: SegmentId((epoch * 53 + i * 17 + shard as u32 * 29) % num_segments),
                };
                service
                    .ingest(Event::Request { shard, spec })
                    .expect("valid request");
            }
        }
        service
            .ingest(Event::Weather {
                shard: 0,
                hour: epoch,
                rain_mm: 8.0,
            })
            .expect("valid advisory");
        service
            .ingest(Event::RoadDamage {
                shard: 1,
                segment: SegmentId(3),
                hour: epoch + 1,
                flooded: true,
            })
            .expect("valid advisory");
        service.run_epoch().expect("epoch runs");
    }
    // Leave work pending in the queues so the fixture covers queued-event
    // records too.
    let spec = RequestSpec {
        appear_s: 700,
        segment: SegmentId(5),
    };
    service
        .ingest(Event::Request { shard: 1, spec })
        .expect("valid request");

    let snapshot = service.snapshot().expect("snapshot serializes");
    service.shutdown();
    snapshot
}

#[test]
fn mrserve_v1_format_matches_golden_fixture() {
    let generated = golden_snapshot();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &generated).expect("fixture written");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden/mrserve_v1.txt exists; run with UPDATE_GOLDEN=1 to create it");
    if generated != golden {
        let mismatch = generated
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (g, f))| g != f);
        let context = match mismatch {
            Some((i, (g, f))) => {
                format!(
                    "first difference at line {}:\n  generated: {g}\n  fixture:   {f}",
                    i + 1
                )
            }
            None => format!(
                "one snapshot is a prefix of the other ({} vs {} bytes)",
                generated.len(),
                golden.len()
            ),
        };
        panic!(
            "`mrserve 1` snapshot format drifted from the golden fixture.\n{context}\n\
             If the change is intentional, bless it with:\n  \
             UPDATE_GOLDEN=1 cargo test -p mobirescue-serve --test golden\n\
             and explain the format change in the commit."
        );
    }
}

/// Snapshots written before the guarded-rollout work carry a two-field
/// `resil` record and no `rrew`/`rollout`/`rtext` lines. Operators holding
/// one of those on disk must still restore cleanly, with rollout state
/// defaulting to "nothing in flight".
#[test]
fn pre_rollout_snapshot_still_restores() {
    let frozen = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/mrserve_v1_pre_rollout.txt"
    ))
    .expect("frozen pre-rollout fixture is checked in");
    assert!(
        frozen.contains("resil 0 0\n") && !frozen.contains("rollout"),
        "fixture must stay in the pre-rollout format; never re-bless it"
    );
    let scenario = Arc::new(ScenarioConfig::small().florence().build(11));
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = 2;
    config.request_queue_capacity = 4;
    let restored = DispatchService::restore(
        scenario,
        config,
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        Arc::new(ModelRegistry::new(None, None)),
        &frozen,
    )
    .expect("legacy snapshots restore");
    let m = restored.metrics();
    assert_eq!(m.epochs_completed, 2);
    assert_eq!(m.requests_accepted, 13);
    assert!(restored.rollout_status().is_none(), "no rollout in flight");
    restored.shutdown();
}

/// Snapshots written before the durable ingest journal carry a one-field
/// `epochs` record — no journal high-water mark. Operators holding one
/// of those on disk must still restore cleanly, with the absent mark
/// meaning "replay nothing": everything the snapshot holds predates the
/// journal, so the journal contributes nothing.
#[test]
fn pre_wal_snapshot_still_restores() {
    let frozen = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/mrserve_v1_pre_wal.txt"
    ))
    .expect("frozen pre-wal fixture is checked in");
    assert!(
        frozen.contains("\nepochs 2\n"),
        "fixture must stay in the pre-wal one-field epochs format; never re-bless it"
    );
    let scenario = Arc::new(ScenarioConfig::small().florence().build(11));
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = 2;
    config.request_queue_capacity = 4;
    config.trainer = Some(golden_trainer());
    let restored = DispatchService::restore(
        scenario,
        config,
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        Arc::new(ModelRegistry::new(None, None)),
        &frozen,
    )
    .expect("legacy snapshots restore");
    let m = restored.metrics();
    assert_eq!(m.epochs_completed, 2);
    assert_eq!(m.requests_accepted, 13);
    assert_eq!(restored.wal_last_seq(), 0, "no journal was ever attached");
    restored.shutdown();
}

#[test]
fn golden_fixture_still_restores() {
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden/mrserve_v1.txt exists; run with UPDATE_GOLDEN=1 to create it");
    let scenario = Arc::new(ScenarioConfig::small().florence().build(11));
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = 2;
    config.request_queue_capacity = 4;
    config.trainer = Some(golden_trainer());
    let restored = DispatchService::restore(
        scenario,
        config,
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        Arc::new(ModelRegistry::new(None, None)),
        &golden,
    )
    .expect("the pinned format restores");
    let m = restored.metrics();
    assert_eq!(m.epochs_completed, 2);
    assert_eq!(m.requests_accepted, 13);
    let status = restored
        .trainer_status()
        .expect("the tstate record restores the trainer");
    assert_eq!(status.epochs, 2, "trainer cadence survives the round-trip");
    restored.shutdown();
}

/// Snapshots written before the online training loop carry no `tstate`
/// record. Operators holding one of those on disk must still restore
/// cleanly — with training disabled the snapshot is simply complete, and
/// with training enabled the trainer starts fresh from the configured
/// seed rather than failing the restore.
#[test]
fn pre_trainer_snapshot_still_restores() {
    let frozen = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/mrserve_v1_pre_trainer.txt"
    ))
    .expect("frozen pre-trainer fixture is checked in");
    assert!(
        !frozen.contains("\ntstate "),
        "fixture must stay in the pre-trainer format; never re-bless it"
    );
    let scenario = Arc::new(ScenarioConfig::small().florence().build(11));
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = 2;
    config.request_queue_capacity = 4;

    // Training disabled: the legacy snapshot restores as-is.
    let restored = DispatchService::restore(
        Arc::clone(&scenario),
        config.clone(),
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        Arc::new(ModelRegistry::new(None, None)),
        &frozen,
    )
    .expect("legacy snapshots restore with training disabled");
    let m = restored.metrics();
    assert_eq!(m.epochs_completed, 2);
    assert_eq!(m.requests_accepted, 13);
    assert!(restored.trainer_status().is_none(), "no trainer configured");
    restored.shutdown();

    // Training enabled: no `tstate` record means a fresh trainer, not a
    // failed restore.
    config.trainer = Some(golden_trainer());
    let restored = DispatchService::restore(
        scenario,
        config,
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        Arc::new(ModelRegistry::new(None, None)),
        &frozen,
    )
    .expect("legacy snapshots restore with training enabled");
    let status = restored
        .trainer_status()
        .expect("a configured trainer exists even without a tstate record");
    assert_eq!(status.steps, 0, "the trainer starts fresh");
    assert_eq!(status.epochs, 0, "no training history is invented");
    restored.shutdown();
}
