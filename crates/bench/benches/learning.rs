//! ML substrate microbenchmarks: SVM training/inference and the RL policy's
//! forward/backward passes — the computations behind MobiRescue's
//! sub-second dispatch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobirescue_rl::nn::Mlp;
use mobirescue_rl::qscore::{PairTransition, QScore, QScoreConfig};
use mobirescue_svm::{train, Kernel, SmoConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn synthetic_classification(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let label = if i % 2 == 0 { 1.0 } else { -1.0 };
        let center = label * 1.5;
        xs.push(vec![
            center + rng.random_range(-1.0..1.0),
            center + rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
        ]);
        ys.push(label);
    }
    (xs, ys)
}

fn bench_svm_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm_smo_train");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let (xs, ys) = synthetic_classification(n, 3);
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                black_box(train(
                    &xs,
                    &ys,
                    Kernel::Rbf { gamma: 0.5 },
                    &SmoConfig::default(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_svm_predict(c: &mut Criterion) {
    let (xs, ys) = synthetic_classification(400, 5);
    let model = train(&xs, &ys, Kernel::Rbf { gamma: 0.5 }, &SmoConfig::default());
    c.bench_function("svm_predict", |b| {
        b.iter(|| black_box(model.predict(&[0.3, -0.2, 0.8])))
    });
}

fn bench_mlp(c: &mut Criterion) {
    let mlp = Mlp::new(&[6, 32, 32, 1], 1);
    let x = [0.1, 0.5, -0.3, 0.9, 0.0, 1.0];
    c.bench_function("mlp_forward_6_32_32_1", |b| {
        b.iter(|| black_box(mlp.predict(&x)))
    });
    let mut trainable = mlp.clone();
    c.bench_function("mlp_forward_backward", |b| {
        b.iter(|| {
            let cache = trainable.forward(&x);
            let err = cache.output()[0] - 1.0;
            trainable.backward(&cache, &[err]);
        })
    });
}

fn bench_qscore_learn(c: &mut Criterion) {
    let mut q = QScore::new(QScoreConfig::new(6));
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..1_000 {
        q.store(PairTransition {
            features: (0..6).map(|_| rng.random::<f64>()).collect(),
            reward: rng.random::<f64>(),
            next_candidates: (0..16)
                .map(|_| (0..6).map(|_| rng.random::<f64>()).collect())
                .collect(),
        });
    }
    c.bench_function("qscore_learn_step_batch32", |b| {
        b.iter(|| black_box(q.learn_step()))
    });
    // Scoring 65 zone candidates — one team's decision in the dispatcher.
    let candidates: Vec<Vec<f64>> = (0..65)
        .map(|_| (0..6).map(|_| rng.random::<f64>()).collect())
        .collect();
    c.bench_function("qscore_best_of_65", |b| {
        b.iter(|| black_box(q.best(&candidates)))
    });
}

criterion_group!(
    benches,
    bench_svm_train,
    bench_svm_predict,
    bench_mlp,
    bench_qscore_learn
);
criterion_main!(benches);
