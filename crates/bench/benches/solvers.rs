//! Solver microbenchmarks: the Hungarian assignment both baselines run
//! every period, and the generic branch-and-bound covering IP whose
//! exponential worst case motivates the paper's "integer programming is
//! slow" premise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobirescue_solver::bnb::CoverProblem;
use mobirescue_solver::hungarian::{min_cost_assignment, CostMatrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for &n in &[25usize, 50, 100] {
        let mut rng = StdRng::seed_from_u64(7);
        let cost = CostMatrix::from_fn(n, n, |_, _| rng.random_range(0.0..1_000.0));
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| black_box(min_cost_assignment(&cost)))
        });
    }
    group.finish();
}

fn bench_rectangular_hungarian(c: &mut Criterion) {
    // Teams × (requests + predicted slots): the Rescue baseline's shape.
    let mut rng = StdRng::seed_from_u64(9);
    let cost = CostMatrix::from_fn(100, 200, |_, _| rng.random_range(0.0..1_000.0));
    c.bench_function("hungarian_100x200", |b| {
        b.iter(|| black_box(min_cost_assignment(&cost)))
    });
}

fn bench_branch_and_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("bnb_cover");
    group.sample_size(10);
    for &n in &[12usize, 18] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let problem = CoverProblem {
            costs: (0..n).map(|_| rng.random_range(1.0..10.0)).collect(),
            constraints: (0..n / 3)
                .map(|_| {
                    (
                        (0..n).map(|_| rng.random_range(0.0..2.0)).collect(),
                        rng.random_range(1.0..3.0),
                    )
                })
                .collect(),
        };
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| black_box(problem.solve()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hungarian,
    bench_rectangular_hungarian,
    bench_branch_and_bound
);
criterion_main!(benches);
