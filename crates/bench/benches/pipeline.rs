//! Dataset-pipeline benchmarks (the Section-III analysis stages): routing,
//! map matching, cleaning, trip inference and flow measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use mobirescue_core::scenario::ScenarioConfig;
use mobirescue_mobility::cleaning::{clean, CleaningConfig};
use mobirescue_mobility::flow::FlowField;
use mobirescue_mobility::map_match::MapMatcher;
use mobirescue_mobility::trips::{extract_trips, DEFAULT_TRIP_THRESHOLD_M};
use mobirescue_roadnet::generator::CityConfig;
use mobirescue_roadnet::graph::LandmarkId;
use mobirescue_roadnet::routing::{FreeFlow, Router};
use std::hint::black_box;

fn bench_dijkstra(c: &mut Criterion) {
    let city = CityConfig::charlotte_like().build(3);
    let router = Router::new(&city.network);
    let n = city.network.num_landmarks() as u32;
    c.bench_function("dijkstra_charlotte_single_path", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i * 7 + 13) % n;
            black_box(router.shortest_path(&FreeFlow, city.depot, LandmarkId(i)))
        })
    });
    c.bench_function("dijkstra_charlotte_full_tree", |b| {
        b.iter(|| black_box(router.shortest_paths_from(&FreeFlow, city.depot)))
    });
}

fn bench_map_matching(c: &mut Criterion) {
    let city = CityConfig::charlotte_like().build(4);
    let matcher = MapMatcher::new(&city.network);
    let p = city.center.offset_m(3_333.0, -2_222.0);
    c.bench_function("map_match_nearest_landmark", |b| {
        b.iter(|| black_box(matcher.nearest_landmark(&city.network, p)))
    });
    c.bench_function("map_match_nearest_segment", |b| {
        b.iter(|| black_box(matcher.nearest_segment(&city.network, p)))
    });
}

fn bench_analysis_stages(c: &mut Criterion) {
    let scenario = ScenarioConfig::small().florence().build(5);
    let bounds = scenario
        .city
        .network
        .bounding_box()
        .unwrap()
        .expanded_m(2_000.0);
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.bench_function("clean_170k_pings", |b| {
        b.iter(|| {
            black_box(clean(
                &scenario.generated.dataset.pings,
                &CleaningConfig::for_bounds(bounds),
            ))
        })
    });
    let matcher = MapMatcher::new(&scenario.city.network);
    group.bench_function("extract_trips", |b| {
        b.iter(|| {
            black_box(extract_trips(
                &scenario.generated.dataset,
                &scenario.city.network,
                &matcher,
                DEFAULT_TRIP_THRESHOLD_M,
            ))
        })
    });
    let trips = extract_trips(
        &scenario.generated.dataset,
        &scenario.city.network,
        &matcher,
        DEFAULT_TRIP_THRESHOLD_M,
    );
    group.bench_function("flow_from_trips", |b| {
        b.iter(|| {
            black_box(FlowField::from_trips(
                &scenario.city.network,
                &trips,
                &scenario.conditions,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dijkstra,
    bench_map_matching,
    bench_analysis_stages
);
criterion_main!(benches);
