//! Dispatch-round computation latency — the real measurement behind
//! Figure 13's claim: "solving the integer programming problem generally
//! takes around 300 seconds … MobiRescue takes less than 0.5 second".
//!
//! Our Hungarian solver is far faster than the paper's CPLEX-era IP (which
//! is why the simulator *models* baseline latency explicitly); these
//! benches document the asymptotics: RL scoring stays microseconds-flat
//! while assignment cost grows polynomially with teams × targets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobirescue_core::baselines::{RescueDispatcher, ScheduleDispatcher};
use mobirescue_core::predictor::{mine_rescues, PredictorConfig, RequestPredictor};
use mobirescue_core::rl_dispatch::{MobiRescueDispatcher, RlDispatchConfig};
use mobirescue_core::scenario::{Scenario, ScenarioConfig};
use mobirescue_core::timeseries::TimeSeriesPredictor;
use mobirescue_core::training::busiest_request_day;
use mobirescue_mobility::map_match::MapMatcher;
use mobirescue_roadnet::graph::{LandmarkId, SegmentId};
use mobirescue_roadnet::planner::RoutePlanner;
use mobirescue_sim::dispatcher::{DispatchState, Dispatcher};
use mobirescue_sim::types::{RequestId, RequestView, TeamId, TeamView};
use std::hint::black_box;

struct Fixture {
    scenario: Scenario,
    teams: Vec<TeamView>,
    waiting: Vec<RequestView>,
    hour: u32,
}

fn fixture(num_teams: usize, num_requests: usize) -> Fixture {
    let scenario = ScenarioConfig::small().florence().build(42);
    let hour = scenario.hurricane().timeline.peak_hour();
    let n_landmarks = scenario.city.network.num_landmarks() as u32;
    let n_segments = scenario.city.network.num_segments() as u32;
    let teams = (0..num_teams)
        .map(|i| TeamView {
            id: TeamId(i as u32),
            location: LandmarkId((i as u32 * 37) % n_landmarks),
            onboard: 0,
            delivering: false,
            standby: true,
        })
        .collect();
    let waiting = (0..num_requests)
        .map(|i| RequestView {
            id: RequestId(i as u32),
            segment: SegmentId((i as u32 * 61) % n_segments),
            appear_s: 0,
        })
        .collect();
    Fixture {
        scenario,
        teams,
        waiting,
        hour,
    }
}

fn state<'a>(f: &'a Fixture, planner: &'a RoutePlanner<'a>) -> DispatchState<'a> {
    DispatchState {
        now_s: 0,
        hour: f.hour,
        teams: &f.teams,
        waiting: &f.waiting,
        net: &f.scenario.city.network,
        condition: f.scenario.conditions.at(f.hour),
        planner,
        hospitals: &f.scenario.city.hospitals,
        depot: f.scenario.city.depot,
    }
}

fn bench_dispatch_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_round");
    group.sample_size(10);
    for &(teams, requests) in &[(20usize, 20usize), (60, 60)] {
        let f = fixture(teams, requests);
        let planner = RoutePlanner::new(&f.scenario.city.network);
        let predictor = RequestPredictor::train_on(&f.scenario, &PredictorConfig::default());
        let mut mr =
            MobiRescueDispatcher::new(&f.scenario, Some(predictor), RlDispatchConfig::default());
        mr.set_training(false);
        group.bench_function(BenchmarkId::new("mobirescue_rl", teams), |b| {
            b.iter(|| black_box(mr.dispatch(&state(&f, &planner))))
        });

        let mut schedule = ScheduleDispatcher::default();
        group.bench_function(BenchmarkId::new("schedule_ip", teams), |b| {
            b.iter(|| black_box(schedule.dispatch(&state(&f, &planner))))
        });

        let matcher = MapMatcher::new(&f.scenario.city.network);
        let rescues = mine_rescues(&f.scenario);
        let day = busiest_request_day(&rescues).unwrap_or(14);
        let ts = TimeSeriesPredictor::fit(&f.scenario.city.network, &matcher, &rescues, day, 3);
        let mut rescue = RescueDispatcher::new(ts);
        group.bench_function(BenchmarkId::new("rescue_ip", teams), |b| {
            b.iter(|| black_box(rescue.dispatch(&state(&f, &planner))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch_round);
criterion_main!(benches);
