//! Service-runtime benchmarks: ingestion throughput (events/s into the
//! bounded queues) and epoch-scheduling latency on a small scenario.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mobirescue_core::scenario::ScenarioConfig;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_serve::{
    BoundedQueue, Clock, DispatchService, Event, ModelRegistry, ServeConfig, ShedPolicy, SimClock,
};
use mobirescue_sim::{RequestSpec, SimConfig};
use std::hint::black_box;
use std::sync::Arc;

const INGEST_BATCH: u64 = 10_000;

fn bench_ingestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_ingest");
    group.throughput(Throughput::Elements(INGEST_BATCH));

    // The raw queue: the per-event cost floor of the ingestion front.
    group.bench_function("bounded_queue_push_drain", |b| {
        let queue = BoundedQueue::new(INGEST_BATCH as usize, ShedPolicy::DropNewest);
        b.iter(|| {
            for i in 0..INGEST_BATCH {
                queue.push(RequestSpec {
                    appear_s: i as u32,
                    segment: SegmentId((i % 97) as u32),
                });
            }
            black_box(queue.drain().len())
        })
    });

    // The full service path: shard routing + segment validation + queue.
    let scenario = Arc::new(ScenarioConfig::small().florence().build(6));
    let n_segments = scenario.city.network.num_segments() as u32;
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.request_queue_capacity = INGEST_BATCH as usize;
    let clock = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let service = DispatchService::start(
        Arc::clone(&scenario),
        config,
        Arc::clone(&clock) as Arc<dyn Clock>,
        registry,
    )
    .expect("service starts");
    group.bench_function("service_ingest", |b| {
        b.iter(|| {
            let mut accepted = 0u64;
            for i in 0..INGEST_BATCH {
                let spec = RequestSpec {
                    appear_s: i as u32,
                    segment: SegmentId((i as u32 * 41) % n_segments),
                };
                if service
                    .ingest(Event::Request { shard: 0, spec })
                    .expect("valid")
                {
                    accepted += 1;
                }
            }
            black_box((accepted, service.metrics().requests_accepted))
        })
    });
    group.finish();
}

fn bench_epoch(c: &mut Criterion) {
    let scenario = Arc::new(ScenarioConfig::small().florence().build(6));
    let n_segments = scenario.city.network.num_segments() as u32;
    let mut group = c.benchmark_group("serve_epoch");
    group.sample_size(10);
    group.bench_function("run_epoch_small", |b| {
        let clock = Arc::new(SimClock::new());
        let registry = Arc::new(ModelRegistry::new(None, None));
        let service = DispatchService::start(
            Arc::clone(&scenario),
            ServeConfig::new(SimConfig::small(6)),
            Arc::clone(&clock) as Arc<dyn Clock>,
            registry,
        )
        .expect("service starts");
        let mut epoch = 0u32;
        b.iter(|| {
            for i in 0..10u32 {
                let spec = RequestSpec {
                    appear_s: epoch * 300 + i * 29,
                    segment: SegmentId((epoch * 53 + i * 17) % n_segments),
                };
                service
                    .ingest(Event::Request { shard: 0, spec })
                    .expect("valid");
            }
            epoch += 1;
            black_box(service.run_epoch().expect("epoch runs"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ingestion, bench_epoch);
criterion_main!(benches);
