//! Simulation-engine throughput: how fast the SUMO-replacement simulates a
//! rescue day.

use criterion::{criterion_group, criterion_main, Criterion};
use mobirescue_core::scenario::ScenarioConfig;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::dispatcher::NearestRequestDispatcher;
use mobirescue_sim::types::{RequestSpec, SimConfig};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let scenario = ScenarioConfig::small().florence().build(6);
    let n_segments = scenario.city.network.num_segments() as u32;
    let requests: Vec<RequestSpec> = (0..30)
        .map(|i| RequestSpec {
            appear_s: i * 200,
            segment: SegmentId((i * 41) % n_segments),
        })
        .collect();
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("four_hours_six_teams", |b| {
        b.iter(|| {
            black_box(mobirescue_sim::run(
                &scenario.city,
                &scenario.conditions,
                &requests,
                &mut NearestRequestDispatcher::default(),
                &SimConfig::small(24),
            ))
        })
    });
    let mut paper_hour = SimConfig::paper(24);
    paper_hour.duration_hours = 1;
    group.bench_function("one_hour_hundred_teams", |b| {
        b.iter(|| {
            black_box(mobirescue_sim::run(
                &scenario.city,
                &scenario.conditions,
                &requests,
                &mut NearestRequestDispatcher::default(),
                &paper_hour,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
