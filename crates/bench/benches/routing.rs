//! Routing acceleration layer micro-benchmarks: the naive adjacency-list
//! Dijkstra versus the CSR kernel, the epoch-scoped SSSP cache (cold and
//! warm), and the scoped-thread fan-out. All variants return bit-identical
//! results (see `crates/roadnet/tests/properties.rs`); these benches
//! measure only the time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mobirescue_disaster::hurricane::Hurricane;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_roadnet::generator::CityConfig;
use mobirescue_roadnet::graph::LandmarkId;
use mobirescue_roadnet::routing::Router;
use mobirescue_roadnet::{pool, CsrGraph, RoutePlanner};
use std::hint::black_box;

const FAN_OUT: usize = 16;

fn bench_fan_out(c: &mut Criterion) {
    let city = CityConfig::charlotte_like().build(3);
    let net = &city.network;
    let scenario = DisasterScenario::new(&city, Hurricane::florence(), 3);
    let peak = scenario.hurricane().timeline.peak_hour();
    let mut cond = scenario.network_condition(net, peak);
    let n = net.num_landmarks() as u32;
    let sources: Vec<LandmarkId> = (0..FAN_OUT)
        .map(|i| LandmarkId((i as u32 * 37) % n))
        .collect();
    // An operable segment whose speed factor the cold variants perturb to
    // force a fresh cost generation every iteration.
    let tweak = net
        .segment_ids()
        .find(|&s| cond.is_operable(s))
        .expect("peak flood never severs the whole city");

    let mut group = c.benchmark_group("routing_fan_out");
    group.sample_size(10);
    group.throughput(Throughput::Elements(FAN_OUT as u64));

    let router = Router::new(net);
    group.bench_function("naive", |b| {
        b.iter(|| {
            for &src in &sources {
                black_box(router.shortest_paths_from(&cond, src));
            }
        })
    });

    let csr = CsrGraph::build(net);
    let snap = csr.snapshot_condition(net, &cond);
    group.bench_function("csr", |b| {
        b.iter(|| {
            for &src in &sources {
                black_box(csr.shortest_paths(&snap, src));
            }
        })
    });

    let planner = RoutePlanner::new(net);
    let mut flip = false;
    group.bench_function("cached_cold_single_thread", |b| {
        b.iter(|| {
            flip = !flip;
            cond.set_speed_factor(tweak, if flip { 0.9 } else { 0.8 });
            planner.prewarm(&cond, &sources, 1);
            black_box(planner.cached_trees())
        })
    });
    group.bench_function("cached_cold_parallel", |b| {
        b.iter(|| {
            flip = !flip;
            cond.set_speed_factor(tweak, if flip { 0.9 } else { 0.8 });
            planner.prewarm(&cond, &sources, pool::available_threads());
            black_box(planner.cached_trees())
        })
    });
    planner.prewarm(&cond, &sources, pool::available_threads());
    group.bench_function("cached_warm", |b| {
        b.iter(|| {
            for &src in &sources {
                black_box(planner.paths_from(&cond, src));
            }
        })
    });
    group.finish();
}

fn bench_point_queries(c: &mut Criterion) {
    let city = CityConfig::charlotte_like().build(3);
    let net = &city.network;
    let scenario = DisasterScenario::new(&city, Hurricane::florence(), 3);
    let cond = scenario.network_condition(net, scenario.hurricane().timeline.peak_hour());
    let n = net.num_landmarks() as u32;
    let pairs: Vec<(LandmarkId, LandmarkId)> = (0..32u32)
        .map(|i| (LandmarkId((i * 37) % n), LandmarkId((i * 61 + 9) % n)))
        .collect();

    let mut group = c.benchmark_group("routing_point_queries");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pairs.len() as u64));

    let router = Router::new(net);
    group.bench_function("naive_early_exit", |b| {
        b.iter(|| {
            for &(from, to) in &pairs {
                black_box(router.shortest_path(&cond, from, to));
            }
        })
    });

    // Uncached early-exit queries over the CSR snapshot.
    let planner = RoutePlanner::new(net);
    group.bench_function("csr_early_exit", |b| {
        b.iter(|| {
            for &(from, to) in &pairs {
                black_box(planner.route(&cond, from, to));
            }
        })
    });

    // The same queries answered from prewarmed trees.
    let warm = RoutePlanner::new(net);
    let sources: Vec<LandmarkId> = pairs.iter().map(|&(from, _)| from).collect();
    warm.prewarm(&cond, &sources, pool::available_threads());
    group.bench_function("cached_tree_walk", |b| {
        b.iter(|| {
            for &(from, to) in &pairs {
                black_box(warm.route(&cond, from, to));
            }
        })
    });

    let hospitals: Vec<LandmarkId> = city.hospitals.clone();
    group.bench_function("naive_nearest_hospital", |b| {
        b.iter(|| {
            for &(from, _) in &pairs {
                black_box(router.nearest_target(&cond, from, &hospitals));
            }
        })
    });
    group.bench_function("multi_target_early_exit", |b| {
        b.iter(|| {
            for &(from, _) in &pairs {
                black_box(planner.nearest_target(&cond, from, &hospitals));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fan_out, bench_point_queries);
criterion_main!(benches);
