//! Smoke tests: every experiment id renders non-empty output at small
//! scale, and the analysis-only context covers exactly the Section-III
//! experiments.

use mobirescue_bench::{ExperimentScale, FigureContext};

#[test]
fn analysis_experiments_render() {
    let ctx = FigureContext::analysis_only(ExperimentScale::Small, 5);
    for id in FigureContext::analysis_ids() {
        let out = ctx.run(id).unwrap_or_else(|| panic!("unknown id {id}"));
        assert!(out.len() > 40, "{id} output too small:\n{out}");
        assert!(out.contains("=="), "{id} missing heading");
    }
    assert!(ctx.comparison().is_none());
    assert_eq!(ctx.scale(), ExperimentScale::Small);
    assert_eq!(ctx.seed(), 5);
}

#[test]
fn unknown_experiment_id_is_none() {
    let ctx = FigureContext::analysis_only(ExperimentScale::Small, 6);
    assert!(ctx.run("fig99").is_none());
    assert!(ctx.run("").is_none());
}

#[test]
#[should_panic(expected = "needs a full context")]
fn comparison_figures_need_full_context() {
    let ctx = FigureContext::analysis_only(ExperimentScale::Small, 7);
    let _ = ctx.run("fig9");
}

/// The full-context path is exercised end-to-end (slow: trains the models).
#[test]
fn comparison_experiments_render() {
    let ctx = FigureContext::build_full(ExperimentScale::Small, 8);
    for id in FigureContext::comparison_ids() {
        let out = ctx.run(id).unwrap_or_else(|| panic!("unknown id {id}"));
        assert!(out.len() > 40, "{id} output too small:\n{out}");
    }
    let summary = ctx.run("summary").expect("summary renders");
    assert!(summary.contains("timely served"));
}
