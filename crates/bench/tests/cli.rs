//! Pins the loadgen binary's command-line contract: typos and missing
//! required flags fail loudly with usage, they never fall through to a
//! default run against the wrong target.

use std::process::Command;

#[test]
fn unknown_flag_prints_usage_and_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args(["--addr", "127.0.0.1:9", "--no-such-flag"])
        .output()
        .expect("loadgen runs");
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown argument \"--no-such-flag\""),
        "stderr names the bad flag: {stderr}"
    );
    assert!(
        stderr.contains("usage: loadgen"),
        "stderr shows usage: {stderr}"
    );
}

#[test]
fn missing_addr_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .output()
        .expect("loadgen runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--addr HOST:PORT is required"), "{stderr}");
}

#[test]
fn bad_profile_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args(["--addr", "127.0.0.1:9", "--profile", "closed"])
        .output()
        .expect("loadgen runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown profile"), "{stderr}");
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .arg("--help")
        .output()
        .expect("loadgen runs");
    assert!(out.status.success(), "--help exits 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: loadgen"), "{stdout}");
    assert!(stdout.contains("--profile NAME"), "{stdout}");
}
