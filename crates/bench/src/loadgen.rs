//! Load generation for the `mrnet 1` TCP front door.
//!
//! The `loadgen` binary replays a mobility-mined rescue-request stream
//! against a running `serve --listen` process and reports latency and
//! shed-rate figures (`BENCH_serve.json`). This module holds everything
//! the binary shares with the unit tests: the arrival-schedule profiles,
//! the mined request stream, and the report format.
//!
//! The generator is **open-loop**: send times come from the schedule, not
//! from the server's responses, so a slow server faces a growing backlog
//! instead of a politely backing-off client — that is what makes the shed
//! rate an honest overload signal rather than an artifact of coordinated
//! omission.

use mobirescue_core::predictor::mine_rescues;
use mobirescue_core::scenario::Scenario;
use mobirescue_core::training::{busiest_request_day, requests_on_day};
use mobirescue_mobility::map_match::MapMatcher;
use std::fmt::Write as _;

/// The arrival-rate shape of a load run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Constant rate for the whole run.
    Open,
    /// Rate ramps linearly from zero to twice the nominal rate (same
    /// total request count as [`Profile::Open`]).
    Ramp,
    /// Half the nominal rate, with a 4x burst in the middle tenth of the
    /// run — the overload probe.
    Spike,
}

impl Profile {
    /// Parses a profile name as the CLI spells it.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "open" => Some(Self::Open),
            "ramp" => Some(Self::Ramp),
            "spike" => Some(Self::Spike),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Self::Open => "open",
            Self::Ramp => "ramp",
            Self::Spike => "spike",
        }
    }

    /// Send offsets in milliseconds from the start of the run, sorted
    /// ascending. `rate_rps` is the nominal rate; `duration_ms` the run
    /// length. Deterministic — the same arguments always produce the
    /// same schedule.
    pub fn schedule(self, rate_rps: f64, duration_ms: u64) -> Vec<u64> {
        let duration = duration_ms as f64;
        let total = (rate_rps * duration / 1_000.0).floor().max(1.0) as u64;
        match self {
            Self::Open => (0..total)
                .map(|i| (i as f64 * duration / total as f64) as u64)
                .collect(),
            Self::Ramp => {
                // Rate r(t) = 2R·t/D integrates to C(t) = R·t²/D, so the
                // i-th send lands at D·sqrt(i/n).
                (0..total)
                    .map(|i| (duration * (i as f64 / total as f64).sqrt()) as u64)
                    .collect()
            }
            Self::Spike => {
                // Baseline R/2 outside the burst window [45%, 55%), 4R
                // inside it.
                let burst_start = duration * 0.45;
                let burst_end = duration * 0.55;
                let base = rate_rps / 2.0;
                let burst = rate_rps * 4.0;
                let mut offsets = Vec::new();
                let mut t = 0.0;
                while t < duration {
                    offsets.push(t as u64);
                    let rate = if (burst_start..burst_end).contains(&t) {
                        burst
                    } else {
                        base
                    };
                    t += 1_000.0 / rate;
                }
                offsets
            }
        }
    }
}

/// One request of the replayed stream: `(appear_s, segment index)`.
pub type StreamRequest = (u32, u32);

/// The busiest day of the scenario's mined rescue requests, normalized to
/// start at second 0 and sorted by appearance time. The load generator
/// cycles through this stream to label the requests it sends, so the
/// segments offered over the wire are exactly the segments the paper's
/// ground-truth pipeline would produce. Falls back to a deterministic
/// synthetic stream when the scenario mines no rescues.
pub fn mined_stream(scenario: &Scenario) -> Vec<StreamRequest> {
    let rescues = mine_rescues(scenario);
    let mut stream: Vec<StreamRequest> = busiest_request_day(&rescues)
        .map(|day| {
            let matcher = MapMatcher::new(&scenario.city.network);
            requests_on_day(scenario, &matcher, &rescues, day)
                .into_iter()
                .map(|spec| (spec.appear_s, spec.segment.index() as u32))
                .collect()
        })
        .unwrap_or_default();
    if stream.is_empty() {
        let num_segments = scenario.city.network.num_segments() as u32;
        stream = (0..64u32)
            .map(|i| (i * 53, i.wrapping_mul(2_654_435_761) % num_segments))
            .collect();
    }
    stream.sort_unstable();
    let first = stream[0].0;
    for req in &mut stream {
        req.0 -= first;
    }
    stream
}

/// The figures a load run produces — serialized as the flat JSON of
/// `BENCH_serve.json` and gated by `scripts/check_bench.sh`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Arrival profile name.
    pub profile: String,
    /// World served (`small` / `medium` / `charlotte`).
    pub scenario: String,
    /// Nominal request rate asked of the schedule.
    pub target_rps: f64,
    /// Scheduled run length.
    pub duration_ms: u64,
    /// Requests sent.
    pub sent: u64,
    /// Requests ACKed by the server.
    pub acked: u64,
    /// Requests NACKed with reason Shed (queue full).
    pub nacked_shed: u64,
    /// Requests NACKed for any other reason.
    pub nacked_invalid: u64,
    /// Requests never answered before the drain deadline.
    pub lost: u64,
    /// Send rate actually achieved over the wire.
    pub achieved_rps: f64,
    /// `nacked_shed / sent`, percent.
    pub shed_rate_pct: f64,
    /// Client-observed request→ACK round trip, p50.
    pub rtt_p50_ms: u64,
    /// Client-observed request→ACK round trip, p99.
    pub rtt_p99_ms: u64,
    /// Client-observed request→ACK round trip, p99.9.
    pub rtt_p999_ms: u64,
    /// Server-side ingest-to-dispatch latency, p50.
    pub i2d_p50_ms: u64,
    /// Server-side ingest-to-dispatch latency, p99.
    pub i2d_p99_ms: u64,
    /// Server-side ingest-to-dispatch latency, p99.9.
    pub i2d_p999_ms: u64,
    /// The p99 RTT ceiling this run is expected to hold — committed in
    /// the baseline so the gate is self-describing.
    pub p99_slo_ms: u64,
    /// The p99.9 RTT ceiling committed alongside: the tail the p99 gate
    /// cannot see, where fsync stalls and drain hiccups hide.
    pub p999_slo_ms: u64,
    /// The shed-rate ceiling (percent) committed alongside.
    pub max_shed_pct: f64,
}

impl LoadReport {
    /// Flat JSON, one scalar per line — the same shape `BENCH_routing.json`
    /// uses, so `scripts/check_bench.sh` extracts fields with the same
    /// one-line sed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(out, "  \"scenario\": \"{}\",", self.scenario);
        let _ = writeln!(out, "  \"target_rps\": {:.1},", self.target_rps);
        let _ = writeln!(out, "  \"duration_ms\": {},", self.duration_ms);
        let _ = writeln!(out, "  \"sent\": {},", self.sent);
        let _ = writeln!(out, "  \"acked\": {},", self.acked);
        let _ = writeln!(out, "  \"nacked_shed\": {},", self.nacked_shed);
        let _ = writeln!(out, "  \"nacked_invalid\": {},", self.nacked_invalid);
        let _ = writeln!(out, "  \"lost\": {},", self.lost);
        let _ = writeln!(out, "  \"achieved_rps\": {:.1},", self.achieved_rps);
        let _ = writeln!(out, "  \"shed_rate_pct\": {:.2},", self.shed_rate_pct);
        let _ = writeln!(out, "  \"rtt_p50_ms\": {},", self.rtt_p50_ms);
        let _ = writeln!(out, "  \"rtt_p99_ms\": {},", self.rtt_p99_ms);
        let _ = writeln!(out, "  \"rtt_p999_ms\": {},", self.rtt_p999_ms);
        let _ = writeln!(out, "  \"i2d_p50_ms\": {},", self.i2d_p50_ms);
        let _ = writeln!(out, "  \"i2d_p99_ms\": {},", self.i2d_p99_ms);
        let _ = writeln!(out, "  \"i2d_p999_ms\": {},", self.i2d_p999_ms);
        let _ = writeln!(out, "  \"p99_slo_ms\": {},", self.p99_slo_ms);
        let _ = writeln!(out, "  \"p999_slo_ms\": {},", self.p999_slo_ms);
        let _ = writeln!(out, "  \"max_shed_pct\": {:.1}", self.max_shed_pct);
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_core::scenario::ScenarioConfig;

    #[test]
    fn open_schedule_is_uniform_and_sized_by_rate() {
        let offsets = Profile::Open.schedule(100.0, 2_000);
        assert_eq!(offsets.len(), 200);
        assert_eq!(offsets[0], 0);
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(*offsets.last().unwrap() < 2_000);
        // Uniform: consecutive gaps are all 10ms.
        assert!(offsets.windows(2).all(|w| w[1] - w[0] == 10));
    }

    #[test]
    fn ramp_schedule_accelerates() {
        let offsets = Profile::Ramp.schedule(100.0, 2_000);
        assert_eq!(offsets.len(), 200);
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "sorted");
        // More sends in the second half than the first.
        let mid = offsets.iter().filter(|&&t| t < 1_000).count();
        assert!(
            mid < offsets.len() / 3,
            "ramp is back-loaded, got {mid} of {} in the first half",
            offsets.len()
        );
    }

    #[test]
    fn spike_schedule_bursts_in_the_middle_tenth() {
        let offsets = Profile::Spike.schedule(100.0, 2_000);
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "sorted");
        let in_burst = offsets
            .iter()
            .filter(|&&t| (900..1_100).contains(&t))
            .count();
        let before = offsets.iter().filter(|&&t| t < 200).count();
        // 4x rate over 10% of the run vs R/2 elsewhere: the burst window
        // holds ~8x the sends of an equal-length baseline window.
        assert!(
            in_burst >= 4 * before.max(1),
            "burst window has {in_burst} sends vs {before} in an equal baseline window"
        );
    }

    #[test]
    fn schedules_are_deterministic() {
        for profile in [Profile::Open, Profile::Ramp, Profile::Spike] {
            assert_eq!(
                profile.schedule(250.0, 1_500),
                profile.schedule(250.0, 1_500)
            );
        }
    }

    #[test]
    fn mined_stream_is_normalized_sorted_and_in_range() {
        let scenario = ScenarioConfig::small().florence().build(20180914);
        let stream = mined_stream(&scenario);
        assert!(!stream.is_empty());
        assert_eq!(stream[0].0, 0, "appearance times start at zero");
        assert!(stream.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");
        let num_segments = scenario.city.network.num_segments() as u32;
        assert!(stream.iter().all(|&(_, seg)| seg < num_segments));
    }

    #[test]
    fn report_json_is_flat_and_self_describing() {
        let report = LoadReport {
            profile: "open".to_owned(),
            scenario: "small".to_owned(),
            target_rps: 200.0,
            duration_ms: 5_000,
            sent: 1_000,
            acked: 980,
            nacked_shed: 15,
            nacked_invalid: 5,
            lost: 0,
            achieved_rps: 199.6,
            shed_rate_pct: 1.5,
            rtt_p50_ms: 2,
            rtt_p99_ms: 11,
            rtt_p999_ms: 30,
            i2d_p50_ms: 40,
            i2d_p99_ms: 90,
            i2d_p999_ms: 120,
            p99_slo_ms: 250,
            p999_slo_ms: 1_000,
            max_shed_pct: 5.0,
        };
        let json = report.to_json();
        for key in [
            "profile",
            "achieved_rps",
            "shed_rate_pct",
            "rtt_p99_ms",
            "rtt_p999_ms",
            "i2d_p99_ms",
            "p99_slo_ms",
            "p999_slo_ms",
            "max_shed_pct",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        // One scalar per line, so check_bench.sh's sed extractor works.
        assert!(json.lines().any(|l| l.trim() == "\"rtt_p99_ms\": 11,"));
        assert!(json.lines().any(|l| l.trim() == "\"shed_rate_pct\": 1.50,"));
    }
}
