//! Benchmark and figure-regeneration harness.
//!
//! The `figures` binary (`cargo run -p mobirescue-bench --release --bin
//! figures`) reprints every table and figure of the paper's evaluation from
//! a fresh simulation; the criterion benches under `benches/` time the
//! underlying computations (notably the dispatch-latency gap behind
//! Figure 13). [`experiments`] holds one function per table/figure so the
//! binary, the benches and the integration tests share the exact same
//! code.

#![warn(missing_docs)]

pub mod experiments;
pub mod loadgen;
pub mod report;
pub mod svgmap;

pub use experiments::{ExperimentScale, FigureContext};
