//! One function per table/figure of the paper's evaluation.

use crate::report::{cdf_table, heading, series_table};
use mobirescue_core::analysis::DatasetAnalysis;
use mobirescue_core::experiment::{run_comparison, Comparison, ExperimentConfig};
use mobirescue_core::scenario::Scenario;
use mobirescue_mobility::stats::Cdf;
use mobirescue_roadnet::regions::RegionId;

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Seconds: 12×12 city, 300 people, 6 teams.
    Small,
    /// Minutes: 24×24 city, 2,500 people, 60 teams.
    Medium,
    /// The paper's scale: 36×36 city, 8,590 people, 100 teams.
    Paper,
}

impl ExperimentScale {
    /// Parses `small` / `medium` / `paper`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(Self::Small),
            "medium" => Some(Self::Medium),
            "paper" => Some(Self::Paper),
            _ => None,
        }
    }

    /// The experiment configuration at this scale.
    pub fn config(self, seed: u64) -> ExperimentConfig {
        match self {
            Self::Small => ExperimentConfig::small(seed),
            Self::Medium => ExperimentConfig::medium(seed),
            Self::Paper => ExperimentConfig::paper(seed),
        }
    }
}

/// Everything needed to print the figures: the analysis pipeline output
/// and (for Figures 9–16) the full dispatch comparison.
#[derive(Debug)]
pub struct FigureContext {
    scale: ExperimentScale,
    seed: u64,
    florence_own: Option<Scenario>,
    analysis: DatasetAnalysis,
    comparison: Option<Comparison>,
}

impl FigureContext {
    /// Builds only the Section-III analysis (Table I, Figures 2–6).
    pub fn analysis_only(scale: ExperimentScale, seed: u64) -> Self {
        let florence = scale.config(seed).scenario.florence().build(seed);
        let analysis = DatasetAnalysis::run(&florence);
        Self {
            scale,
            seed,
            florence_own: Some(florence),
            analysis,
            comparison: None,
        }
    }

    /// Builds the full context including the dispatch comparison
    /// (Figures 9–16).
    pub fn build_full(scale: ExperimentScale, seed: u64) -> Self {
        let comparison = run_comparison(&scale.config(seed));
        let analysis = DatasetAnalysis::run(&comparison.florence);
        Self {
            scale,
            seed,
            florence_own: None,
            analysis,
            comparison: Some(comparison),
        }
    }

    /// The evaluation scenario.
    pub fn florence(&self) -> &Scenario {
        self.comparison
            .as_ref()
            .map(|c| &c.florence)
            .or(self.florence_own.as_ref())
            .expect("context always holds a scenario")
    }

    /// The dispatch comparison, if this context ran one.
    pub fn comparison(&self) -> Option<&Comparison> {
        self.comparison.as_ref()
    }

    /// The analysis-pipeline output.
    pub fn analysis(&self) -> &DatasetAnalysis {
        &self.analysis
    }

    /// The scale used.
    pub fn scale(&self) -> ExperimentScale {
        self.scale
    }

    /// The seed used.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn timeline(&self) -> mobirescue_disaster::hurricane::Timeline {
        self.florence().hurricane().timeline
    }

    fn day_label(&self, day: u32) -> String {
        self.florence().hurricane().day_label(day)
    }

    /// The least-impacted (highest-altitude) region — the paper's "R1".
    fn r1(&self) -> RegionId {
        self.analysis
            .region_factors
            .iter()
            .max_by(|a, b| {
                a.altitude_m
                    .partial_cmp(&b.altitude_m)
                    .expect("altitudes are never NaN")
            })
            .expect("regions exist")
            .region
    }

    /// Table I.
    pub fn table1(&self) -> String {
        let mut out = heading(
            "Table I",
            "correlation between disaster-related factors and vehicle flow rate",
        );
        out.push('\n');
        match self.analysis.table1(self.florence()) {
            Some(t) => {
                out.push_str(&format!(
                    "paper:    precipitation -0.897   wind -0.781   altitude +0.739\n\
                     measured: precipitation {:+.3}   wind {:+.3}   altitude {:+.3}\n",
                    t.precipitation, t.wind, t.altitude
                ));
            }
            None => out.push_str("measured: undefined (degenerate data)\n"),
        }
        out
    }

    /// Figure 2: hourly flow of R1 vs R2 (downtown) before vs after the
    /// disaster.
    pub fn fig2(&self) -> String {
        let tl = self.timeline();
        let before_day = tl.disaster_start_day.saturating_sub(5);
        let after_day = (tl.disaster_end_day + 4).min(tl.total_days - 1);
        let r1 = self.r1();
        let r2 = self.florence().city.downtown_region();
        let f = self.florence();
        let fmt = |v: Vec<f64>| -> Vec<String> { v.iter().map(|x| format!("{x:.2}")).collect() };
        let xs: Vec<String> = (0..24).map(|h| h.to_string()).collect();
        let mut out = heading(
            "Fig 2",
            "hourly average vehicle flow rate of two regions before vs after disaster",
        );
        out.push_str(&format!(
            "\nR1 = {} (highest altitude), R2 = {} (downtown); before = {}, after = {}\n",
            r1,
            r2,
            self.day_label(before_day),
            self.day_label(after_day)
        ));
        out.push_str(&series_table(
            "hour",
            &xs,
            &[
                (
                    "R1-before",
                    fmt(self.analysis.hourly_region_flow(f, r1, before_day)),
                ),
                (
                    "R1-after",
                    fmt(self.analysis.hourly_region_flow(f, r1, after_day)),
                ),
                (
                    "R2-before",
                    fmt(self.analysis.hourly_region_flow(f, r2, before_day)),
                ),
                (
                    "R2-after",
                    fmt(self.analysis.hourly_region_flow(f, r2, after_day)),
                ),
            ],
        ));
        out
    }

    /// Figure 3: CDF of per-segment |before − after| average flow.
    pub fn fig3(&self) -> String {
        let tl = self.timeline();
        let before = tl.disaster_start_day.saturating_sub(5)..tl.disaster_start_day;
        let after = (tl.disaster_end_day + 1)..(tl.disaster_end_day + 6).min(tl.total_days);
        let cdf = self
            .analysis
            .flow_difference_cdf(self.florence(), before, after);
        let mut out = heading(
            "Fig 3",
            "CDF of per-segment difference of average vehicle flow rate before/after",
        );
        out.push('\n');
        out.push_str(&cdf_table("diff (veh/h)", &[("CDF", &cdf)], 12));
        out
    }

    /// Figure 4: regional distribution of rescued people.
    pub fn fig4(&self) -> String {
        let f = self.florence();
        let xs: Vec<String> = f.city.regions.region_ids().map(|r| r.to_string()).collect();
        let counts: Vec<String> = self
            .analysis
            .rescued_per_region
            .iter()
            .map(|n| n.to_string())
            .collect();
        let density: Vec<String> = f
            .city
            .regions
            .region_ids()
            .map(|r| {
                let n = self.analysis.rescued_per_region[r.index()] as f64;
                let lm = f.city.regions.landmarks_in(r).len().max(1) as f64;
                format!("{:.3}", n / lm)
            })
            .collect();
        let mut out = heading("Fig 4", "region distribution of rescued people");
        out.push('\n');
        out.push_str(&series_table(
            "region",
            &xs,
            &[("rescued", counts), ("per-landmark", density)],
        ));
        out.push_str(&format!("downtown region: {}\n", f.city.downtown_region()));
        out
    }

    /// Figure 5: per-region daily flow before/during/after the disaster.
    pub fn fig5(&self) -> String {
        let tl = self.timeline();
        let f = self.florence();
        let days: Vec<u32> = (tl.disaster_start_day.saturating_sub(3)
            ..(tl.disaster_end_day + 4).min(tl.total_days))
            .collect();
        let xs: Vec<String> = days
            .iter()
            .map(|&d| format!("{} ({})", self.day_label(d), tl.phase_of_day(d)))
            .collect();
        let series: Vec<(String, Vec<String>)> = f
            .city
            .regions
            .region_ids()
            .map(|r| {
                (
                    r.to_string(),
                    days.iter()
                        .map(|&d| {
                            format!(
                                "{:.2}",
                                self.analysis.flow.region_daily_avg(&f.city.regions, r, d)
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        let series_ref: Vec<(&str, Vec<String>)> = series
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        let mut out = heading(
            "Fig 5",
            "vehicle flow rate of each region before, during and after disaster",
        );
        out.push('\n');
        out.push_str(&series_table("day", &xs, &series_ref));
        out
    }

    /// Figure 6: people delivered to hospitals per day.
    pub fn fig6(&self) -> String {
        let tl = self.timeline();
        let xs: Vec<String> = (0..tl.total_days)
            .map(|d| format!("{} ({})", self.day_label(d), tl.phase_of_day(d)))
            .collect();
        let ys: Vec<String> = self
            .analysis
            .deliveries_per_day
            .iter()
            .map(|n| n.to_string())
            .collect();
        let mut out = heading("Fig 6", "# of people delivered to hospitals per day");
        out.push('\n');
        out.push_str(&series_table("day", &xs, &[("delivered", ys)]));
        out
    }

    fn need_comparison(&self) -> &Comparison {
        self.comparison
            .as_ref()
            .expect("this figure needs a full context (FigureContext::build_full)")
    }

    /// Figure 9: total timely served requests per hour, per method.
    pub fn fig9(&self) -> String {
        let cmp = self.need_comparison();
        let hours = cmp.results[0].outcome.config.duration_hours as usize;
        let xs: Vec<String> = (0..hours).map(|h| h.to_string()).collect();
        let series: Vec<(&str, Vec<String>)> = cmp
            .results
            .iter()
            .map(|m| {
                (
                    m.name.as_str(),
                    m.outcome
                        .timely_served_per_hour()
                        .iter()
                        .map(|n| n.to_string())
                        .collect(),
                )
            })
            .collect();
        let mut out = heading(
            "Fig 9",
            "total number of timely served rescue requests per hour",
        );
        out.push_str(&format!(
            "\nexperiment day {} ({}), {} requests, {} teams\n",
            cmp.experiment_day,
            self.day_label(cmp.experiment_day),
            cmp.num_requests,
            cmp.results[0].outcome.config.num_teams
        ));
        out.push_str(&series_table("hour", &xs, &series));
        let totals: Vec<String> = cmp
            .results
            .iter()
            .map(|m| format!("{} {}", m.name, m.outcome.total_timely_served()))
            .collect();
        out.push_str(&format!("totals: {}\n", totals.join(", ")));
        out
    }

    /// Figure 10: CDF of per-team served request counts.
    pub fn fig10(&self) -> String {
        let cmp = self.need_comparison();
        let cdfs: Vec<(String, Cdf)> = cmp
            .results
            .iter()
            .map(|m| (m.name.clone(), m.outcome.served_per_team_cdf()))
            .collect();
        let refs: Vec<(&str, &Cdf)> = cdfs.iter().map(|(n, c)| (n.as_str(), c)).collect();
        let mut out = heading(
            "Fig 10",
            "CDF of the numbers of served rescue requests of rescue teams",
        );
        out.push('\n');
        out.push_str(&cdf_table("served", &refs, 10));
        out
    }

    /// Figure 11: average driving delay per hour, per method (minutes).
    pub fn fig11(&self) -> String {
        let cmp = self.need_comparison();
        let hours = cmp.results[0].outcome.config.duration_hours as usize;
        let xs: Vec<String> = (0..hours).map(|h| h.to_string()).collect();
        let series: Vec<(&str, Vec<String>)> = cmp
            .results
            .iter()
            .map(|m| {
                (
                    m.name.as_str(),
                    m.outcome
                        .avg_driving_delay_per_hour()
                        .iter()
                        .map(|d| match d {
                            Some(s) => format!("{:.1}", s / 60.0),
                            None => "-".to_owned(),
                        })
                        .collect(),
                )
            })
            .collect();
        let mut out = heading("Fig 11", "average driving delay per hour (minutes)");
        out.push('\n');
        out.push_str(&series_table("hour", &xs, &series));
        out
    }

    /// Figure 12: CDF of driving delays (minutes).
    pub fn fig12(&self) -> String {
        let cmp = self.need_comparison();
        let cdfs: Vec<(String, Cdf)> = cmp
            .results
            .iter()
            .map(|m| {
                let minutes: Vec<f64> = m
                    .outcome
                    .requests
                    .iter()
                    .filter_map(|r| r.driving_delay_s)
                    .map(|s| s / 60.0)
                    .collect();
                (m.name.clone(), Cdf::new(minutes))
            })
            .collect();
        let refs: Vec<(&str, &Cdf)> = cdfs.iter().map(|(n, c)| (n.as_str(), c)).collect();
        let mut out = heading("Fig 12", "CDF of driving delays (minutes)");
        out.push('\n');
        out.push_str(&cdf_table("delay (min)", &refs, 10));
        out
    }

    /// Figure 13: CDF of rescue timeliness (minutes, includes dispatch
    /// computation delay).
    pub fn fig13(&self) -> String {
        let cmp = self.need_comparison();
        let cdfs: Vec<(String, Cdf)> = cmp
            .results
            .iter()
            .map(|m| {
                let minutes: Vec<f64> = m
                    .outcome
                    .requests
                    .iter()
                    .filter_map(|r| r.timeliness_s())
                    .map(|s| s as f64 / 60.0)
                    .collect();
                (m.name.clone(), Cdf::new(minutes))
            })
            .collect();
        let refs: Vec<(&str, &Cdf)> = cdfs.iter().map(|(n, c)| (n.as_str(), c)).collect();
        let mut out = heading("Fig 13", "CDF of timeliness of rescuing (minutes)");
        out.push('\n');
        out.push_str(&cdf_table("timeliness (min)", &refs, 10));
        for (name, cdf) in &cdfs {
            if !cdf.is_empty() {
                out.push_str(&format!("{name}: median {:.1} min\n", cdf.quantile(0.5)));
            }
        }
        out
    }

    /// Figure 14: number of serving rescue teams per hour.
    pub fn fig14(&self) -> String {
        let cmp = self.need_comparison();
        let hours = cmp.results[0].outcome.config.duration_hours as usize;
        let xs: Vec<String> = (0..hours).map(|h| h.to_string()).collect();
        let series: Vec<(&str, Vec<String>)> = cmp
            .results
            .iter()
            .map(|m| {
                (
                    m.name.as_str(),
                    m.outcome
                        .avg_serving_teams_per_hour()
                        .iter()
                        .map(|n| format!("{n:.1}"))
                        .collect(),
                )
            })
            .collect();
        let mut out = heading("Fig 14", "number of serving rescue teams per hour");
        out.push('\n');
        out.push_str(&series_table("hour", &xs, &series));
        out
    }

    /// Figure 15: CDF of per-segment prediction accuracy.
    pub fn fig15(&self) -> String {
        let cmp = self.need_comparison();
        let mr = Cdf::new(cmp.prediction_mr.accuracies());
        let rescue = Cdf::new(cmp.prediction_rescue.accuracies());
        let mut out = heading(
            "Fig 15",
            "CDF of prediction accuracies of rescue requests on segments",
        );
        out.push('\n');
        out.push_str(&cdf_table(
            "accuracy",
            &[("MobiRescue", &mr), ("Rescue", &rescue)],
            10,
        ));
        out.push_str(&format!(
            "overall accuracy: MobiRescue {:.3}, Rescue {:.3}\n",
            cmp.prediction_mr.overall.accuracy().unwrap_or(0.0),
            cmp.prediction_rescue.overall.accuracy().unwrap_or(0.0)
        ));
        out
    }

    /// Figure 16: CDF of per-segment prediction precision.
    pub fn fig16(&self) -> String {
        let cmp = self.need_comparison();
        let mr = Cdf::new(cmp.prediction_mr.precisions());
        let rescue = Cdf::new(cmp.prediction_rescue.precisions());
        let mut out = heading(
            "Fig 16",
            "CDF of prediction precisions of rescue requests on segments",
        );
        out.push('\n');
        out.push_str(&cdf_table(
            "precision",
            &[("MobiRescue", &mr), ("Rescue", &rescue)],
            10,
        ));
        out.push_str(&format!(
            "overall precision: MobiRescue {:.3}, Rescue {:.3}\n",
            cmp.prediction_mr.overall.precision().unwrap_or(0.0),
            cmp.prediction_rescue.overall.precision().unwrap_or(0.0)
        ));
        out
    }

    /// Headline summary: the orderings the paper reports, with pass/fail
    /// marks.
    pub fn summary(&self) -> String {
        let cmp = self.need_comparison();
        let get = |name: &str| cmp.method(name);
        let mr = get("MobiRescue");
        let rescue = get("Rescue");
        let schedule = get("Schedule");
        let check = |ok: bool| if ok { "OK " } else { "MISS" };
        let mut out = heading("Summary", "paper orderings vs measured");
        out.push('\n');
        let served = (
            mr.outcome.total_timely_served(),
            rescue.outcome.total_timely_served(),
            schedule.outcome.total_timely_served(),
        );
        out.push_str(&format!(
            "[{}] timely served: MobiRescue > Rescue > Schedule   (measured {} / {} / {})\n",
            check(served.0 > served.1 && served.1 >= served.2),
            served.0,
            served.1,
            served.2
        ));
        let med = |m: &mobirescue_core::experiment::MethodResult| {
            let c = m.outcome.driving_delay_cdf();
            if c.is_empty() {
                f64::INFINITY
            } else {
                c.quantile(0.5)
            }
        };
        let delays = (med(mr), med(rescue), med(schedule));
        out.push_str(&format!(
            "[{}] median driving delay: MobiRescue < Rescue < Schedule   (measured {:.0}s / {:.0}s / {:.0}s)\n",
            check(delays.0 < delays.1 && delays.1 <= delays.2),
            delays.0,
            delays.1,
            delays.2
        ));
        let tmed = |m: &mobirescue_core::experiment::MethodResult| {
            let c = m.outcome.timeliness_cdf();
            if c.is_empty() {
                f64::INFINITY
            } else {
                c.quantile(0.5)
            }
        };
        let t = (tmed(mr), tmed(rescue), tmed(schedule));
        out.push_str(&format!(
            "[{}] median timeliness: MobiRescue << Schedule < Rescue   (measured {:.0}s / {:.0}s / {:.0}s)\n",
            check(t.0 < t.2 && t.2 <= t.1),
            t.0,
            t.2,
            t.1
        ));
        let avg_serving = |m: &mobirescue_core::experiment::MethodResult| {
            let v = m.outcome.avg_serving_teams_per_hour();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let s = (avg_serving(mr), avg_serving(rescue), avg_serving(schedule));
        out.push_str(&format!(
            "[{}] serving teams: MobiRescue < Rescue ≈ Schedule   (measured {:.1} / {:.1} / {:.1})\n",
            check(s.0 < s.1 && s.0 < s.2),
            s.0,
            s.1,
            s.2
        ));
        let acc = (
            cmp.prediction_mr.mean_accuracy(),
            cmp.prediction_rescue.mean_accuracy(),
        );
        out.push_str(&format!(
            "[{}] prediction accuracy (per-segment mean): MobiRescue > Rescue   (measured {:.3} / {:.3})\n",
            check(acc.0 > acc.1),
            acc.0,
            acc.1
        ));
        let prec = (
            cmp.prediction_mr.mean_precision(),
            cmp.prediction_rescue.mean_precision(),
        );
        out.push_str(&format!(
            "[{}] prediction precision (per-segment mean): MobiRescue > Rescue   (measured {:.3} / {:.3})\n",
            check(prec.0 > prec.1),
            prec.0,
            prec.1
        ));
        out
    }

    /// Runs one experiment by id (`table1`, `fig2` … `fig16`, `summary`).
    pub fn run(&self, id: &str) -> Option<String> {
        Some(match id {
            "table1" => self.table1(),
            "fig2" => self.fig2(),
            "fig3" => self.fig3(),
            "fig4" => self.fig4(),
            "fig5" => self.fig5(),
            "fig6" => self.fig6(),
            "fig9" => self.fig9(),
            "fig10" => self.fig10(),
            "fig11" => self.fig11(),
            "fig12" => self.fig12(),
            "fig13" => self.fig13(),
            "fig14" => self.fig14(),
            "fig15" => self.fig15(),
            "fig16" => self.fig16(),
            "summary" => self.summary(),
            _ => return None,
        })
    }

    /// Experiment ids that need only the analysis pipeline.
    pub fn analysis_ids() -> &'static [&'static str] {
        &["table1", "fig2", "fig3", "fig4", "fig5", "fig6"]
    }

    /// Experiment ids that need the dispatch comparison.
    pub fn comparison_ids() -> &'static [&'static str] {
        &[
            "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "summary",
        ]
    }
}
