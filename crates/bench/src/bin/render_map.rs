//! Renders the scenario map (streets, flood, hospitals, rescue requests) to
//! an SVG file.
//!
//! ```text
//! cargo run -p mobirescue-bench --release --bin render_map -- \
//!     [--scale small|medium|paper] [--seed N] [--hour H|peak] [--out map.svg]
//! ```

use mobirescue_bench::svgmap::{render_map, MapStyle};
use mobirescue_bench::ExperimentScale;
use mobirescue_core::predictor::mine_rescues;
use mobirescue_core::scenario::ScenarioConfig;

fn main() {
    let mut scale = ExperimentScale::Small;
    let mut seed = 42u64;
    let mut hour_arg = "peak".to_owned();
    let mut out = "map.svg".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .as_deref()
                    .and_then(ExperimentScale::parse)
                    .unwrap_or(ExperimentScale::Small)
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(42),
            "--hour" => hour_arg = args.next().unwrap_or_default(),
            "--out" => out = args.next().unwrap_or(out),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let base = match scale {
        ExperimentScale::Small => ScenarioConfig::small(),
        ExperimentScale::Medium => ScenarioConfig::medium(),
        ExperimentScale::Paper => ScenarioConfig::charlotte_like(),
    };
    eprintln!("building scenario ...");
    let scenario = base.florence().build(seed);
    let hour = if hour_arg == "peak" {
        scenario.hurricane().timeline.peak_hour() + 18
    } else {
        hour_arg.parse().unwrap_or(0)
    };
    // Mark the day's rescue requests.
    let rescues = mine_rescues(&scenario);
    let markers: Vec<_> = rescues
        .iter()
        .filter(|r| r.request_day() == hour / 24)
        .map(|r| r.request_position)
        .collect();
    let svg = render_map(&scenario, hour, &markers, &MapStyle::default());
    std::fs::write(&out, svg).expect("writing the SVG file");
    eprintln!(
        "wrote {out} (hour {hour}, {} request markers)",
        markers.len()
    );
}
