//! Ablation study over MobiRescue's design choices: SVM prediction on/off,
//! zone granularity, reward weights (α/β/γ of Equation 5), coverage
//! shaping, and online continual training (Section IV-C4).
//!
//! ```text
//! cargo run -p mobirescue-bench --release --bin ablation -- [--scale small|medium] [--seed N]
//! ```

use mobirescue_bench::ExperimentScale;
use mobirescue_core::predictor::{mine_rescues, RequestPredictor};
use mobirescue_core::rl_dispatch::{MobiRescueDispatcher, RlDispatchConfig};
use mobirescue_core::scenario::Scenario;
use mobirescue_core::training::{busiest_request_day, requests_on_day, train_offline};
use mobirescue_mobility::map_match::MapMatcher;
use mobirescue_sim::types::SimConfig;

struct Variant {
    name: &'static str,
    use_predictor: bool,
    online: bool,
    tweak: fn(&mut RlDispatchConfig),
}

fn no_tweak(_: &mut RlDispatchConfig) {}

fn main() {
    let mut scale = ExperimentScale::Small;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .as_deref()
                    .and_then(ExperimentScale::parse)
                    .unwrap_or(ExperimentScale::Small)
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(42),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let config = scale.config(seed);

    eprintln!("building scenarios ...");
    let michael = config.scenario.clone().michael().build(seed);
    let florence = config.scenario.clone().florence().build(seed);
    let matcher = MapMatcher::new(&florence.city.network);
    let rescues = mine_rescues(&florence);
    let day = busiest_request_day(&rescues).expect("florence has rescues");
    let requests = requests_on_day(&florence, &matcher, &rescues, day);
    let predictor = RequestPredictor::train_on(&michael, &config.predictor);
    let mut sim = config.sim.clone();
    sim.start_hour = day * 24;
    eprintln!(
        "evaluation day {day}: {} requests, {} teams",
        requests.len(),
        sim.num_teams
    );

    let variants: Vec<Variant> = vec![
        Variant {
            name: "full MobiRescue",
            use_predictor: true,
            online: true,
            tweak: no_tweak,
        },
        Variant {
            name: "no SVM prediction",
            use_predictor: false,
            online: true,
            tweak: no_tweak,
        },
        Variant {
            name: "no online training",
            use_predictor: true,
            online: false,
            tweak: no_tweak,
        },
        Variant {
            name: "no coverage shaping",
            use_predictor: true,
            online: true,
            tweak: |c| c.shaping_coverage = 0.0,
        },
        Variant {
            name: "coarse zones (k/2)",
            use_predictor: true,
            online: true,
            tweak: |c| c.zone_k = (c.zone_k / 2).max(2),
        },
        Variant {
            name: "fine zones (k*2)",
            use_predictor: true,
            online: true,
            tweak: |c| c.zone_k *= 2,
        },
        Variant {
            name: "alpha/10 (served weight)",
            use_predictor: true,
            online: true,
            tweak: |c| c.alpha /= 10.0,
        },
        Variant {
            name: "beta*10 (delay weight)",
            use_predictor: true,
            online: true,
            tweak: |c| c.beta *= 10.0,
        },
        Variant {
            name: "gamma*25 (fleet weight)",
            use_predictor: true,
            online: true,
            tweak: |c| c.gamma_weight *= 25.0,
        },
        Variant {
            name: "slow exploration (eps*10)",
            use_predictor: true,
            online: true,
            tweak: |c| c.eps_decay_steps *= 10,
        },
    ];

    println!(
        "{:<28} {:>7} {:>7} {:>12} {:>10}",
        "variant", "served", "timely", "median T (s)", "avg teams"
    );
    for v in variants {
        let mut rl = config.rl.clone();
        (v.tweak)(&mut rl);
        let stats = evaluate(
            &michael,
            &florence,
            &requests,
            &predictor,
            rl,
            &sim,
            v.use_predictor,
            v.online,
            config.train_episodes,
        );
        println!(
            "{:<28} {:>7} {:>7} {:>12.0} {:>10.1}",
            v.name, stats.0, stats.1, stats.2, stats.3
        );
    }
}

/// Trains a variant offline on Michael and evaluates it on Florence.
/// Returns `(served, timely, median timeliness s, avg serving teams)`.
#[allow(clippy::too_many_arguments)]
fn evaluate(
    michael: &Scenario,
    florence: &Scenario,
    requests: &[mobirescue_sim::types::RequestSpec],
    predictor: &RequestPredictor,
    rl: RlDispatchConfig,
    sim: &SimConfig,
    use_predictor: bool,
    online: bool,
    episodes: usize,
) -> (usize, usize, f64, f64) {
    let p = use_predictor.then(|| predictor.clone());
    let (policy, _) = train_offline(michael, p.clone(), rl.clone(), sim, episodes);
    let mut dispatcher = MobiRescueDispatcher::with_policy(florence, p, rl, policy);
    dispatcher.set_training(online);
    let outcome = mobirescue_sim::run(
        &florence.city,
        &florence.conditions,
        requests,
        &mut dispatcher,
        sim,
    );
    let median = {
        let c = outcome.timeliness_cdf();
        if c.is_empty() {
            f64::NAN
        } else {
            c.quantile(0.5)
        }
    };
    let serving = outcome.avg_serving_teams_per_hour();
    let avg_serving = serving.iter().sum::<f64>() / serving.len().max(1) as f64;
    (
        outcome.total_served(),
        outcome.total_timely_served(),
        median,
        avg_serving,
    )
}
