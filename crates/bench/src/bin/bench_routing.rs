//! Machine-readable per-epoch routing benchmark (`BENCH_routing.json`).
//!
//! Replays the routing work one dispatch epoch performs on the medium
//! charlotte-like scenario — the cost-matrix shortest-path trees, the
//! point routes of the issued orders, and the nearest-hospital scans —
//! through three implementations:
//!
//! * `naive`: the pre-acceleration code path — a fresh adjacency-list
//!   Dijkstra per query, as the seed's dispatchers and engine did;
//! * `csr`: the flat CSR kernel with an epoch-scoped cost snapshot but no
//!   tree reuse across consumers;
//! * `cached_single_thread` / `cached_parallel`: the [`RoutePlanner`] —
//!   CSR + SSSP cache, prewarmed with one thread or the machine's cores.
//!
//! Every variant folds its answers into a checksum and the run aborts if
//! any disagree, so the timings below are over provably identical results.

use mobirescue_disaster::hurricane::Hurricane;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::generator::CityConfig;
use mobirescue_roadnet::graph::{LandmarkId, RoadNetwork};
use mobirescue_roadnet::routing::Router;
use mobirescue_roadnet::{pool, CsrGraph, RoutePlanner};
use std::time::Instant;

/// Teams routed per epoch (the medium scenario's fleet scale).
const TEAMS: usize = 24;
/// Candidate target landmarks scored by the cost matrix.
const TARGETS: usize = 40;
/// Dispatch epochs per damage generation (5-minute epochs, hourly flood
/// updates).
const EPOCHS_PER_HOUR: usize = 4;
/// Distinct flood hours replayed.
const HOURS: usize = 3;
/// Timed repetitions; the median is reported.
const REPS: usize = 5;

struct Workload {
    teams: Vec<LandmarkId>,
    targets: Vec<LandmarkId>,
    hospitals: Vec<LandmarkId>,
    conditions: Vec<NetworkCondition>,
}

fn workload(net: &RoadNetwork, city: &mobirescue_roadnet::generator::City) -> Workload {
    let scenario = DisasterScenario::new(city, Hurricane::florence(), 7);
    let peak = scenario.hurricane().timeline.peak_hour();
    let n = net.num_landmarks() as u32;
    Workload {
        teams: (0..TEAMS)
            .map(|i| LandmarkId((i as u32 * 37) % n))
            .collect(),
        targets: (0..TARGETS)
            .map(|i| LandmarkId((i as u32 * 61 + 5) % n))
            .collect(),
        hospitals: city.hospitals.clone(),
        conditions: (0..HOURS as u32)
            .map(|h| scenario.network_condition(net, peak + h))
            .collect(),
    }
}

/// One epoch through the seed's per-call Dijkstra path.
fn epoch_naive(router: &Router<'_>, w: &Workload, cond: &NetworkCondition) -> f64 {
    let mut sum = 0.0;
    for (i, &loc) in w.teams.iter().enumerate() {
        let sp = router.shortest_paths_from(cond, loc);
        for &t in &w.targets {
            sum += sp.travel_time_s(t).unwrap_or(0.0);
        }
        if let Some(route) = router.shortest_path(cond, loc, w.targets[i % TARGETS]) {
            sum += route.travel_time_s;
        }
        if let Some((_, t)) = router.nearest_target(cond, loc, &w.hospitals) {
            sum += t;
        }
    }
    sum
}

/// One epoch through the CSR kernel without any tree reuse: each consumer
/// stage recomputes its trees over the epoch's cost snapshot.
fn epoch_csr(net: &RoadNetwork, csr: &CsrGraph, w: &Workload, cond: &NetworkCondition) -> f64 {
    let snap = csr.snapshot_condition(net, cond);
    let mut sum = 0.0;
    for (i, &loc) in w.teams.iter().enumerate() {
        let sp = csr.shortest_paths(&snap, loc);
        for &t in &w.targets {
            sum += sp.travel_time_s(t).unwrap_or(0.0);
        }
        let order = csr.shortest_paths(&snap, loc);
        if let Some(route) = order.route_to(net, w.targets[i % TARGETS]) {
            sum += route.travel_time_s;
        }
        let scan = csr.shortest_paths(&snap, loc);
        let best = w
            .hospitals
            .iter()
            .filter_map(|&h| scan.travel_time_s(h))
            .min_by(|a, b| a.partial_cmp(b).expect("travel times are never NaN"));
        if let Some(t) = best {
            sum += t;
        }
    }
    sum
}

/// One epoch through the shared planner: prewarm the fleet once, answer
/// every consumer from the cache.
fn epoch_cached(
    planner: &RoutePlanner<'_>,
    w: &Workload,
    cond: &NetworkCondition,
    threads: usize,
) -> f64 {
    planner.prewarm(cond, &w.teams, threads);
    let mut sum = 0.0;
    for (i, &loc) in w.teams.iter().enumerate() {
        let sp = planner.paths_from(cond, loc);
        for &t in &w.targets {
            sum += sp.travel_time_s(t).unwrap_or(0.0);
        }
        if let Some(route) = planner.route(cond, loc, w.targets[i % TARGETS]) {
            sum += route.travel_time_s;
        }
        if let Some((_, t)) = planner.nearest_target(cond, loc, &w.hospitals) {
            sum += t;
        }
    }
    sum
}

/// Times `rep` over [`REPS`] runs and returns (median seconds, checksum).
fn measure(mut rep: impl FnMut() -> f64) -> (f64, f64) {
    let mut times = Vec::with_capacity(REPS);
    let mut sum = 0.0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        sum = rep();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are never NaN"));
    (times[REPS / 2], sum)
}

fn main() {
    let mut cfg = CityConfig::charlotte_like();
    cfg.grid_width = 24;
    cfg.grid_height = 24;
    let city = cfg.build(7);
    let net = &city.network;
    let w = workload(net, &city);
    let cores = pool::available_threads();

    let router = Router::new(net);
    let (naive_s, naive_sum) = measure(|| {
        let mut sum = 0.0;
        for cond in &w.conditions {
            for _ in 0..EPOCHS_PER_HOUR {
                sum += epoch_naive(&router, &w, cond);
            }
        }
        sum
    });

    let csr = CsrGraph::build(net);
    let (csr_s, csr_sum) = measure(|| {
        let mut sum = 0.0;
        for cond in &w.conditions {
            for _ in 0..EPOCHS_PER_HOUR {
                sum += epoch_csr(net, &csr, &w, cond);
            }
        }
        sum
    });

    // Fresh planner per rep: every rep starts cold and pays the misses of
    // each hour's generation itself.
    let (cached1_s, cached1_sum) = measure(|| {
        let planner = RoutePlanner::new(net);
        let mut sum = 0.0;
        for cond in &w.conditions {
            for _ in 0..EPOCHS_PER_HOUR {
                sum += epoch_cached(&planner, &w, cond, 1);
            }
        }
        sum
    });
    let (cachedn_s, cachedn_sum) = measure(|| {
        let planner = RoutePlanner::new(net);
        let mut sum = 0.0;
        for cond in &w.conditions {
            for _ in 0..EPOCHS_PER_HOUR {
                sum += epoch_cached(&planner, &w, cond, cores);
            }
        }
        sum
    });

    // The equivalence contract, enforced at benchmark time: nearest-scan
    // folding differs only in iteration shape, so sums must agree exactly
    // enough to rule out a divergent route or distance.
    for (name, sum) in [
        ("csr", csr_sum),
        ("cached_single_thread", cached1_sum),
        ("cached_parallel", cachedn_sum),
    ] {
        assert!(
            (sum - naive_sum).abs() <= naive_sum.abs() * 1e-12,
            "{name} diverged from naive: {sum} vs {naive_sum}"
        );
    }

    let epochs = (HOURS * EPOCHS_PER_HOUR) as f64;
    println!("{{");
    println!("  \"scenario\": \"charlotte_like_medium_24x24_florence_peak\",");
    println!(
        "  \"landmarks\": {}, \"segments\": {}, \"cores\": {},",
        net.num_landmarks(),
        net.num_segments(),
        cores
    );
    println!(
        "  \"teams\": {TEAMS}, \"targets\": {TARGETS}, \"hours\": {HOURS}, \"epochs_per_hour\": {EPOCHS_PER_HOUR}, \"reps\": {REPS},"
    );
    println!("  \"per_epoch_ms\": {{");
    println!("    \"naive\": {:.4},", naive_s * 1e3 / epochs);
    println!("    \"csr\": {:.4},", csr_s * 1e3 / epochs);
    println!(
        "    \"cached_single_thread\": {:.4},",
        cached1_s * 1e3 / epochs
    );
    println!("    \"cached_parallel\": {:.4}", cachedn_s * 1e3 / epochs);
    println!("  }},");
    println!("  \"speedup_vs_naive\": {{");
    println!("    \"csr\": {:.2},", naive_s / csr_s);
    println!("    \"cached_single_thread\": {:.2},", naive_s / cached1_s);
    println!("    \"cached_parallel\": {:.2}", naive_s / cachedn_s);
    println!("  }},");
    // The checksum is the naive variant's folded travel-time sum: pure
    // arithmetic over the seeded scenario in a fixed order, so it is
    // machine-independent. `scripts/check_bench.sh` compares it against
    // the committed baseline — a mismatch means routing *results*
    // changed, not just timings.
    println!("  \"checksum\": {naive_sum:.4},");
    println!("  \"results_identical\": true");
    println!("}}");
}
