//! Open-loop load generator for `serve --listen` (`BENCH_serve.json`).
//!
//! Replays the busiest mined rescue day of the scenario against a running
//! front door at a scheduled arrival rate, measures request→ACK round
//! trips client-side, pulls the server's ingest-to-dispatch percentiles
//! over the wire at the end, and emits the flat JSON report gated by
//! `scripts/check_bench.sh`.

use mobirescue_bench::loadgen::{mined_stream, LoadReport, Profile};
use mobirescue_core::scenario::ScenarioConfig;
use mobirescue_net::{Frame, NackReason, NetClient, NetError};
use mobirescue_obs::Histogram;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Must match the serve binary's scenario seed so the mined stream's
/// segments exist on the server's world.
const SEED: u64 = 20180914;

fn usage() -> String {
    "usage: loadgen --addr HOST:PORT [OPTIONS]

Options:
  --addr HOST:PORT     the serve --listen address (required)
  --rate RPS           nominal request rate (default: 200)
  --duration-ms MS     scheduled run length (default: 5000)
  --profile NAME       arrival shape: open | ramp | spike (default: open)
  --scenario NAME      world the server runs: small | medium | charlotte
                       (default: small; must match the server)
  --slo-ms MS          p99 RTT ceiling stamped into the report (default: 250)
  --p999-slo-ms MS     p99.9 RTT ceiling stamped into the report (default: 1000)
  --max-shed-pct PCT   shed-rate ceiling stamped into the report (default: 5)
  --out FILE           also write the JSON report to FILE
  --acked-ids FILE     write the sorted ids of every ACKed request to FILE,
                       one per line — the durability ledger the WAL crash
                       smoke diffs against a restarted server
  --quiet              suppress progress output
  --help               print this message and exit"
        .to_owned()
}

struct Args {
    addr: String,
    rate: f64,
    duration_ms: u64,
    profile: Profile,
    scenario: String,
    slo_ms: u64,
    p999_slo_ms: u64,
    max_shed_pct: f64,
    out: Option<std::path::PathBuf>,
    acked_ids: Option<std::path::PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        addr: String::new(),
        rate: 200.0,
        duration_ms: 5_000,
        profile: Profile::Open,
        scenario: "small".to_owned(),
        slo_ms: 250,
        p999_slo_ms: 1_000,
        max_shed_pct: 5.0,
        out: None,
        acked_ids: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => parsed.addr = value(&mut args, "--addr")?,
            "--rate" => {
                parsed.rate = value(&mut args, "--rate")?
                    .parse()
                    .ok()
                    .filter(|r: &f64| *r > 0.0)
                    .ok_or("--rate needs a positive number")?;
            }
            "--duration-ms" => {
                parsed.duration_ms = value(&mut args, "--duration-ms")?
                    .parse()
                    .map_err(|_| "--duration-ms needs a positive integer".to_owned())?;
            }
            "--profile" => {
                let name = value(&mut args, "--profile")?;
                parsed.profile = Profile::parse(&name)
                    .ok_or_else(|| format!("unknown profile {name:?} (open, ramp, or spike)"))?;
            }
            "--scenario" => {
                let name = value(&mut args, "--scenario")?;
                if !["small", "medium", "charlotte"].contains(&name.as_str()) {
                    return Err(format!(
                        "unknown scenario {name:?} (expected small, medium, or charlotte)"
                    ));
                }
                parsed.scenario = name;
            }
            "--slo-ms" => {
                parsed.slo_ms = value(&mut args, "--slo-ms")?
                    .parse()
                    .map_err(|_| "--slo-ms needs a positive integer".to_owned())?;
            }
            "--p999-slo-ms" => {
                parsed.p999_slo_ms = value(&mut args, "--p999-slo-ms")?
                    .parse()
                    .map_err(|_| "--p999-slo-ms needs a positive integer".to_owned())?;
            }
            "--max-shed-pct" => {
                parsed.max_shed_pct = value(&mut args, "--max-shed-pct")?
                    .parse()
                    .map_err(|_| "--max-shed-pct needs a number".to_owned())?;
            }
            "--out" => parsed.out = Some(value(&mut args, "--out")?.into()),
            "--acked-ids" => {
                parsed.acked_ids = Some(value(&mut args, "--acked-ids")?.into());
            }
            "--quiet" => parsed.quiet = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if parsed.addr.is_empty() {
        return Err("--addr HOST:PORT is required".to_owned());
    }
    Ok(parsed)
}

/// Shared tallies between the writer (main thread) and the reader thread.
struct Tallies {
    acked: AtomicU64,
    nacked_shed: AtomicU64,
    nacked_invalid: AtomicU64,
    rtt_ms: Histogram,
    /// Send instant of request `id`, as micros since the run epoch;
    /// `u64::MAX` = not sent yet.
    send_us: Vec<AtomicU64>,
    /// Whether request `id` was ACKed — the durability ledger. Every id
    /// flagged here was promised durable by the server; after a crash
    /// and restart, each one must still be accounted for.
    acked_ids: Vec<AtomicBool>,
}

/// Writes the sorted ids of every ACKed request, one per line.
fn write_ledger(path: &std::path::Path, tallies: &Tallies) -> Result<(), String> {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (id, acked) in tallies.acked_ids.iter().enumerate() {
        if acked.load(Ordering::Acquire) {
            let _ = writeln!(out, "{id}");
        }
    }
    std::fs::write(path, out).map_err(|e| format!("write {}: {e}", path.display()))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("loadgen: {message}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    if let Err(message) = run(&args) {
        eprintln!("loadgen: {message}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), String> {
    let addr: std::net::SocketAddr = args
        .addr
        .parse()
        .map_err(|e| format!("bad --addr {:?}: {e}", args.addr))?;

    if !args.quiet {
        eprintln!(
            "loadgen: building the {} scenario and mining the request stream...",
            args.scenario
        );
    }
    let scenario = match args.scenario.as_str() {
        "medium" => ScenarioConfig::medium().florence().build(SEED),
        "charlotte" => ScenarioConfig::charlotte_like().florence().build(SEED),
        _ => ScenarioConfig::small().florence().build(SEED),
    };
    let num_shards_hint = 2u32; // requests round-robin over shards 0..hint
    let stream = mined_stream(&scenario);
    let schedule = args.profile.schedule(args.rate, args.duration_ms);
    let total = schedule.len() as u64;

    let writer_client = NetClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut reader_client = writer_client
        .try_clone()
        .map_err(|e| format!("clone: {e}"))?;
    let mut writer_client = writer_client;

    let tallies = Arc::new(Tallies {
        acked: AtomicU64::new(0),
        nacked_shed: AtomicU64::new(0),
        nacked_invalid: AtomicU64::new(0),
        rtt_ms: Histogram::new(),
        send_us: (0..total).map(|_| AtomicU64::new(u64::MAX)).collect(),
        acked_ids: (0..total).map(|_| AtomicBool::new(false)).collect(),
    });

    let epoch = Instant::now();
    let reader = {
        let tallies = Arc::clone(&tallies);
        std::thread::spawn(move || -> Result<(), NetError> {
            let mut answered = 0u64;
            while answered < total {
                let frame = match reader_client.recv() {
                    Ok(frame) => frame,
                    Err(NetError::ConnectionClosed) => return Ok(()),
                    Err(e) => return Err(e),
                };
                let (id, shed) = match frame {
                    Frame::Ack { id } => (id, false),
                    Frame::Nack { id, reason } => (id, reason == NackReason::Shed),
                    other => {
                        return Err(NetError::Handshake(format!(
                            "unexpected frame from server: {other:?}"
                        )))
                    }
                };
                answered += 1;
                let sent_us = tallies.send_us[id as usize].load(Ordering::Acquire);
                if shed {
                    tallies.nacked_shed.fetch_add(1, Ordering::Relaxed);
                } else if let Frame::Nack { .. } = frame {
                    tallies.nacked_invalid.fetch_add(1, Ordering::Relaxed);
                } else {
                    tallies.acked.fetch_add(1, Ordering::Relaxed);
                    tallies.acked_ids[id as usize].store(true, Ordering::Release);
                    if sent_us != u64::MAX {
                        let now_us = epoch.elapsed().as_micros() as u64;
                        tallies
                            .rtt_ms
                            .record(now_us.saturating_sub(sent_us) / 1_000);
                    }
                }
            }
            Ok(())
        })
    };

    // Open-loop writer: requests go out at the schedule's offsets no
    // matter how the server is doing.
    let mut run_err: Option<String> = None;
    let start = Instant::now();
    for (i, &offset_ms) in schedule.iter().enumerate() {
        let target = Duration::from_millis(offset_ms);
        let elapsed = start.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
        let (appear_s, segment) = stream[i % stream.len()];
        tallies.send_us[i].store(epoch.elapsed().as_micros() as u64, Ordering::Release);
        if let Err(e) = writer_client.send(&Frame::Request {
            id: i as u64,
            shard: i as u32 % num_shards_hint,
            appear_s,
            segment,
        }) {
            // The server vanished mid-run (the crash smoke's kill -9).
            // Stop sending but keep going: the reader drains whatever
            // ACKs made it back, and the ledger below still gets written
            // — knowing what was acked before a crash is its whole point.
            run_err = Some(format!("send: {e}"));
            break;
        }
        if !args.quiet && (i + 1) % 1_000 == 0 {
            eprintln!("loadgen: sent {}/{total}", i + 1);
        }
    }
    let send_span = start.elapsed();

    // Pull the server-side ingest-to-dispatch percentiles on a second
    // connection (the first one's read side belongs to the reader
    // thread), then half-close to let the reader drain to EOF.
    let server = if run_err.is_none() {
        match NetClient::connect(addr).and_then(|mut c| c.pull_metrics()) {
            Ok(report) => Some(report),
            Err(e) => {
                run_err = Some(format!("metrics pull: {e}"));
                None
            }
        }
    } else {
        None
    };
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while !reader.is_finished() && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = writer_client.shutdown_write();
    let reader_result = reader.join().expect("reader thread");

    if let Some(path) = &args.acked_ids {
        write_ledger(path, &tallies)?;
        if !args.quiet {
            eprintln!(
                "loadgen: wrote {} acked id(s) to {}",
                tallies.acked.load(Ordering::Relaxed),
                path.display()
            );
        }
    }
    if let Some(e) = run_err {
        return Err(e);
    }
    if let Err(e) = reader_result {
        return Err(format!("recv: {e}"));
    }
    let server = server.expect("metrics pulled on the healthy path");

    let acked = tallies.acked.load(Ordering::Relaxed);
    let nacked_shed = tallies.nacked_shed.load(Ordering::Relaxed);
    let nacked_invalid = tallies.nacked_invalid.load(Ordering::Relaxed);
    let rtt = tallies.rtt_ms.snapshot();
    let report = LoadReport {
        profile: args.profile.name().to_owned(),
        scenario: args.scenario.clone(),
        target_rps: args.rate,
        duration_ms: args.duration_ms,
        sent: total,
        acked,
        nacked_shed,
        nacked_invalid,
        lost: total - acked - nacked_shed - nacked_invalid,
        achieved_rps: total as f64 / send_span.as_secs_f64(),
        shed_rate_pct: 100.0 * nacked_shed as f64 / total.max(1) as f64,
        rtt_p50_ms: rtt.p50(),
        rtt_p99_ms: rtt.p99(),
        rtt_p999_ms: rtt.p999(),
        i2d_p50_ms: server.i2d_p50,
        i2d_p99_ms: server.i2d_p99,
        i2d_p999_ms: server.i2d_p999,
        p99_slo_ms: args.slo_ms,
        p999_slo_ms: args.p999_slo_ms,
        max_shed_pct: args.max_shed_pct,
    };
    let json = report.to_json();
    print!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, &json).map_err(|e| format!("write {}: {e}", path.display()))?;
        if !args.quiet {
            eprintln!("loadgen: wrote {}", path.display());
        }
    }
    Ok(())
}
