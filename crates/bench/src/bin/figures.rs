//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p mobirescue-bench --release --bin figures -- [--scale small|medium|paper]
//!     [--seed N] [--exp all|analysis|comparison|table1|fig2..fig16|summary]
//! ```

use mobirescue_bench::{ExperimentScale, FigureContext};

fn main() {
    let mut scale = ExperimentScale::Medium;
    let mut seed = 42u64;
    let mut exp = "all".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = ExperimentScale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?} (small|medium|paper)");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--exp" => exp = args.next().unwrap_or_default(),
            "--help" | "-h" => {
                println!(
                    "usage: figures [--scale small|medium|paper] [--seed N] \
                     [--exp all|analysis|comparison|<id>]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let ids: Vec<&str> = match exp.as_str() {
        "all" => FigureContext::analysis_ids()
            .iter()
            .chain(FigureContext::comparison_ids())
            .copied()
            .collect(),
        "analysis" => FigureContext::analysis_ids().to_vec(),
        "comparison" => FigureContext::comparison_ids().to_vec(),
        id => vec![id],
    };
    let needs_comparison = ids
        .iter()
        .any(|id| FigureContext::comparison_ids().contains(id));

    eprintln!("building context (scale {scale:?}, seed {seed}) ...");
    let start = std::time::Instant::now();
    let ctx = if needs_comparison {
        FigureContext::build_full(scale, seed)
    } else {
        FigureContext::analysis_only(scale, seed)
    };
    eprintln!("context ready in {:.1?}", start.elapsed());

    for id in ids {
        match ctx.run(id) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("unknown experiment id {id:?}");
                std::process::exit(2);
            }
        }
    }
}
