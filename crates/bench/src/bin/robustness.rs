//! Seed-sweep robustness check: how often each of the paper's orderings
//! holds across independently generated scenarios.
//!
//! ```text
//! cargo run -p mobirescue-bench --release --bin robustness -- [--scale small|medium] [--seeds N]
//! ```

use mobirescue_bench::ExperimentScale;
use mobirescue_core::experiment::{run_comparison, Comparison};

/// A named invariant checked against every seed's comparison.
type Check = (&'static str, fn(&Comparison) -> bool);

fn main() {
    let mut scale = ExperimentScale::Small;
    let mut seeds = 5u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .as_deref()
                    .and_then(ExperimentScale::parse)
                    .unwrap_or(ExperimentScale::Small)
            }
            "--seeds" => seeds = args.next().and_then(|v| v.parse().ok()).unwrap_or(5),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let checks: Vec<Check> = vec![
        ("timely served: MR > Rescue", |c| {
            c.method("MobiRescue").outcome.total_timely_served()
                > c.method("Rescue").outcome.total_timely_served()
        }),
        ("timely served: MR > Schedule", |c| {
            c.method("MobiRescue").outcome.total_timely_served()
                > c.method("Schedule").outcome.total_timely_served()
        }),
        ("timely served: Rescue >= Schedule", |c| {
            c.method("Rescue").outcome.total_timely_served()
                >= c.method("Schedule").outcome.total_timely_served()
        }),
        ("median timeliness: MR < both baselines", |c| {
            let med = |n: &str| {
                let cdf = c.method(n).outcome.timeliness_cdf();
                if cdf.is_empty() {
                    f64::INFINITY
                } else {
                    cdf.quantile(0.5)
                }
            };
            med("MobiRescue") < med("Rescue") && med("MobiRescue") < med("Schedule")
        }),
        ("median driving delay: MR < Schedule", |c| {
            let med = |n: &str| {
                let cdf = c.method(n).outcome.driving_delay_cdf();
                if cdf.is_empty() {
                    f64::INFINITY
                } else {
                    cdf.quantile(0.5)
                }
            };
            med("MobiRescue") < med("Schedule")
        }),
        ("serving teams: MR < both baselines", |c| {
            let avg = |n: &str| {
                let v = c.method(n).outcome.avg_serving_teams_per_hour();
                v.iter().sum::<f64>() / v.len().max(1) as f64
            };
            avg("MobiRescue") < avg("Rescue") && avg("MobiRescue") < avg("Schedule")
        }),
        ("prediction accuracy: MR > Rescue", |c| {
            c.prediction_mr.mean_accuracy() > c.prediction_rescue.mean_accuracy()
        }),
        ("prediction precision: MR > Rescue", |c| {
            c.prediction_mr.mean_precision() > c.prediction_rescue.mean_precision()
        }),
    ];

    let mut holds = vec![0usize; checks.len()];
    for seed in 1..=seeds {
        eprintln!("seed {seed}/{seeds} ...");
        let cmp = run_comparison(&scale.config(seed));
        for (i, (_, f)) in checks.iter().enumerate() {
            if f(&cmp) {
                holds[i] += 1;
            }
        }
    }

    println!("\nordering robustness over {seeds} seeds at {scale:?} scale:");
    for ((name, _), n) in checks.iter().zip(&holds) {
        println!("  {n}/{seeds}  {name}");
    }
}
