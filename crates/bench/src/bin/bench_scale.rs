//! Machine-readable metro-scale benchmark (`BENCH_scale.json`).
//!
//! Drives the SoA dispatch engine over the preset family's storm window at
//! increasing world sizes and reports, per preset, the dispatch-epoch
//! latency and sustained request throughput, plus the FNV-1a checksum of
//! the final world snapshot. The checksum is pure deterministic arithmetic
//! over the seeded world (no timing feeds it), so it is machine-independent:
//! `scripts/check_bench.sh` compares it against the committed baseline, and
//! a mismatch means the engine's *behavior* changed at scale, not just its
//! speed.
//!
//! The `dispatch_alloc` section measures the per-call allocation fix in the
//! baseline dispatcher: `before` replays the pre-fix dispatch loop (fresh
//! claim table and candidate list every period), `after` uses the shipped
//! scratch-reusing [`NearestRequestDispatcher`]. Both runs must produce
//! bit-identical snapshots before the timings are reported.
//!
//! Usage: `bench_scale [preset ...]` with presets from
//! {`medium`, `metro`, `multi_city`}; no arguments runs `medium metro`.
//! Presets always run with the same seeds/epochs, so a subset run (the CI
//! smoke gates `medium` only) emits rows comparable to a full bless.

use mobirescue_core::scenario::ScenarioConfig;
use mobirescue_disaster::hurricane::Hurricane;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_mobility::flow::HourlyConditions;
use mobirescue_mobility::stream::ResidentStream;
use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::dispatcher::{DispatchState, Dispatcher, NearestRequestDispatcher};
use mobirescue_sim::engine::{fnv1a_64, World};
use mobirescue_sim::types::{DispatchPlan, Order, RequestSpec, SimConfig, TeamView};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// World seed shared by every row (same as the SoA-equivalence pin).
const SEED: u64 = 7;
/// First hour of Florence's landfall ramp (disaster day 12 minus half a
/// day, as in `tests/scale_equivalence.rs`).
const STORM_HOUR: u32 = 276;
/// Requests per road segment, scaled so bigger worlds carry
/// proportionally bigger request streams (floored at 48).
const REQUESTS_PER_KSEG: u32 = 180;
/// Timed repetitions of the alloc before/after comparison; the median is
/// reported.
const ALLOC_REPS: usize = 3;

struct Preset {
    name: &'static str,
    config: ScenarioConfig,
    teams: usize,
    duration_hours: u32,
}

fn presets() -> Vec<Preset> {
    vec![
        Preset {
            name: "medium",
            config: ScenarioConfig::medium(),
            teams: 24,
            duration_hours: 4,
        },
        Preset {
            name: "metro",
            config: ScenarioConfig::metro(),
            teams: 100,
            duration_hours: 2,
        },
        Preset {
            name: "multi_city",
            config: ScenarioConfig::multi_city(),
            teams: 100,
            duration_hours: 2,
        },
    ]
}

/// The pre-fix `NearestRequestDispatcher` dispatch loop, verbatim: a fresh
/// claim table and a fresh free-team candidate list are allocated on every
/// dispatch period. Kept here as the `before` leg of the alloc comparison.
#[derive(Default)]
struct AllocEachCallDispatcher;

impl Dispatcher for AllocEachCallDispatcher {
    fn name(&self) -> &str {
        "NearestRequest"
    }

    fn compute_latency_s(&self, _state: &DispatchState<'_>) -> f64 {
        0.1
    }

    fn dispatch(&mut self, state: &DispatchState<'_>) -> DispatchPlan {
        let mut plan = DispatchPlan::none(state.teams.len());
        let mut claimed = vec![false; state.waiting.len()];
        let free: Vec<&TeamView> = state
            .teams
            .iter()
            .filter(|t| !t.delivering && t.onboard == 0)
            .collect();
        state.prewarm_team_routes(&free);
        for team in free {
            let sp = state.planner.paths_from(state.condition, team.location);
            let target = state
                .waiting
                .iter()
                .enumerate()
                .filter(|(i, _)| !claimed[*i])
                .filter(|(_, r)| sp.travel_time_s(state.net.segment(r.segment).to).is_some())
                .min_by_key(|(_, r)| r.appear_s);
            if let Some((i, r)) = target {
                claimed[i] = true;
                plan.orders[team.id.index()] = Some(Order::GoToSegment(r.segment));
            }
        }
        plan
    }
}

struct WorldRow {
    name: &'static str,
    landmarks: usize,
    segments: usize,
    teams: usize,
    requests: usize,
    epochs: u32,
    build_ms: f64,
    cond_ms_per_hour: f64,
    epoch_ms: f64,
    requests_per_s: f64,
    checksum: u64,
}

struct BuiltWorld {
    city: mobirescue_roadnet::generator::City,
    conditions: HourlyConditions,
    sim: SimConfig,
    specs: Vec<RequestSpec>,
    build_ms: f64,
    cond_ms_per_hour: f64,
}

/// Builds the city, storm-window conditions, and deterministic request
/// stream of one preset (everything reusable across dispatcher runs).
fn build_world(p: &Preset) -> BuiltWorld {
    let t0 = Instant::now();
    let city = p.config.city.build(SEED);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let disaster = DisasterScenario::new(&city, Hurricane::florence(), SEED);
    let t0 = Instant::now();
    let conditions: Vec<NetworkCondition> = (0..p.duration_hours)
        .map(|h| disaster.network_condition(&city.network, STORM_HOUR + h))
        .collect();
    let cond_ms_per_hour = t0.elapsed().as_secs_f64() * 1e3 / f64::from(p.duration_hours);
    let conditions = HourlyConditions::from_conditions(conditions);

    let mut sim = SimConfig::paper(0);
    sim.num_teams = p.teams;
    sim.duration_hours = p.duration_hours;
    sim.sample_positions_every_s = Some(900);

    let n = city.network.num_segments() as u32;
    let num_requests = (n * REQUESTS_PER_KSEG / 1_000).max(48);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5ca1e);
    let horizon = sim.duration_s();
    let specs: Vec<RequestSpec> = (0..num_requests)
        .map(|_| RequestSpec {
            appear_s: rng.random_range(0..horizon * 3 / 4),
            segment: SegmentId(rng.random_range(0..n)),
        })
        .collect();

    BuiltWorld {
        city,
        conditions,
        sim,
        specs,
        build_ms,
        cond_ms_per_hour,
    }
}

/// Steps a fresh world through the whole horizon under `dispatcher`,
/// returning (wall seconds, dispatch epochs covered, final-snapshot
/// checksum). `World::step` is a one-second tick; the epoch count is the
/// number of dispatch periods the horizon spans, which is what the
/// per-epoch latency is normalized by.
fn run_world(b: &BuiltWorld, dispatcher: &mut dyn Dispatcher) -> (f64, u32, u64) {
    let mut world = World::new(&b.city, &b.conditions, &b.sim).expect("window covers horizon");
    world.schedule_requests(&b.specs).expect("valid requests");
    let horizon = b.sim.duration_s();
    let epochs = horizon / b.sim.dispatch_period_s;
    let t0 = Instant::now();
    while world.now_s() < horizon {
        world.step(dispatcher, 0.0);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    (wall_s, epochs, fnv1a_64(&world.snapshot_text()))
}

fn bench_preset(p: &Preset) -> WorldRow {
    let b = build_world(p);
    let (wall_s, epochs, checksum) = run_world(&b, &mut NearestRequestDispatcher::default());
    WorldRow {
        name: p.name,
        landmarks: b.city.network.num_landmarks(),
        segments: b.city.network.num_segments(),
        teams: p.teams,
        requests: b.specs.len(),
        epochs,
        build_ms: b.build_ms,
        cond_ms_per_hour: b.cond_ms_per_hour,
        epoch_ms: wall_s * 1e3 / f64::from(epochs),
        requests_per_s: b.specs.len() as f64 / wall_s,
        checksum,
    }
}

/// Times the streamed resident generator on the metro population and
/// returns (residents, sampled, milliseconds per million residents of the
/// full stream, measured on the sampled stride).
fn bench_mobility_stream() -> (usize, usize, f64) {
    let cfg = ScenarioConfig::metro();
    let city = cfg.city.build(SEED);
    let disaster = DisasterScenario::new(&city, Hurricane::florence(), SEED);
    let stream = ResidentStream::new(&city, &cfg.population, SEED);
    let total = stream.total();
    let sampled = cfg
        .materialize_cap
        .expect("metro preset caps materialization");
    let t0 = Instant::now();
    let out = mobirescue_mobility::stream::generate_streamed(
        &city,
        &disaster,
        &cfg.population,
        SEED,
        sampled,
    );
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(out.total_residents, total);
    // Scale the sampled cost to a full-population estimate per million.
    let per_million_ms = wall_s * 1e3 / out.dataset.num_people() as f64 * 1e6;
    (total, out.dataset.num_people(), per_million_ms)
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are never NaN"));
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() {
        vec!["medium", "metro"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let all = presets();
    for w in &wanted {
        assert!(
            all.iter().any(|p| p.name == *w),
            "unknown preset {w}; choose from medium, metro, multi_city"
        );
    }

    let rows: Vec<WorldRow> = all
        .iter()
        .filter(|p| wanted.contains(&p.name))
        .map(bench_preset)
        .collect();

    // Alloc before/after on the medium preset (the CI-sized world): the
    // pre-fix allocating dispatch loop vs. the scratch-reusing shipped one,
    // over identical worlds, with snapshot equality enforced.
    let alloc = wanted.contains(&"medium").then(|| {
        let p = all
            .iter()
            .find(|p| p.name == "medium")
            .expect("medium preset exists");
        let b = build_world(p);
        let mut before = Vec::with_capacity(ALLOC_REPS);
        let mut after = Vec::with_capacity(ALLOC_REPS);
        let mut before_sum = 0;
        let mut after_sum = 0;
        for _ in 0..ALLOC_REPS {
            let (s, _, sum) = run_world(&b, &mut AllocEachCallDispatcher);
            before.push(s * 1e3);
            before_sum = sum;
            let (s, _, sum) = run_world(&b, &mut NearestRequestDispatcher::default());
            after.push(s * 1e3);
            after_sum = sum;
        }
        assert_eq!(
            before_sum, after_sum,
            "scratch-reusing dispatcher diverged from the allocating baseline"
        );
        (median(&mut before), median(&mut after))
    });

    let (residents, sampled, per_million_ms) = bench_mobility_stream();

    // Fold the per-preset snapshot checksums (in run order) into one
    // results checksum for quick whole-file comparison.
    let combined = rows.iter().fold(String::new(), |mut acc, r| {
        acc.push_str(&format!("{}:{:016x};", r.name, r.checksum));
        acc
    });

    println!("{{");
    println!(
        "  \"seed\": {SEED}, \"storm_hour\": {STORM_HOUR}, \"requests_per_kseg\": {REQUESTS_PER_KSEG},"
    );
    println!("  \"worlds\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("    {{");
        println!("      \"preset\": \"{}\",", r.name);
        println!(
            "      \"landmarks\": {}, \"segments\": {}, \"teams\": {}, \"requests\": {}, \"epochs\": {},",
            r.landmarks, r.segments, r.teams, r.requests, r.epochs
        );
        println!(
            "      \"build_ms\": {:.2}, \"cond_ms_per_hour\": {:.2},",
            r.build_ms, r.cond_ms_per_hour
        );
        println!(
            "      \"epoch_ms\": {:.3}, \"requests_per_s\": {:.1},",
            r.epoch_ms, r.requests_per_s
        );
        println!("      \"checksum\": \"{:016x}\"", r.checksum);
        println!("    }}{comma}");
    }
    println!("  ],");
    if let Some((before_ms, after_ms)) = alloc {
        println!("  \"dispatch_alloc\": {{");
        println!(
            "    \"before_ms\": {:.2}, \"after_ms\": {:.2}, \"speedup\": {:.3}, \"results_identical\": true",
            before_ms,
            after_ms,
            before_ms / after_ms
        );
        println!("  }},");
    }
    println!("  \"mobility_stream\": {{");
    println!(
        "    \"residents\": {residents}, \"sampled\": {sampled}, \"per_million_ms\": {per_million_ms:.0}"
    );
    println!("  }},");
    println!("  \"results_checksum\": \"{:016x}\"", fnv1a_64(&combined));
    println!("}}");
}
