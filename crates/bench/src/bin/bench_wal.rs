//! Fsync-policy cost benchmark for the durable ingest journal.
//!
//! Measures the wall-clock cost of one group-committed append batch
//! under each [`FsyncPolicy`] — `always` pays an fsync per batch before
//! any `Ack` can leave, `epoch` defers it to the epoch boundary, `off`
//! leans on the page cache — and emits the flat informational rows that
//! ride along in `BENCH_serve.json` (the SLO gate does not read them;
//! they document what durability costs on the bless machine).
//!
//! ```text
//! cargo run -p mobirescue-bench --release --bin bench_wal -- \
//!     [--batches N] [--batch-size M]
//! ```

use mobirescue_obs::{Registry, WallTime};
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_serve::{FsyncPolicy, Wal, WalConfig, WalEntry};
use mobirescue_sim::RequestSpec;
use std::sync::Arc;
use std::time::Instant;

/// Appends `batches` batches of `batch_size` entries under `policy` in a
/// fresh temp journal and returns the mean per-batch cost in
/// microseconds.
fn bench_policy(policy: FsyncPolicy, batches: u64, batch_size: usize) -> f64 {
    let dir = std::env::temp_dir().join(format!(
        "mobirescue-benchwal-{}-{}",
        std::process::id(),
        policy.as_str()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = WalConfig::new(&dir);
    cfg.fsync = policy;
    let registry = Registry::new();
    let (mut wal, _recovery) =
        Wal::open(cfg, &registry, Arc::new(WallTime::new())).expect("fresh journal opens");

    let entries: Vec<WalEntry> = (0..batch_size)
        .map(|i| WalEntry {
            clock_ms: i as u64,
            shard: i % 2,
            spec: RequestSpec {
                appear_s: i as u32 * 7,
                segment: SegmentId(i as u32 % 64),
            },
        })
        .collect();
    let start = Instant::now();
    for _ in 0..batches {
        wal.append(&entries).expect("append");
    }
    let elapsed = start.elapsed();
    wal.sync().expect("final flush");
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    elapsed.as_micros() as f64 / batches as f64
}

fn main() {
    let mut batches = 512u64;
    let mut batch_size = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--batches" => batches = args.next().and_then(|v| v.parse().ok()).unwrap_or(512),
            "--batch-size" => batch_size = args.next().and_then(|v| v.parse().ok()).unwrap_or(4),
            "--help" | "-h" => {
                println!("usage: bench_wal [--batches N] [--batch-size M]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("bench_wal: {batches} batches of {batch_size} per policy (group-committed appends)");
    // Flat JSON, one scalar per line — the same shape as the rest of
    // BENCH_serve.json so the sed extractor keeps working.
    println!("{{");
    println!("  \"wal_batch_size\": {batch_size},");
    for (i, policy) in [FsyncPolicy::Always, FsyncPolicy::Epoch, FsyncPolicy::Off]
        .into_iter()
        .enumerate()
    {
        let us = bench_policy(policy, batches, batch_size);
        let comma = if i < 2 { "," } else { "" };
        println!("  \"wal_append_{}_us\": {:.1}{comma}", policy.as_str(), us);
    }
    println!("}}");
}
