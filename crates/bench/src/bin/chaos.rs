//! Seed-sweep chaos check: the dispatch service under deterministic fault
//! schedules, one line of invariant results per seed.
//!
//! ```text
//! cargo run -p mobirescue-bench --release --bin chaos -- \
//!     [--seeds N] [--base-seed S] [--epochs E] [--shards K] \
//!     [--metrics-out FILE]
//! ```
//!
//! Sweeps N seeded fault plans through `mobirescue_serve::chaos::run_chaos`
//! (drop/delay/duplicate/corrupt ingestion, shard stalls and crashes,
//! failed hot-swaps), then runs the crash-replay masking check, the
//! poisoned-checkpoint rollout sweep (NaN weights, wrong dims, and a
//! reward-tanking policy against the guarded promotion pipeline), the
//! trainer fault sweep (transition drops, stale-candidate floods, and
//! boundary crashes against the online training loop), and the WAL fault
//! sweep (kill -9 at arbitrary journal byte offsets, torn appends, bit
//! flips and fsync stalls against the durable ingest journal, over the
//! pinned `CHAOS_SEEDS`). Exits non-zero if any seed breaks an invariant
//! — pipe the output into `robustness_serve.txt` via `scripts/chaos.sh`.

use mobirescue_serve::chaos::{
    crash_replay_divergence, rollout_chaos_divergence, run_chaos, trainer_chaos_divergence,
    wal_chaos_divergence, ChaosOptions, RolloutChaosOptions, TrainerChaosOptions, WalChaosOptions,
    CHAOS_SEEDS,
};

fn main() {
    let mut seeds = 10u64;
    let mut base_seed = 1u64;
    let mut epochs = 6u32;
    let mut shards = 2usize;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => seeds = args.next().and_then(|v| v.parse().ok()).unwrap_or(10),
            "--base-seed" => base_seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "--epochs" => epochs = args.next().and_then(|v| v.parse().ok()).unwrap_or(6),
            "--shards" => shards = args.next().and_then(|v| v.parse().ok()).unwrap_or(2),
            "--metrics-out" => metrics_out = args.next().map(std::path::PathBuf::from),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    println!(
        "chaos sweep: {seeds} seeds from {base_seed}, {epochs} epochs x {shards} shards per run"
    );
    let mut failures = 0u64;
    let mut last_obs = None;
    for seed in base_seed..base_seed + seeds {
        let opts = ChaosOptions::seeded(seed, epochs, shards);
        match run_chaos(seed, &opts) {
            Ok(outcome) => {
                println!("{}", outcome.summary());
                if !outcome.ok() {
                    failures += 1;
                }
                last_obs = Some(outcome.obs);
            }
            Err(e) => {
                println!("seed {seed:>4}: service error: {e} -> FAIL");
                failures += 1;
            }
        }
    }

    print!("crash-replay masking (crashes at (0,0), (2,1), (4,0)): ");
    match crash_replay_divergence(
        &[(0, 0), (2, 1.min(shards - 1)), (4, 0)],
        epochs.max(5),
        shards,
    ) {
        Ok(divergences) if divergences.is_empty() => {
            println!("bit-identical to the unfaulted reference -> OK");
        }
        Ok(divergences) => {
            println!("DIVERGED -> FAIL");
            for d in &divergences {
                println!("  {d}");
            }
            failures += 1;
        }
        Err(e) => {
            println!("service error: {e} -> FAIL");
            failures += 1;
        }
    }

    println!("rollout chaos (poisoned checkpoints vs the guarded pipeline):");
    for seed in base_seed..base_seed + seeds.min(5) {
        let opts = RolloutChaosOptions::standard(shards);
        match rollout_chaos_divergence(seed, &opts) {
            Ok(divergences) if divergences.is_empty() => {
                println!("  seed {seed:>4}: poisoned twin bit-identical to clean run -> OK");
            }
            Ok(divergences) => {
                println!("  seed {seed:>4}: VIOLATED -> FAIL");
                for d in &divergences {
                    println!("    {d}");
                }
                failures += 1;
            }
            Err(e) => {
                println!("  seed {seed:>4}: service error: {e} -> FAIL");
                failures += 1;
            }
        }
    }

    println!("trainer chaos (drops, stale floods, boundary crashes vs the learning loop):");
    for seed in base_seed..base_seed + seeds.min(5) {
        let opts = TrainerChaosOptions::standard(shards);
        match trainer_chaos_divergence(seed, &opts) {
            Ok(divergences) if divergences.is_empty() => {
                println!(
                    "  seed {seed:>4}: conservation held, floods blocked, crash twin bit-identical -> OK"
                );
            }
            Ok(divergences) => {
                println!("  seed {seed:>4}: VIOLATED -> FAIL");
                for d in &divergences {
                    println!("    {d}");
                }
                failures += 1;
            }
            Err(e) => {
                println!("  seed {seed:>4}: service error: {e} -> FAIL");
                failures += 1;
            }
        }
    }

    // The WAL arm runs the pinned seed set (the same CHAOS_SEEDS constant
    // the test suites iterate) rather than the sweep range: crash-at-any-
    // byte recovery is a pinned contract, not a coverage lottery.
    println!("wal chaos (kill -9 at any journal byte, torn tails, bit flips, fsync stalls):");
    for seed in CHAOS_SEEDS {
        let opts = WalChaosOptions::standard(shards);
        match wal_chaos_divergence(seed, &opts) {
            Ok(divergences) if divergences.is_empty() => {
                println!(
                    "  seed {seed:>4}: crash twin bit-identical, corruption refused typed -> OK"
                );
            }
            Ok(divergences) => {
                println!("  seed {seed:>4}: VIOLATED -> FAIL");
                for d in &divergences {
                    println!("    {d}");
                }
                failures += 1;
            }
            Err(e) => {
                println!("  seed {seed:>4}: service error: {e} -> FAIL");
                failures += 1;
            }
        }
    }

    // Each chaos run owns a private registry (twins must stay
    // comparable), so the dump covers the last completed seed.
    if let Some(path) = &metrics_out {
        match &last_obs {
            Some(obs) => match std::fs::write(path, obs.to_text()) {
                Ok(()) => println!("wrote mrobs 1 metrics dump to {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write {}: {e}", path.display());
                    failures += 1;
                }
            },
            None => eprintln!("no completed seed; nothing to dump"),
        }
    }

    if failures > 0 {
        println!("chaos sweep: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("chaos sweep: all invariants held");
}
