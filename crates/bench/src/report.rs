//! Plain-text reporting helpers for the figure harness.

use std::fmt::Write as _;

/// Renders a header line for one experiment.
pub fn heading(id: &str, title: &str) -> String {
    format!("\n== {id}: {title} ==")
}

/// Renders an `(x, y…)` multi-series table with a header row.
///
/// # Panics
///
/// Panics if a series length differs from `xs`.
pub fn series_table(x_label: &str, xs: &[String], series: &[(&str, Vec<String>)]) -> String {
    for (name, ys) in series {
        assert_eq!(ys.len(), xs.len(), "series {name} has wrong length");
    }
    let mut out = String::new();
    let widths: Vec<usize> = std::iter::once(
        xs.iter()
            .map(String::len)
            .chain([x_label.len()])
            .max()
            .unwrap_or(4),
    )
    .chain(series.iter().map(|(name, ys)| {
        ys.iter()
            .map(String::len)
            .chain([name.len()])
            .max()
            .unwrap_or(4)
    }))
    .collect();
    let _ = write!(out, "{:>w$}", x_label, w = widths[0]);
    for (i, (name, _)) in series.iter().enumerate() {
        let _ = write!(out, "  {:>w$}", name, w = widths[i + 1]);
    }
    let _ = writeln!(out);
    for (r, x) in xs.iter().enumerate() {
        let _ = write!(out, "{:>w$}", x, w = widths[0]);
        for (i, (_, ys)) in series.iter().enumerate() {
            let _ = write!(out, "  {:>w$}", ys[r], w = widths[i + 1]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Formats a CDF as ~`points` sampled `(x, F)` rows.
pub fn cdf_rows(cdf: &mobirescue_mobility::stats::Cdf, points: usize) -> Vec<(String, String)> {
    cdf.sampled_points(points)
        .into_iter()
        .map(|(x, f)| (format!("{x:.1}"), format!("{f:.3}")))
        .collect()
}

/// Formats several CDFs over a shared x grid.
pub fn cdf_table(
    x_label: &str,
    cdfs: &[(&str, &mobirescue_mobility::stats::Cdf)],
    points: usize,
) -> String {
    // Shared grid over the union of ranges.
    let lo = cdfs
        .iter()
        .filter_map(|(_, c)| c.min())
        .fold(f64::INFINITY, f64::min);
    let hi = cdfs
        .iter()
        .filter_map(|(_, c)| c.max())
        .fold(f64::NEG_INFINITY, f64::max);
    if !lo.is_finite() || !hi.is_finite() {
        return format!("{x_label}: (no samples)\n");
    }
    let xs: Vec<f64> = (0..=points)
        .map(|i| lo + (hi - lo) * i as f64 / points as f64)
        .collect();
    let x_strs: Vec<String> = xs.iter().map(|x| format!("{x:.1}")).collect();
    let series: Vec<(&str, Vec<String>)> = cdfs
        .iter()
        .map(|(name, c)| {
            (
                *name,
                xs.iter()
                    .map(|&x| format!("{:.3}", c.fraction_at_or_below(x)))
                    .collect(),
            )
        })
        .collect();
    series_table(x_label, &x_strs, &series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_mobility::stats::Cdf;

    #[test]
    fn series_table_aligns_columns() {
        let out = series_table(
            "hour",
            &["0".into(), "1".into()],
            &[
                ("MR", vec!["10".into(), "20".into()]),
                ("Schedule", vec!["1".into(), "2".into()]),
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("MR") && lines[0].contains("Schedule"));
    }

    #[test]
    fn cdf_table_handles_empty() {
        let empty = Cdf::new(vec![]);
        let out = cdf_table("x", &[("e", &empty)], 4);
        assert!(out.contains("no samples"));
    }

    #[test]
    fn cdf_table_spans_union_range() {
        let a = Cdf::new(vec![0.0, 1.0]);
        let b = Cdf::new(vec![5.0, 10.0]);
        let out = cdf_table("x", &[("a", &a), ("b", &b)], 2);
        assert!(out.contains("10.0"), "{out}");
        assert!(out.contains("0.0"));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn mismatched_series_rejected() {
        let _ = series_table("x", &["0".into()], &[("bad", vec![])]);
    }
}
