//! Dependency-free SVG rendering of the city, its flood state and rescue
//! activity — the visual counterpart of the paper's Figures 1 and 4.

use mobirescue_core::scenario::Scenario;
use mobirescue_roadnet::geo::GeoPoint;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapStyle {
    /// Output width in pixels (height follows the bounding-box aspect).
    pub width_px: f64,
    /// Stroke width for residential streets.
    pub street_px: f64,
    /// Draw the flood raster under the streets.
    pub show_flood: bool,
    /// Draw hospitals and the depot.
    pub show_facilities: bool,
}

impl Default for MapStyle {
    fn default() -> Self {
        Self {
            width_px: 900.0,
            street_px: 1.0,
            show_flood: true,
            show_facilities: true,
        }
    }
}

/// Renders the scenario at `hour` as an SVG document. `markers` are extra
/// highlighted positions (e.g. the hour's rescue requests).
pub fn render_map(
    scenario: &Scenario,
    hour: u32,
    markers: &[GeoPoint],
    style: &MapStyle,
) -> String {
    let net = &scenario.city.network;
    let bbox = net
        .bounding_box()
        .expect("city network is non-empty")
        .expanded_m(300.0);
    let (width_m, height_m) = bbox.north_east.local_xy_m(bbox.south_west);
    let scale = style.width_px / width_m;
    let height_px = height_m * scale;
    let project = |p: GeoPoint| -> (f64, f64) {
        let (e, n) = p.local_xy_m(bbox.south_west);
        (e * scale, height_px - n * scale) // SVG y grows downward
    };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"##,
        style.width_px, height_px, style.width_px, height_px
    );
    let _ = writeln!(
        svg,
        r##"<rect width="100%" height="100%" fill="#fcfbf7"/>"##
    );

    // Flood raster as translucent cells.
    if style.show_flood {
        let cells = 40usize;
        let cell_w = style.width_px / cells as f64;
        let cell_h = height_px / cells as f64;
        for r in 0..cells {
            for c in 0..cells {
                let east = (c as f64 + 0.5) / cells as f64 * width_m;
                let north = (1.0 - (r as f64 + 0.5) / cells as f64) * height_m;
                let p = bbox.south_west.offset_m(east, north);
                let depth = scenario.disaster.flood().depth_m(p, hour);
                if depth > 0.05 {
                    let alpha = (depth / 0.8).clamp(0.08, 0.75);
                    let _ = writeln!(
                        svg,
                        r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#3b82c4" fill-opacity="{alpha:.2}"/>"##,
                        c as f64 * cell_w,
                        r as f64 * cell_h,
                        cell_w + 0.5,
                        cell_h + 0.5,
                    );
                }
            }
        }
    }

    // Streets, colored by class; flooded (inoperable) segments in red.
    let condition = scenario.disaster.network_condition(net, hour);
    for seg in net.segments() {
        // Draw each two-way pair once.
        if seg.from.0 > seg.to.0 {
            continue;
        }
        let (x1, y1) = project(net.landmark(seg.from).position);
        let (x2, y2) = project(net.landmark(seg.to).position);
        let (color, width) = if !condition.is_operable(seg.id) {
            ("#d64541", style.street_px * 1.3)
        } else {
            match seg.class {
                mobirescue_roadnet::graph::RoadClass::Motorway => {
                    ("#7a6df0", style.street_px * 2.4)
                }
                mobirescue_roadnet::graph::RoadClass::Arterial => {
                    ("#9a9a9a", style.street_px * 1.6)
                }
                mobirescue_roadnet::graph::RoadClass::Residential => ("#c9c4b8", style.street_px),
            }
        };
        let _ = writeln!(
            svg,
            r##"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{color}" stroke-width="{width:.1}"/>"##
        );
    }

    // Facilities.
    if style.show_facilities {
        for &h in &scenario.city.hospitals {
            let (x, y) = project(net.landmark(h).position);
            let _ = writeln!(
                svg,
                r##"<circle cx="{x:.1}" cy="{y:.1}" r="5" fill="#ffffff" stroke="#c2303a" stroke-width="2.5"/>"##
            );
        }
        let (x, y) = project(net.landmark(scenario.city.depot).position);
        let _ = writeln!(
            svg,
            r##"<rect x="{:.1}" y="{:.1}" width="10" height="10" fill="#2d2a26"/>"##,
            x - 5.0,
            y - 5.0
        );
    }

    // Extra markers (rescue requests).
    for &m in markers {
        let (x, y) = project(m);
        let _ = writeln!(
            svg,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="3.5" fill="#e8a33d" stroke="#2d2a26" stroke-width="0.8"/>"##
        );
    }

    let label = format!(
        "{} — {} h{:02}",
        scenario.hurricane().name,
        scenario.hurricane().day_label(hour / 24),
        hour % 24
    );
    let _ = writeln!(
        svg,
        r##"<text x="12" y="22" font-family="sans-serif" font-size="15" fill="#2d2a26">{label}</text>"##
    );
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_core::scenario::ScenarioConfig;

    fn scenario() -> Scenario {
        ScenarioConfig::small().florence().build(33)
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let s = scenario();
        let svg = render_map(&s, 24, &[], &MapStyle::default());
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One line per two-way pair.
        let lines = svg.matches("<line ").count();
        assert_eq!(lines, s.city.network.num_segments() / 2);
        // Hospitals + depot drawn.
        assert_eq!(svg.matches("<circle ").count(), s.city.hospitals.len());
        assert!(svg.contains("Florence"));
    }

    #[test]
    fn flood_appears_only_during_the_disaster() {
        let s = scenario();
        let calm = render_map(&s, 24, &[], &MapStyle::default());
        let peak = s.hurricane().timeline.peak_hour() + 24;
        let flooded = render_map(&s, peak, &[], &MapStyle::default());
        let water = |svg: &str| svg.matches("fill=\"#3b82c4\"").count();
        assert_eq!(water(&calm), 0, "water rendered on a dry day");
        assert!(water(&flooded) > 10, "no water at the flood peak");
        // Inoperable streets show up red.
        assert!(flooded.contains("#d64541"));
        assert!(!calm.contains("#d64541"));
    }

    #[test]
    fn markers_are_drawn_on_top() {
        let s = scenario();
        let markers = vec![s.city.center, s.city.center.offset_m(1_000.0, 500.0)];
        let svg = render_map(&s, 24, &markers, &MapStyle::default());
        assert_eq!(svg.matches("#e8a33d").count(), markers.len());
    }

    #[test]
    fn style_flags_disable_layers() {
        let s = scenario();
        let style = MapStyle {
            show_flood: false,
            show_facilities: false,
            ..Default::default()
        };
        let peak = s.hurricane().timeline.peak_hour();
        let svg = render_map(&s, peak, &[], &style);
        assert_eq!(svg.matches("fill=\"#3b82c4\"").count(), 0);
        assert_eq!(svg.matches("<circle ").count(), 0);
    }
}
