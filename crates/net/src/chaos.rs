//! The front-door chaos harness: a real TCP listener driven by a
//! deliberately misbehaving client executing a seeded [`ConnFault`]
//! schedule, with end-to-end conservation accounting.
//!
//! The central claim the harness checks is **overload honesty**: every
//! frame the client offers is either answered on the wire (Ack or typed
//! Nack) or was *deliberately destroyed by a scheduled fault* — and the
//! server's own counters agree with the client's independent tally.
//! Concretely, with `max_retries` retries configured:
//!
//! 1. `completed == acked + nacked_shed + nacked_invalid` — every
//!    surviving offer gets exactly one reply;
//! 2. `offered == completed + lost` — frames destroyed by
//!    mid-frame-disconnect / slow-loris faults, and nothing else, go
//!    unanswered;
//! 3. `queue_shed == nacked_shed + ingest_retries` — each failed queue
//!    push either surfaced as a NACK or was re-offered by the bounded
//!    retry (with `max_retries: 0` the NACK count *equals* the queues'
//!    shed counters);
//! 4. `queue_accepted == acked` — no request is duplicated or lost
//!    between the socket and the shard queues;
//! 5. `server.frames_decoded == completed + metrics_pulls` and every
//!    destroyed frame is counted in `net.frames_rejected`.
//!
//! The service runs on a [`SimClock`] (all recorded latencies are
//! exactly zero) and the fault schedule is a pure function of the seed,
//! so a run's accounting reproduces exactly; only socket timing varies,
//! and no invariant depends on it.

use crate::client::NetClient;
use crate::listener::{NetConfig, NetServer};
use crate::wire::{Frame, MetricsReport, NackReason};
use mobirescue_serve::chaos::chaos_scenario;
use mobirescue_serve::{
    Clock, ConnFault, DispatchService, FaultCounters, FaultInjector, FaultPlanConfig,
    ModelRegistry, RetryPolicy, ServeConfig, SimClock,
};
use mobirescue_sim::SimConfig;
use std::collections::BTreeSet;
use std::sync::Arc;

/// What a front-door chaos run should look like.
#[derive(Debug, Clone)]
pub struct NetChaosOptions {
    /// Request frames the misbehaving client offers.
    pub offers: usize,
    /// Dispatch epochs interleaved into the offer stream (one per this
    /// many offers).
    pub epoch_every: usize,
    /// Request queue capacity (small enough to force sheds).
    pub queue_capacity: usize,
    /// Ingestion retries per shed offer (0 ⇒ NACKs equal shed counters).
    pub max_retries: u32,
}

impl Default for NetChaosOptions {
    fn default() -> Self {
        Self {
            offers: 60,
            epoch_every: 8,
            queue_capacity: 4,
            max_retries: 0,
        }
    }
}

/// Everything a front-door chaos run produced.
#[derive(Debug)]
pub struct NetChaosReport {
    /// Frames the client attempted to offer.
    pub offered: u64,
    /// Offers that produced a reply on the wire.
    pub completed: u64,
    /// Replies that were Acks.
    pub acked: u64,
    /// Replies that were `Shed` NACKs.
    pub nacked_shed: u64,
    /// Replies that were invalid-request NACKs (unknown shard/segment).
    pub nacked_invalid: u64,
    /// Offers destroyed by a scheduled connection fault (mid-frame
    /// disconnect or slow-loris close), hence legitimately unanswered.
    pub lost: u64,
    /// Metrics pulls issued (each is one extra decoded frame).
    pub metrics_pulls: u64,
    /// `true` iff no Ack id was ever seen twice.
    pub acked_ids_unique: bool,
    /// Total accepted by the shard queues.
    pub queue_accepted: u64,
    /// Total shed by the shard queues.
    pub queue_shed: u64,
    /// Server-side ingestion retries.
    pub ingest_retries: u64,
    /// The server's own counters, pulled over the wire at the end.
    pub server: MetricsReport,
    /// Connection faults that actually fired.
    pub faults: FaultCounters,
    /// Broken invariants (empty on a clean run).
    pub violations: Vec<String>,
}

impl NetChaosReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// A one-line report for sweep output.
    pub fn summary(&self) -> String {
        format!(
            "offered {} completed {} (ack {} shed {} invalid {}) lost {} | faults: disc {} torn {} loris {} | queue acc {} shed {} retries {} -> {}",
            self.offered,
            self.completed,
            self.acked,
            self.nacked_shed,
            self.nacked_invalid,
            self.lost,
            self.faults.conn_disconnects,
            self.faults.conn_torn_writes,
            self.faults.conn_slow_loris,
            self.queue_accepted,
            self.queue_shed,
            self.ingest_retries,
            if self.ok() { "OK" } else { "FAIL" },
        )
    }
}

/// Runs a listener under a seeded misbehaving client and checks the
/// conservation invariants.
///
/// # Panics
///
/// Panics when the service or listener cannot start at all (no route to
/// localhost) — environmental, not an invariant under test.
pub fn run_net_chaos(seed: u64, opts: &NetChaosOptions) -> NetChaosReport {
    let scenario = Arc::new(chaos_scenario());
    let epochs = (opts.offers / opts.epoch_every.max(1) + 2) as u32;
    let injector = FaultInjector::from_seed(seed, &FaultPlanConfig::net_chaos(epochs, 2));
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = 2;
    config.request_queue_capacity = opts.queue_capacity;
    // The injector stays client-side: it only schedules *connection*
    // faults, applied at the socket. The service itself runs unfaulted
    // so wire-level accounting is exact.
    config.faults = None;
    let clock: Arc<SimClock> = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let service = Arc::new(
        DispatchService::start(
            scenario.clone(),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
            registry,
        )
        .expect("chaos service starts"),
    );
    let mut net_cfg = NetConfig::new("127.0.0.1:0");
    net_cfg.frame_timeout_ms = 150;
    net_cfg.poll_interval_ms = 5;
    net_cfg.retry = RetryPolicy {
        max_retries: opts.max_retries,
        base_backoff_ms: 1,
        backoff_multiplier: 2,
    };
    let mut server = NetServer::start(
        Arc::clone(&service),
        Arc::clone(&clock) as Arc<dyn Clock>,
        net_cfg,
    )
    .expect("listener binds on localhost");
    let addr = server.local_addr();
    let segments = scenario.city.network.num_segments() as u32;

    let mut violations: Vec<String> = Vec::new();
    let mut client = NetClient::connect(addr).expect("chaos client connects");
    let (mut completed, mut acked, mut nacked_shed, mut nacked_invalid, mut lost) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut acked_ids: BTreeSet<u64> = BTreeSet::new();
    let mut acked_ids_unique = true;

    for i in 0..opts.offers {
        // A sprinkling of invalid requests keeps the typed-NACK paths
        // hot: every 13th offer names a segment the city does not have,
        // every 17th a shard the service does not host.
        let (shard, segment) = if i % 17 == 9 {
            (7, (i as u32) % segments)
        } else if i % 13 == 5 {
            (i as u32 % 2, u32::MAX)
        } else {
            (i as u32 % 2, (i as u32 * 31) % segments)
        };
        let frame = Frame::Request {
            id: i as u64,
            shard,
            appear_s: (i as u32 * 37) % 3_600,
            segment,
        };
        let bytes = frame.encode();
        match injector.next_conn_fault() {
            None => {
                client.send_raw(&bytes).expect("send");
                track_reply(
                    client.recv(),
                    i as u64,
                    &mut completed,
                    &mut acked,
                    &mut nacked_shed,
                    &mut nacked_invalid,
                    &mut acked_ids,
                    &mut acked_ids_unique,
                    &mut violations,
                );
            }
            Some(ConnFault::TornWrite) => {
                // The frame arrives in two flushes with a pause between:
                // the listener must reassemble and reply normally.
                let mid = bytes.len() / 2;
                client
                    .send_raw(&bytes[..mid])
                    .expect("send torn first half");
                std::thread::sleep(std::time::Duration::from_millis(10));
                client
                    .send_raw(&bytes[mid..])
                    .expect("send torn second half");
                track_reply(
                    client.recv(),
                    i as u64,
                    &mut completed,
                    &mut acked,
                    &mut nacked_shed,
                    &mut nacked_invalid,
                    &mut acked_ids,
                    &mut acked_ids_unique,
                    &mut violations,
                );
            }
            Some(ConnFault::MidFrameDisconnect) => {
                // Half a frame, then hang up. The torso must be counted
                // rejected, never admitted.
                let _ = client.send_raw(&bytes[..bytes.len() / 2]);
                drop(client);
                lost += 1;
                client = NetClient::connect(addr).expect("reconnect after disconnect");
            }
            Some(ConnFault::SlowLoris) => {
                // Trickle three header bytes and stall: the server's
                // frame deadline must close the connection.
                let _ = client.send_raw(&bytes[..3]);
                if client.recv().is_ok() {
                    violations.push(format!(
                        "offer {i}: server replied to a stalled partial header"
                    ));
                }
                lost += 1;
                client = NetClient::connect(addr).expect("reconnect after slow-loris");
            }
        }
        if (i + 1) % opts.epoch_every.max(1) == 0 {
            server.epoch_started();
            service.run_epoch().expect("epoch under chaos");
            server.epoch_finished();
        }
    }

    // Final drain epoch, then pull the server's view over the wire.
    server.epoch_started();
    service.run_epoch().expect("final epoch");
    server.epoch_finished();
    let server_report = client.pull_metrics().expect("metrics pull");
    let metrics_pulls = 1u64;
    drop(client);
    server.shutdown();

    let service_metrics = service.metrics();
    let report = NetChaosReport {
        offered: opts.offers as u64,
        completed,
        acked,
        nacked_shed,
        nacked_invalid,
        lost,
        metrics_pulls,
        acked_ids_unique,
        queue_accepted: service_metrics.requests_accepted,
        queue_shed: service_metrics.requests_shed,
        ingest_retries: service_metrics.ingest_retries,
        server: server_report,
        faults: injector.counters(),
        violations,
    };
    check_invariants(report)
}

#[allow(clippy::too_many_arguments)]
fn track_reply(
    reply: Result<Frame, crate::error::NetError>,
    id: u64,
    completed: &mut u64,
    acked: &mut u64,
    nacked_shed: &mut u64,
    nacked_invalid: &mut u64,
    acked_ids: &mut BTreeSet<u64>,
    acked_ids_unique: &mut bool,
    violations: &mut Vec<String>,
) {
    match reply {
        Ok(Frame::Ack { id: got }) => {
            *completed += 1;
            *acked += 1;
            if got != id {
                violations.push(format!("ack id {got} for request {id}"));
            }
            if !acked_ids.insert(got) {
                *acked_ids_unique = false;
            }
        }
        Ok(Frame::Nack { id: got, reason }) => {
            *completed += 1;
            if got != id {
                violations.push(format!("nack id {got} for request {id}"));
            }
            match reason {
                NackReason::Shed => *nacked_shed += 1,
                NackReason::UnknownShard | NackReason::UnknownSegment => *nacked_invalid += 1,
                other => violations.push(format!("request {id}: unexpected nack {other:?}")),
            }
        }
        Ok(other) => violations.push(format!("request {id}: unexpected reply {other:?}")),
        Err(e) => violations.push(format!("request {id}: no reply: {e}")),
    }
}

fn check_invariants(mut report: NetChaosReport) -> NetChaosReport {
    let r = &report;
    let mut found: Vec<String> = Vec::new();
    if r.completed != r.acked + r.nacked_shed + r.nacked_invalid {
        found.push(format!(
            "reply conservation: completed {} != acked {} + shed {} + invalid {}",
            r.completed, r.acked, r.nacked_shed, r.nacked_invalid
        ));
    }
    if r.offered != r.completed + r.lost {
        found.push(format!(
            "offer conservation: offered {} != completed {} + lost {}",
            r.offered, r.completed, r.lost
        ));
    }
    let destroyed = r.faults.conn_disconnects + r.faults.conn_slow_loris;
    if r.lost != destroyed {
        found.push(format!(
            "loss attribution: lost {} != disconnects {} + slow-loris {}",
            r.lost, r.faults.conn_disconnects, r.faults.conn_slow_loris
        ));
    }
    if r.queue_shed != r.nacked_shed + r.ingest_retries {
        found.push(format!(
            "shed honesty: queue shed {} != shed NACKs {} + retries {}",
            r.queue_shed, r.nacked_shed, r.ingest_retries
        ));
    }
    if r.queue_accepted != r.acked {
        found.push(format!(
            "no request duplicated or lost: queue accepted {} != acked {}",
            r.queue_accepted, r.acked
        ));
    }
    if r.server.frames_decoded != r.completed + r.metrics_pulls {
        found.push(format!(
            "decode accounting: server decoded {} != completed {} + pulls {}",
            r.server.frames_decoded, r.completed, r.metrics_pulls
        ));
    }
    if r.server.requests_acked != r.acked
        || r.server.sheds_nacked != r.nacked_shed
        || r.server.requests_rejected != r.nacked_invalid
    {
        found.push(format!(
            "server/client tally mismatch: server ack {} shed {} rejected {} vs client {} {} {}",
            r.server.requests_acked,
            r.server.sheds_nacked,
            r.server.requests_rejected,
            r.acked,
            r.nacked_shed,
            r.nacked_invalid
        ));
    }
    if !r.acked_ids_unique {
        found.push("duplicate ack id".to_owned());
    }
    report.violations.extend(found);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_run_has_no_faults_and_full_conservation() {
        // Seed 0 with conn probabilities still applies net_chaos odds —
        // use a tiny offer count instead and accept whatever fires; the
        // invariants are the test.
        let opts = NetChaosOptions {
            offers: 12,
            epoch_every: 4,
            ..NetChaosOptions::default()
        };
        let report = run_net_chaos(3, &opts);
        assert!(report.ok(), "{}", report.summary());
        assert_eq!(report.offered, 12);
    }
}
