//! The `mrnet 1` wire protocol: a versioned, length-prefixed,
//! checksummed binary framing for rescue-request ingestion over TCP.
//!
//! # Handshake
//!
//! A connection opens with one ASCII line each way, mirroring the
//! versioned text headers of the `mrworld 1`/`mrserve 1`/`mrobs 1`
//! formats:
//!
//! ```text
//! client → server:  mrnet 1\n
//! server → client:  mrnet 1 ok\n      (or `mrnet 1 busy\n` + close)
//! ```
//!
//! A server that does not speak the client's version closes the
//! connection; a client seeing anything but `ok` must not send frames.
//!
//! # Frame grammar
//!
//! After the handshake the stream is a sequence of binary frames:
//!
//! ```text
//! frame   = kind:u8  len:u32le  payload[len]  sum:u64le
//! sum     = FNV-1a-64 over (kind ‖ len ‖ payload)
//! ```
//!
//! | kind | frame       | payload (little-endian)                        |
//! |------|-------------|------------------------------------------------|
//! | 1    | Request     | `id:u64 shard:u32 appear_s:u32 segment:u32`    |
//! | 2    | Ack         | `id:u64`                                       |
//! | 3    | Nack        | `id:u64 reason:u8`                             |
//! | 4    | MetricsPull | (empty)                                        |
//! | 5    | Metrics     | nine `u64` server counters (see [`MetricsReport`]) |
//!
//! Every frame kind has a fixed payload length, so `len` is redundant —
//! and that redundancy is the point: a length that disagrees with the
//! kind is rejected *before* the checksum is even read, and a corrupted
//! length can never make the decoder wait on gigabytes. The checksum is
//! the same FNV-1a-64 the snapshot formats seal with
//! ([`mobirescue_sim::fnv1a_64_bytes`]).
//!
//! # Decoding
//!
//! [`Frame::decode`] doubles as an incremental parser for a read loop:
//! [`DecodeError::Truncated`] means "the buffer holds a frame prefix,
//! read more bytes", while every other error is a hard protocol
//! violation that names the offending field.

use mobirescue_sim::fnv1a_64_bytes;
use std::fmt;

/// The client's opening handshake line.
pub const HELLO: &str = "mrnet 1\n";
/// The server's accepting handshake reply.
pub const HELLO_OK: &str = "mrnet 1 ok\n";
/// The server's over-capacity handshake reply (connection closes after).
pub const HELLO_BUSY: &str = "mrnet 1 busy\n";

/// Upper bound on `len` accepted by the decoder. The largest real
/// payload is the 72-byte Metrics frame; anything claiming more is a
/// corrupt or hostile length field.
pub const MAX_PAYLOAD: u32 = 128;

/// Frame header size: kind byte + length word.
const HEADER_LEN: usize = 5;
/// Trailing checksum size.
const SUM_LEN: usize = 8;

/// Why a [`Frame::Nack`] refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// The bounded ingest queue shed the request (overload).
    Shed,
    /// The request named a shard the service does not host.
    UnknownShard,
    /// The request named a road segment the city does not have.
    UnknownSegment,
    /// The server is draining for shutdown and admits nothing new.
    Draining,
    /// An internal service error; the request was not admitted.
    Internal,
}

impl NackReason {
    /// The wire byte for this reason.
    pub fn as_u8(self) -> u8 {
        match self {
            NackReason::Shed => 0,
            NackReason::UnknownShard => 1,
            NackReason::UnknownSegment => 2,
            NackReason::Draining => 3,
            NackReason::Internal => 4,
        }
    }

    /// Parses a wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(NackReason::Shed),
            1 => Some(NackReason::UnknownShard),
            2 => Some(NackReason::UnknownSegment),
            3 => Some(NackReason::Draining),
            4 => Some(NackReason::Internal),
            _ => None,
        }
    }
}

/// The nine server counters a Metrics frame carries, in wire order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// Frames the server decoded successfully.
    pub frames_decoded: u64,
    /// Requests admitted and acknowledged.
    pub requests_acked: u64,
    /// Requests NACKed because the queue shed them.
    pub sheds_nacked: u64,
    /// Requests NACKed as invalid (unknown shard/segment) or while
    /// draining.
    pub requests_rejected: u64,
    /// Connections accepted since start.
    pub connections_accepted: u64,
    /// Observations in the ingest-to-dispatch latency histogram.
    pub i2d_count: u64,
    /// Ingest-to-dispatch latency p50, milliseconds.
    pub i2d_p50: u64,
    /// Ingest-to-dispatch latency p99, milliseconds.
    pub i2d_p99: u64,
    /// Ingest-to-dispatch latency p99.9, milliseconds.
    pub i2d_p999: u64,
}

impl MetricsReport {
    fn to_wire(self) -> [u64; 9] {
        [
            self.frames_decoded,
            self.requests_acked,
            self.sheds_nacked,
            self.requests_rejected,
            self.connections_accepted,
            self.i2d_count,
            self.i2d_p50,
            self.i2d_p99,
            self.i2d_p999,
        ]
    }

    fn from_wire(w: [u64; 9]) -> Self {
        Self {
            frames_decoded: w[0],
            requests_acked: w[1],
            sheds_nacked: w[2],
            requests_rejected: w[3],
            connections_accepted: w[4],
            i2d_count: w[5],
            i2d_p50: w[6],
            i2d_p99: w[7],
            i2d_p999: w[8],
        }
    }
}

/// One `mrnet 1` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// A rescue request offered for ingestion (client → server).
    Request {
        /// Client-chosen correlation id, echoed in the Ack/Nack.
        id: u64,
        /// Target city shard.
        shard: u32,
        /// Seconds after simulation start at which the request appears.
        appear_s: u32,
        /// Road segment the trapped person is on.
        segment: u32,
    },
    /// The request with this id was admitted (server → client).
    Ack {
        /// Correlation id of the admitted request.
        id: u64,
    },
    /// The request with this id was refused (server → client).
    Nack {
        /// Correlation id of the refused request.
        id: u64,
        /// Why it was refused.
        reason: NackReason,
    },
    /// Ask the server for its counters (client → server).
    MetricsPull,
    /// The server's counters (server → client).
    Metrics(MetricsReport),
}

/// A typed decode failure naming the offending field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends inside `field`: a complete frame needs `needed`
    /// bytes from the field's start but only `got` are present. In a
    /// streaming read loop this means "read more"; on a closed
    /// connection it means the peer hung up mid-frame.
    Truncated {
        /// The field the buffer ends inside.
        field: &'static str,
        /// Bytes the field (and the rest of the frame) needs.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The kind byte is not a known frame kind.
    BadKind(u8),
    /// The length field exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Always `"len"`.
        field: &'static str,
        /// The claimed payload length.
        got: u32,
        /// The accepted maximum.
        max: u32,
    },
    /// The length field disagrees with the frame kind's fixed payload
    /// size.
    PayloadLen {
        /// The frame kind whose payload is mis-sized.
        frame: &'static str,
        /// The payload size the kind requires.
        expected: usize,
        /// The size the length field claimed.
        got: usize,
    },
    /// The FNV-1a checksum does not match the received bytes.
    ChecksumMismatch {
        /// Checksum computed over the received bytes.
        expected: u64,
        /// Checksum the frame carried.
        got: u64,
    },
    /// A Nack frame carried an unknown reason byte.
    BadReason(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::Truncated { field, needed, got } => {
                write!(f, "truncated in `{field}`: need {needed} bytes, got {got}")
            }
            DecodeError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::Oversized { field, got, max } => {
                write!(f, "`{field}` claims {got} bytes, max {max}")
            }
            DecodeError::PayloadLen {
                frame,
                expected,
                got,
            } => write!(
                f,
                "{frame} payload must be {expected} bytes, length field says {got}"
            ),
            DecodeError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: computed {expected:#018x}, frame carries {got:#018x}"
                )
            }
            DecodeError::BadReason(r) => write!(f, "unknown nack reason {r}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl DecodeError {
    /// Whether this error means "the buffer holds an incomplete frame —
    /// read more bytes" rather than a protocol violation.
    pub fn is_truncated(&self) -> bool {
        matches!(self, DecodeError::Truncated { .. })
    }
}

impl Frame {
    fn kind_byte(&self) -> u8 {
        match self {
            Frame::Request { .. } => 1,
            Frame::Ack { .. } => 2,
            Frame::Nack { .. } => 3,
            Frame::MetricsPull => 4,
            Frame::Metrics(_) => 5,
        }
    }

    /// The fixed payload size for a kind byte, or `None` for an unknown
    /// kind.
    fn payload_len_for(kind: u8) -> Option<(&'static str, usize)> {
        match kind {
            1 => Some(("Request", 20)),
            2 => Some(("Ack", 8)),
            3 => Some(("Nack", 9)),
            4 => Some(("MetricsPull", 0)),
            5 => Some(("Metrics", 72)),
            _ => None,
        }
    }

    /// Encodes the frame: header, payload, trailing checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(72);
        match *self {
            Frame::Request {
                id,
                shard,
                appear_s,
                segment,
            } => {
                payload.extend_from_slice(&id.to_le_bytes());
                payload.extend_from_slice(&shard.to_le_bytes());
                payload.extend_from_slice(&appear_s.to_le_bytes());
                payload.extend_from_slice(&segment.to_le_bytes());
            }
            Frame::Ack { id } => payload.extend_from_slice(&id.to_le_bytes()),
            Frame::Nack { id, reason } => {
                payload.extend_from_slice(&id.to_le_bytes());
                payload.push(reason.as_u8());
            }
            Frame::MetricsPull => {}
            Frame::Metrics(report) => {
                for word in report.to_wire() {
                    payload.extend_from_slice(&word.to_le_bytes());
                }
            }
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + SUM_LEN);
        out.push(self.kind_byte());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let sum = fnv1a_64_bytes(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes one frame from the front of `buf`, returning the frame
    /// and how many bytes it consumed.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when `buf` holds an incomplete frame
    /// (read more and retry); any other variant is a protocol violation
    /// naming the offending field.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), DecodeError> {
        let Some(&kind) = buf.first() else {
            return Err(DecodeError::Truncated {
                field: "kind",
                needed: 1,
                got: 0,
            });
        };
        let Some((frame_name, expected_len)) = Self::payload_len_for(kind) else {
            return Err(DecodeError::BadKind(kind));
        };
        if buf.len() < HEADER_LEN {
            return Err(DecodeError::Truncated {
                field: "len",
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]);
        if len > MAX_PAYLOAD {
            return Err(DecodeError::Oversized {
                field: "len",
                got: len,
                max: MAX_PAYLOAD,
            });
        }
        if len as usize != expected_len {
            return Err(DecodeError::PayloadLen {
                frame: frame_name,
                expected: expected_len,
                got: len as usize,
            });
        }
        let total = HEADER_LEN + expected_len + SUM_LEN;
        if buf.len() < total {
            let field = if buf.len() < HEADER_LEN + expected_len {
                "payload"
            } else {
                "sum"
            };
            return Err(DecodeError::Truncated {
                field,
                needed: total,
                got: buf.len(),
            });
        }
        let body = &buf[..HEADER_LEN + expected_len];
        let computed = fnv1a_64_bytes(body);
        let carried = u64::from_le_bytes(
            buf[HEADER_LEN + expected_len..total]
                .try_into()
                .expect("sum slice is 8 bytes"),
        );
        if computed != carried {
            return Err(DecodeError::ChecksumMismatch {
                expected: computed,
                got: carried,
            });
        }
        let p = &buf[HEADER_LEN..HEADER_LEN + expected_len];
        let frame = match kind {
            1 => Frame::Request {
                id: u64_at(p, 0),
                shard: u32_at(p, 8),
                appear_s: u32_at(p, 12),
                segment: u32_at(p, 16),
            },
            2 => Frame::Ack { id: u64_at(p, 0) },
            3 => Frame::Nack {
                id: u64_at(p, 0),
                reason: NackReason::from_u8(p[8]).ok_or(DecodeError::BadReason(p[8]))?,
            },
            4 => Frame::MetricsPull,
            5 => {
                let mut words = [0u64; 9];
                for (i, word) in words.iter_mut().enumerate() {
                    *word = u64_at(p, i * 8);
                }
                Frame::Metrics(MetricsReport::from_wire(words))
            }
            _ => unreachable!("kind validated above"),
        };
        Ok((frame, total))
    }
}

fn u64_at(p: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(p[at..at + 8].try_into().expect("8-byte slice"))
}

fn u32_at(p: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(p[at..at + 4].try_into().expect("4-byte slice"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Request {
                id: 7,
                shard: 1,
                appear_s: 300,
                segment: 42,
            },
            Frame::Ack { id: u64::MAX },
            Frame::Nack {
                id: 9,
                reason: NackReason::Shed,
            },
            Frame::Nack {
                id: 10,
                reason: NackReason::Draining,
            },
            Frame::MetricsPull,
            Frame::Metrics(MetricsReport {
                frames_decoded: 100,
                requests_acked: 90,
                sheds_nacked: 7,
                requests_rejected: 3,
                connections_accepted: 2,
                i2d_count: 90,
                i2d_p50: 12,
                i2d_p99: 80,
                i2d_p999: 200,
            }),
        ]
    }

    #[test]
    fn frames_round_trip() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let (back, used) = Frame::decode(&bytes).expect("decodes");
            assert_eq!(back, frame);
            assert_eq!(used, bytes.len());
            // Decoding with trailing bytes consumes only the frame.
            let mut extended = bytes.clone();
            extended.extend_from_slice(&[0xAA; 3]);
            let (back, used) = Frame::decode(&extended).expect("decodes with trailer");
            assert_eq!(back, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn every_truncation_is_typed_truncated() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                let err = Frame::decode(&bytes[..cut]).expect_err("prefix cannot decode");
                assert!(
                    err.is_truncated(),
                    "cut at {cut}/{} gave {err:?}",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn corruption_is_rejected_with_typed_errors() {
        let bytes = Frame::Ack { id: 3 }.encode();
        // Unknown kind.
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(matches!(Frame::decode(&bad), Err(DecodeError::BadKind(99))));
        // Hostile length field.
        let mut bad = bytes.clone();
        bad[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bad),
            Err(DecodeError::Oversized { field: "len", .. })
        ));
        // Length that disagrees with the kind.
        let mut bad = bytes.clone();
        bad[1..5].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bad),
            Err(DecodeError::PayloadLen {
                frame: "Ack",
                expected: 8,
                got: 9,
            })
        ));
        // Flipped payload bit.
        let mut bad = bytes.clone();
        bad[HEADER_LEN] ^= 0x01;
        assert!(matches!(
            Frame::decode(&bad),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
        // Unknown nack reason (re-sealed so only the reason is at fault).
        let mut nack = Frame::Nack {
            id: 1,
            reason: NackReason::Shed,
        }
        .encode();
        let body_end = nack.len() - SUM_LEN;
        nack[body_end - 1] = 250;
        let sum = fnv1a_64_bytes(&nack[..body_end]);
        nack[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Frame::decode(&nack),
            Err(DecodeError::BadReason(250))
        ));
    }

    #[test]
    fn nack_reasons_round_trip() {
        for reason in [
            NackReason::Shed,
            NackReason::UnknownShard,
            NackReason::UnknownSegment,
            NackReason::Draining,
            NackReason::Internal,
        ] {
            assert_eq!(NackReason::from_u8(reason.as_u8()), Some(reason));
        }
        assert_eq!(NackReason::from_u8(5), None);
    }

    #[test]
    fn decode_errors_display_the_field() {
        let e = DecodeError::Truncated {
            field: "payload",
            needed: 33,
            got: 7,
        };
        assert!(e.to_string().contains("payload"));
        let e = DecodeError::ChecksumMismatch {
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("checksum mismatch"));
    }
}
