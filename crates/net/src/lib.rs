//! `mobirescue-net`: the TCP front door for the dispatch service.
//!
//! The serve runtime ingests through in-process bounded queues; this
//! crate puts a real network listener in front of them, because a
//! production dispatch system is driven by request streams arriving
//! over sockets — with all the failure modes that implies (partial
//! frames, torn writes, stalled clients, overload past queue capacity).
//!
//! * **Wire protocol** ([`wire`]) — the versioned `mrnet 1` framing:
//!   length-prefixed binary frames sealed with the same FNV-1a-64 the
//!   snapshot formats use, decoded with typed errors that name the
//!   offending field.
//! * **Listener** ([`listener`]) — a std-only thread-per-connection
//!   server feeding decoded requests into
//!   [`DispatchService::ingest_with_retry`]; queue sheds surface as
//!   explicit NACK frames, with a connection cap, idle/frame deadlines,
//!   and graceful drain-on-shutdown. Instrumented end to end through
//!   `mobirescue-obs` (`net.*` counters, ingest-to-dispatch latency
//!   histogram, ring events).
//! * **Client** ([`client`]) — the blocking counterpart used by the
//!   load generator and the chaos harness, with raw-byte access for
//!   deliberately broken traffic.
//! * **Chaos harness** ([`chaos`]) — a seeded misbehaving client
//!   (mid-frame disconnects, torn writes, slow-loris stalls, scheduled
//!   by `serve::fault`) plus the conservation invariants proving no
//!   request is silently dropped, duplicated, or lost.
//!
//! [`DispatchService::ingest_with_retry`]:
//! mobirescue_serve::DispatchService::ingest_with_retry

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod error;
pub mod listener;
pub mod metrics;
pub mod wire;

pub use chaos::{run_net_chaos, NetChaosOptions, NetChaosReport};
pub use client::NetClient;
pub use error::NetError;
pub use listener::{NetConfig, NetServer};
pub use metrics::NetMetrics;
pub use wire::{
    DecodeError, Frame, MetricsReport, NackReason, HELLO, HELLO_BUSY, HELLO_OK, MAX_PAYLOAD,
};
