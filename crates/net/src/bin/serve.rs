//! The `serve` binary: the online dispatch service, in two modes.
//!
//! **Demo mode** (default) drives the service on the charlotte-like
//! scenario in accelerated (simulated-clock) time, demonstrating every
//! serving feature end to end:
//!
//! 1. starts a two-shard service over the charlotte-like city under
//!    Hurricane Florence, on the paper's 5-minute dispatch period;
//! 2. streams rescue requests and weather/road-damage advisories into the
//!    bounded ingest queues from producer threads;
//! 3. rolls out a freshly trained SVM predictor + DQN policy checkpoint
//!    mid-run through the guarded promotion pipeline — the first delivery
//!    is poisoned (NaN weights) by the fault injector and dies at the
//!    admission probe with a typed error; the clean retry is admitted and
//!    staged through shadow evaluation and a canary shard before
//!    fleet-wide promotion, all without pausing ingestion;
//! 4. snapshots the whole service at an epoch boundary — with the canary
//!    stage still in flight — tears it down, restores it from the
//!    snapshot text, and finishes the promotion on the restored service;
//! 5. prints periodic metrics and a final report, exiting 0 on success.
//!
//! **Listen mode** (`--listen ADDR`) serves the `mrnet 1` TCP front door
//! on a wall clock: requests arrive over sockets (e.g. from the `loadgen`
//! bin in `mobirescue-bench`), dispatch epochs tick at `--period-ms`, and
//! overload surfaces to clients as NACK frames. Exits 0 after `--epochs`
//! epochs with a graceful drain.
//!
//! **Train mode** (`--train`) closes the learning loop on an accelerated
//! simulated clock: the shards tap their dispatch transitions into the
//! background DQN trainer, the trainer periodically emits candidate
//! checkpoints into the guarded rollout pipeline, the service snapshots
//! and restores mid-run with the trainer's replay buffer and optimizer
//! state intact, and the run exits 0 only if at least one self-trained
//! candidate was submitted, the transition-conservation invariant held,
//! and the `train.*` metrics are live.

use mobirescue_core::predictor::{PredictorConfig, RequestPredictor};
use mobirescue_core::rl_dispatch::{RlDispatchConfig, FEATURE_DIM};
use mobirescue_core::scenario::{Scenario, ScenarioConfig};
use mobirescue_net::{NetConfig, NetServer};
use mobirescue_rl::nn::Mlp;
use mobirescue_rl::persist::mlp_to_text;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_serve::{
    CheckpointPoison, Clock, DispatchService, EpochScheduler, Event, FaultInjector, FaultPlan,
    FsyncPolicy, ModelRegistry, RolloutConfig, RolloutError, ServeConfig, ServeError, SimClock,
    TrainerConfig, WalConfig, WallClock,
};
use mobirescue_sim::{RequestSpec, SimConfig};
use std::io::Write as _;
use std::sync::Arc;

const SEED: u64 = 20180914; // Florence's landfall date.
const NUM_SHARDS: usize = 2;
const PHASE1_EPOCHS: u32 = 7;
const PHASE2_EPOCHS: u32 = 5;
const SWAP_AT_EPOCH: u32 = 3;

fn usage() -> String {
    "usage: serve [--listen ADDR] [OPTIONS]

Modes:
  (default)            run the accelerated end-to-end serving demo
  --listen ADDR        serve the mrnet 1 TCP front door on ADDR
                       (e.g. 127.0.0.1:0 to pick an ephemeral port)
  --train              run the accelerated online-training demo: shards
                       feed the background DQN trainer, whose candidates
                       enter the guarded rollout pipeline

Listen/train-mode options:
  --scenario NAME      world to serve: small | medium | charlotte | metro
                       | multi_city (default: small). Metro presets serve
                       the storm-hour condition window of a 100k+-segment
                       multi-district world
  --shards N           city shards (default: 2)
  --epochs N           dispatch epochs before draining (default: 60)
  --period-ms MS       wall-clock milliseconds per dispatch epoch
                       (default: 100; listen mode only)
  --queue-capacity N   per-shard request queue capacity (default: 1024)
  --max-conns N        concurrent connection cap; over-cap connects get
                       `mrnet 1 busy` (default: 64; listen mode only)
  --wal-dir DIR        durable ingest journal + epoch snapshots in DIR;
                       on start, restores DIR/snapshot.txt if present and
                       replays the journal suffix, so a kill -9 loses no
                       acked request (listen mode only)
  --fsync POLICY       journal fsync policy: always | epoch | off
                       (default: always; needs --wal-dir)
  --quiet              suppress per-epoch output

Common options:
  --metrics-out FILE   write the mrobs 1 metrics dump at exit
  --metrics-prom FILE  write Prometheus exposition text at exit
  --help               print this message and exit"
        .to_owned()
}

struct Args {
    listen: Option<String>,
    train: bool,
    scenario: String,
    shards: usize,
    epochs: u32,
    period_ms: u64,
    queue_capacity: usize,
    max_conns: usize,
    wal_dir: Option<std::path::PathBuf>,
    fsync: FsyncPolicy,
    quiet: bool,
    metrics_out: Option<std::path::PathBuf>,
    metrics_prom: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        listen: None,
        train: false,
        scenario: "small".to_owned(),
        shards: NUM_SHARDS,
        epochs: 60,
        period_ms: 100,
        queue_capacity: 1_024,
        max_conns: 64,
        wal_dir: None,
        fsync: FsyncPolicy::Always,
        quiet: false,
        metrics_out: None,
        metrics_prom: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => parsed.listen = Some(value(&mut args, "--listen")?),
            "--train" => parsed.train = true,
            "--scenario" => {
                let name = value(&mut args, "--scenario")?;
                if ScenarioConfig::from_name(&name).is_none() {
                    return Err(format!(
                        "unknown scenario {name:?} (expected small, medium, charlotte, \
                         metro, or multi_city)"
                    ));
                }
                parsed.scenario = name;
            }
            "--shards" => {
                parsed.shards = value(&mut args, "--shards")?
                    .parse()
                    .map_err(|_| "--shards needs a positive integer".to_owned())?;
            }
            "--epochs" => {
                parsed.epochs = value(&mut args, "--epochs")?
                    .parse()
                    .map_err(|_| "--epochs needs a positive integer".to_owned())?;
            }
            "--period-ms" => {
                parsed.period_ms = value(&mut args, "--period-ms")?
                    .parse()
                    .map_err(|_| "--period-ms needs a positive integer".to_owned())?;
            }
            "--queue-capacity" => {
                parsed.queue_capacity = value(&mut args, "--queue-capacity")?
                    .parse()
                    .map_err(|_| "--queue-capacity needs a positive integer".to_owned())?;
            }
            "--max-conns" => {
                parsed.max_conns = value(&mut args, "--max-conns")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| "--max-conns needs a positive integer".to_owned())?;
            }
            "--wal-dir" => {
                parsed.wal_dir = Some(value(&mut args, "--wal-dir")?.into());
            }
            "--fsync" => {
                let policy = value(&mut args, "--fsync")?;
                parsed.fsync = FsyncPolicy::parse(&policy).ok_or_else(|| {
                    format!("--fsync must be always, epoch or off, got {policy:?}")
                })?;
            }
            "--quiet" => parsed.quiet = true,
            "--metrics-out" => {
                parsed.metrics_out = Some(value(&mut args, "--metrics-out")?.into());
            }
            "--metrics-prom" => {
                parsed.metrics_prom = Some(value(&mut args, "--metrics-prom")?.into());
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("serve: {message}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    if args.listen.is_some() && args.train {
        eprintln!(
            "serve: --listen and --train are mutually exclusive\n\n{}",
            usage()
        );
        std::process::exit(2);
    }
    let result = match args.listen.clone() {
        Some(addr) => run_listen(&args, &addr),
        None if args.train => run_train(&args),
        None => run_demo(&args),
    };
    if let Err(e) = result {
        eprintln!("serve: {e:?}");
        std::process::exit(1);
    }
}

fn dump_metrics(args: &Args, obs: &mobirescue_obs::ObsSnapshot) -> Result<(), ServeError> {
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, obs.to_text()).map_err(|e| ServeError::Io(e.to_string()))?;
        println!("wrote mrobs 1 metrics dump to {}", path.display());
    }
    if let Some(path) = &args.metrics_prom {
        std::fs::write(path, obs.to_prometheus()).map_err(|e| ServeError::Io(e.to_string()))?;
        println!("wrote Prometheus exposition to {}", path.display());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Listen mode: the TCP front door on a wall clock.
// ---------------------------------------------------------------------

fn run_listen(args: &Args, addr: &str) -> Result<(), ServeError> {
    let scenario = Arc::new(build_scenario(&args.scenario));
    // Simulation starts at the first covered condition hour (0 for the
    // classic presets; the storm window's opening hour for metro presets).
    let first = scenario.conditions.first_hour();
    let hours = scenario.conditions.hours();
    // Size the simulated window to cover every epoch (the dispatch period
    // is simulated seconds; the wall-clock pacing below is independent).
    let base = if args.scenario == "small" {
        SimConfig::small(first)
    } else {
        SimConfig::paper(first)
    };
    let needed_hours = (args.epochs * base.dispatch_period_s).div_ceil(3_600) + 1;
    let sim = SimConfig {
        duration_hours: needed_hours.min(hours - first),
        ..base
    };
    let max_epochs = sim.duration_hours * 3_600 / sim.dispatch_period_s;
    let epochs = args.epochs.min(max_epochs);
    if epochs < args.epochs && !args.quiet {
        println!(
            "note: scenario covers {} epochs, clamping --epochs {}",
            max_epochs, args.epochs
        );
    }
    let mut config = ServeConfig::new(sim);
    config.num_shards = args.shards.max(1);
    config.request_queue_capacity = args.queue_capacity.max(1);
    // With --wal-dir, every accepted request is journaled (and fsynced
    // per --fsync) before its Ack leaves the process, and the service
    // snapshots to DIR/snapshot.txt at each epoch boundary.
    let snapshot_path = args.wal_dir.as_ref().map(|dir| dir.join("snapshot.txt"));
    if let Some(dir) = &args.wal_dir {
        std::fs::create_dir_all(dir).map_err(|e| ServeError::Io(e.to_string()))?;
        let mut wal_cfg = WalConfig::new(dir.join("journal"));
        wal_cfg.fsync = args.fsync;
        config.wal = Some(wal_cfg);
    }
    let clock: Arc<WallClock> = Arc::new(WallClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let prior_snapshot = match &snapshot_path {
        Some(path) if path.exists() => {
            Some(std::fs::read_to_string(path).map_err(|e| ServeError::Io(e.to_string()))?)
        }
        _ => None,
    };
    let recovering = prior_snapshot.is_some();
    let service = Arc::new(match prior_snapshot {
        Some(text) => DispatchService::restore(
            Arc::clone(&scenario),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
            registry,
            &text,
        )?,
        None => DispatchService::start(
            Arc::clone(&scenario),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
            registry,
        )?,
    });
    if recovering {
        // The line the crash-recovery smoke parses: everything on this
        // line is already durable again, so `accepted` is the floor no
        // previously-acked request may fall below.
        let m = service.metrics();
        println!(
            "recovered: epochs {} accepted {} journal_seq {}",
            m.epochs_completed,
            m.requests_accepted,
            service.wal_last_seq()
        );
    }
    let mut net_cfg = NetConfig::new(addr);
    net_cfg.max_connections = args.max_conns;
    let mut server = NetServer::start(
        Arc::clone(&service),
        Arc::clone(&clock) as Arc<dyn Clock>,
        net_cfg,
    )
    .map_err(|e| ServeError::Io(e.to_string()))?;

    // The line load generators and scripts wait for — flush immediately.
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    if !args.quiet {
        println!(
            "serving {} ({} segments, {} shards), {} epochs at {} ms/epoch",
            args.scenario,
            scenario.city.network.num_segments(),
            args.shards,
            epochs,
            args.period_ms
        );
    }

    let start_ms = clock.now_ms();
    for epoch in 0..epochs {
        let target = start_ms + (u64::from(epoch) + 1) * args.period_ms;
        let now = clock.now_ms();
        if target > now {
            clock.sleep_ms(target - now);
        }
        server.epoch_started();
        let reports = service.run_epoch()?;
        server.epoch_finished();
        if let Some(path) = &snapshot_path {
            // Persist-then-compact, in that order: the snapshot must be
            // durably renamed into place before the journal prefix it
            // covers may be dropped, so a kill -9 between the two steps
            // only ever leaves extra journal to replay, never a gap. The
            // tmp file is fsynced before the rename and the directory
            // after it — compaction deletes the only other copy of the
            // covered records, so a power loss must not be able to drop
            // the renamed directory entry.
            let text = service.snapshot()?;
            let tmp = path.with_extension("txt.tmp");
            let io = |e: std::io::Error| ServeError::Io(e.to_string());
            {
                let mut f = std::fs::File::create(&tmp).map_err(io)?;
                f.write_all(text.as_bytes()).map_err(io)?;
                f.sync_all().map_err(io)?;
            }
            std::fs::rename(&tmp, path).map_err(io)?;
            let dir = match path.parent() {
                Some(d) if !d.as_os_str().is_empty() => d,
                _ => std::path::Path::new("."),
            };
            std::fs::File::open(dir)
                .and_then(|d| d.sync_all())
                .map_err(io)?;
            service.wal_compact()?;
        }
        if !args.quiet && (epoch + 1) % 10 == 0 {
            let report = server.report();
            println!(
                "epoch {}: {} shard reports | acked {} shed-nacked {} i2d p99 {} ms",
                epoch + 1,
                reports.len(),
                report.requests_acked,
                report.sheds_nacked,
                report.i2d_p99
            );
        }
    }

    // Drain: NACK stragglers, close every connection, then stop shards.
    server.shutdown();
    let report = server.report();
    drop(server);
    println!(
        "drained after {} epochs: {} frames decoded, {} acked, {} shed-nacked, \
         {} rejected, i2d p50/p99/p999 = {}/{}/{} ms over {} requests",
        epochs,
        report.frames_decoded,
        report.requests_acked,
        report.sheds_nacked,
        report.requests_rejected,
        report.i2d_p50,
        report.i2d_p99,
        report.i2d_p999,
        report.i2d_count
    );
    if !args.quiet {
        println!("\n{}", service.metrics().render());
        println!(
            "observability summary:\n{}",
            service.obs_snapshot().render_summary()
        );
    }
    dump_metrics(args, &service.obs_snapshot())?;
    Arc::try_unwrap(service)
        .map_err(|_| ServeError::Shard {
            shard: 0,
            message: "service still referenced at shutdown".to_owned(),
        })?
        .shutdown();
    println!("serve: clean shutdown");
    Ok(())
}

// ---------------------------------------------------------------------
// Demo mode: the accelerated end-to-end feature tour.
// ---------------------------------------------------------------------

/// Builds the named preset's Florence scenario (the name is validated at
/// argument-parse time, so the lookup cannot fail here).
fn build_scenario(name: &str) -> Scenario {
    ScenarioConfig::from_name(name)
        .expect("scenario name validated by parse_args")
        .florence()
        .build(SEED)
}

/// A deterministic synthetic request stream for one shard and epoch,
/// mimicking the repo's test idiom (mined rescue records need the full
/// mobility pipeline; the service only cares about the arrival process).
fn epoch_requests(scenario: &Scenario, shard: usize, epoch: u32) -> Vec<RequestSpec> {
    let num_segments = scenario.city.network.num_segments() as u32;
    let base = epoch * 300;
    (0..8u32)
        .map(|i| {
            let mix = (epoch * 131 + i * 37 + shard as u32 * 61).wrapping_mul(2_654_435_761);
            RequestSpec {
                appear_s: base + i * 35,
                segment: SegmentId(mix % num_segments),
            }
        })
        .collect()
}

/// Streams one epoch's worth of events into the service from producer
/// threads — ingestion is concurrent with (and independent of) the epoch
/// loop.
fn ingest_epoch(service: &Arc<DispatchService>, scenario: &Arc<Scenario>, epoch: u32) {
    let handles: Vec<_> = (0..NUM_SHARDS)
        .map(|shard| {
            let service = Arc::clone(service);
            let scenario = Arc::clone(scenario);
            std::thread::spawn(move || {
                let mut accepted = 0u32;
                for spec in epoch_requests(&scenario, shard, epoch) {
                    if service
                        .ingest(Event::Request { shard, spec })
                        .expect("in-range shard and segment")
                    {
                        accepted += 1;
                    }
                }
                // One advisory of each kind per shard per epoch, pinned to
                // the covered condition window.
                let hour = (scenario.conditions.first_hour() + epoch / 12)
                    .min(scenario.conditions.hours() - 1);
                service
                    .ingest(Event::Weather {
                        shard,
                        hour,
                        rain_mm: 4.0 + f64::from(epoch),
                    })
                    .expect("in-range shard");
                service
                    .ingest(Event::RoadDamage {
                        shard,
                        segment: SegmentId((epoch * 97 + shard as u32) % 500),
                        hour,
                        flooded: epoch.is_multiple_of(2),
                    })
                    .expect("in-range shard");
                accepted
            })
        })
        .collect();
    let total: u32 = handles
        .into_iter()
        .map(|h| h.join().expect("producer thread"))
        .sum();
    println!("  ingested {total} requests for epoch {epoch}");
}

/// Trains a fresh SVM predictor + DQN policy and round-trips both through
/// the on-disk checkpoint formats, returning the texts a deployment would
/// hand to [`DispatchService::submit_rollout`].
fn train_candidate(rl: &RlDispatchConfig) -> Result<(String, String), ServeError> {
    // The paper trains on the *previous* disaster (Michael) before serving
    // the live one; a small scenario keeps the demo quick — the factor
    // vector has fixed dimensions, so the model transfers.
    let training = ScenarioConfig::small().michael().build(SEED);
    let predictor = RequestPredictor::train_on(&training, &PredictorConfig::default());
    let mut dims = vec![FEATURE_DIM];
    dims.extend_from_slice(&rl.hidden);
    dims.push(1);
    let policy = Mlp::new(&dims, rl.seed ^ 0xd15b);

    let dir = std::path::Path::new("target/serve-demo");
    std::fs::create_dir_all(dir).map_err(|e| ServeError::Io(e.to_string()))?;
    let predictor_path = dir.join("predictor.txt");
    let policy_path = dir.join("policy.txt");
    std::fs::write(&predictor_path, predictor.to_text())
        .map_err(|e| ServeError::Io(e.to_string()))?;
    std::fs::write(&policy_path, mlp_to_text(&policy))
        .map_err(|e| ServeError::Io(e.to_string()))?;
    let predictor_text =
        std::fs::read_to_string(&predictor_path).map_err(|e| ServeError::Io(e.to_string()))?;
    let policy_text =
        std::fs::read_to_string(&policy_path).map_err(|e| ServeError::Io(e.to_string()))?;
    Ok((predictor_text, policy_text))
}

fn run_demo(args: &Args) -> Result<(), ServeError> {
    println!("building the charlotte-like Florence scenario (seed {SEED})...");
    let scenario = Arc::new(ScenarioConfig::charlotte_like().florence().build(SEED));
    let hours = scenario.conditions.hours();
    let start_hour = hours / 2;
    println!(
        "  {} segments, {} hospitals, {hours} disaster hours; serving from hour {start_hour}",
        scenario.city.network.num_segments(),
        scenario.city.hospitals.len(),
    );

    let sim = SimConfig {
        num_teams: 20,
        duration_hours: 2u32.min(hours - start_hour),
        ..SimConfig::paper(start_hour)
    };
    let rl = RlDispatchConfig::default();
    // The fault injector will poison the first checkpoint delivery with
    // NaN weights: the rollout admission probe must reject it, typed, and
    // the clean retry goes through the staged pipeline. Slacks are wide
    // open so a demo-sized candidate promotes — gate *strictness* is the
    // chaos suite's job; the demo shows the stages.
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::empty().with_poisoned_checkpoint(CheckpointPoison::NanWeights),
    ));
    let config = ServeConfig {
        num_shards: NUM_SHARDS,
        sim: sim.clone(),
        rl: rl.clone(),
        faults: Some(Arc::clone(&injector)),
        rollout: RolloutConfig {
            shadow_epochs: 2,
            shadow_slack: 1e9,
            canary_epochs: 2,
            canary_shards: 1,
            canary_slack: 1e9,
            watch_epochs: 2,
            watch_slack: 1e9,
            ..RolloutConfig::default()
        },
        ..ServeConfig::new(sim)
    };
    let clock: Arc<SimClock> = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));

    println!(
        "starting {NUM_SHARDS} shards, {}s dispatch period, simulated clock",
        config.sim.dispatch_period_s
    );
    let service = Arc::new(DispatchService::start(
        Arc::clone(&scenario),
        config.clone(),
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::clone(&registry),
    )?);

    // Phase 1: epochs 0..PHASE1_EPOCHS with a mid-run guarded rollout.
    // The first delivery of the trained checkpoint is poisoned in transit;
    // admission rejects it and the retry enters the pipeline.
    ingest_epoch(&service, &scenario, 0);
    let mut scheduler = EpochScheduler::for_service(&service)?;
    let mut swap_failed = None;
    {
        let service_cb = Arc::clone(&service);
        let scenario_cb = Arc::clone(&scenario);
        let rl_cb = rl.clone();
        scheduler.run(&service, clock.as_ref(), PHASE1_EPOCHS, |epoch, reports| {
            let delivered: u32 = reports.iter().map(|r| r.delivered).sum();
            println!(
                "epoch {epoch}: {} shard reports, {delivered} delivered",
                reports.len()
            );
            if epoch == SWAP_AT_EPOCH {
                println!("  submitting freshly trained SVM + DQN checkpoints for rollout...");
                match train_candidate(&rl_cb) {
                    Ok((predictor_text, policy_text)) => {
                        match service_cb.submit_rollout(Some(&predictor_text), Some(&policy_text)) {
                            Err(ServeError::Rollout(RolloutError::Probe { artifact, message })) => {
                                println!(
                                    "  checkpoint delivery was corrupted in transit; admission \
                                     rejected the {artifact} artifact: {message}"
                                );
                                println!("  re-fetching the checkpoint and resubmitting...");
                                match service_cb
                                    .submit_rollout(Some(&predictor_text), Some(&policy_text))
                                {
                                    Ok(Some(status)) => println!(
                                        "  candidate v{} admitted, entering {} stage",
                                        status.version, status.stage
                                    ),
                                    Ok(None) => println!("  candidate promoted immediately"),
                                    Err(e) => swap_failed = Some(e),
                                }
                            }
                            Ok(_) => {
                                swap_failed = Some(ServeError::Io(
                                    "poisoned checkpoint passed admission".to_owned(),
                                ))
                            }
                            Err(e) => swap_failed = Some(e),
                        }
                    }
                    Err(e) => swap_failed = Some(e),
                }
            } else if let Some(status) = service_cb.rollout_status() {
                println!(
                    "  rollout v{}: {} stage, {} epochs in",
                    status.version, status.stage, status.epochs_done
                );
            }
            ingest_epoch(&service_cb, &scenario_cb, epoch + 1);
        })?;
    }
    if let Some(e) = swap_failed {
        return Err(e);
    }
    println!("\nafter phase 1:\n{}", service.metrics().render());
    let status = service
        .rollout_status()
        .expect("the canary stage straddles the snapshot boundary");
    println!(
        "rollout v{} still in flight ({} stage) — it must survive the restore",
        status.version, status.stage
    );

    // Snapshot/restore cycle: serialize, tear the service down, rebuild.
    println!("snapshotting the service and killing it...");
    let snapshot = service.snapshot()?;
    let metrics_before = service.metrics();
    // Keep the run's telemetry in one place across the restore: the dead
    // service's registry is handed to its successor (safe exactly because
    // the predecessor is shut down — restore overwrites the counters from
    // the snapshot, and the phase histograms keep accumulating).
    let obs_registry = Arc::clone(service.obs());
    println!("  snapshot is {} bytes", snapshot.len());
    Arc::try_unwrap(service)
        .map_err(|_| ServeError::Shard {
            shard: 0,
            message: "service still referenced at shutdown".to_owned(),
        })?
        .shutdown();

    println!("restoring from the snapshot...");
    let restore_config = ServeConfig {
        obs: Some(obs_registry),
        ..config
    };
    let service = Arc::new(DispatchService::restore(
        Arc::clone(&scenario),
        restore_config,
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::clone(&registry),
        &snapshot,
    )?);
    assert_eq!(
        service.metrics(),
        metrics_before,
        "restored metrics must equal the snapshotted ones"
    );
    println!("  restored; metrics identical to the snapshot point");

    // Phase 2: keep serving from where the snapshot left off.
    {
        let service_cb = Arc::clone(&service);
        let scenario_cb = Arc::clone(&scenario);
        scheduler.run(&service, clock.as_ref(), PHASE2_EPOCHS, |i, reports| {
            let epoch = PHASE1_EPOCHS + i;
            let delivered: u32 = reports.iter().map(|r| r.delivered).sum();
            println!(
                "epoch {epoch}: {} shard reports, {delivered} delivered",
                reports.len()
            );
            if let Some(status) = service_cb.rollout_status() {
                println!(
                    "  rollout v{}: {} stage, {} epochs in",
                    status.version, status.stage, status.epochs_done
                );
            }
            if i + 1 < PHASE2_EPOCHS {
                ingest_epoch(&service_cb, &scenario_cb, epoch + 1);
            }
        })?;
    }

    let metrics = service.metrics();
    println!(
        "\nfinal report after {} epochs:\n{}",
        metrics.epochs_completed,
        metrics.render()
    );
    assert!(
        metrics.epochs_completed >= 10,
        "the demo must drive at least 10 epochs"
    );
    assert_eq!(metrics.model_swaps, 1, "the hot-swap must have happened");
    assert_eq!(
        metrics.model_version, 2,
        "the candidate promoted fleet-wide"
    );
    assert!(
        service.rollout_status().is_none(),
        "the pipeline must have completed"
    );
    let rollouts = service.rollout_counters();
    assert_eq!(rollouts.rejected, 1, "the poisoned delivery was rejected");
    assert_eq!(rollouts.admitted, 1, "the clean retry was admitted");
    assert_eq!(rollouts.rolled_back, 0, "nothing regressed");
    assert_eq!(
        injector.counters().poisoned_checkpoints,
        1,
        "the scheduled poison fired"
    );
    println!(
        "rollout pipeline: {} rejected (poisoned), {} admitted, {} rolled back",
        rollouts.rejected, rollouts.admitted, rollouts.rolled_back
    );

    // Dump the observability registry: per-phase epoch histograms, every
    // MetricsSnapshot counter mirrored under `serve.*`, routing gauges.
    let obs = service.obs_snapshot();
    println!("\nobservability summary:\n{}", obs.render_summary());
    println!("recent events:\n{}", service.obs().events().render());
    dump_metrics(args, &obs)?;
    Arc::try_unwrap(service)
        .map_err(|_| ServeError::Shard {
            shard: 0,
            message: "service still referenced at shutdown".to_owned(),
        })?
        .shutdown();
    println!("serve demo complete");
    Ok(())
}

// ---------------------------------------------------------------------
// Train mode: the online learning loop, accelerated.
// ---------------------------------------------------------------------

fn run_train(args: &Args) -> Result<(), ServeError> {
    let scenario = Arc::new(build_scenario(&args.scenario));
    let first = scenario.conditions.first_hour();
    let hours = scenario.conditions.hours();
    let base = if args.scenario == "small" {
        SimConfig::small(first)
    } else {
        SimConfig::paper(first)
    };
    let needed_hours = (args.epochs * base.dispatch_period_s).div_ceil(3_600) + 1;
    let sim = SimConfig {
        duration_hours: needed_hours.min(hours - first),
        ..base
    };
    let max_epochs = sim.duration_hours * 3_600 / sim.dispatch_period_s;
    let epochs = args.epochs.min(max_epochs).max(2);
    if epochs < args.epochs && !args.quiet {
        println!(
            "note: scenario covers {} epochs, clamping --epochs {}",
            max_epochs, args.epochs
        );
    }
    let shards = args.shards.max(1);
    let mut config = ServeConfig::new(sim);
    config.num_shards = shards;
    config.request_queue_capacity = args.queue_capacity.max(1);
    // The shadow gate is strict (slack 0): a self-trained candidate only
    // promotes once it actually out-scores the incumbent on the shadow
    // window — early candidates die there, which is the gate working.
    // Canary/watch slacks stay wide so the run demonstrates stage flow
    // rather than flapping on small-scenario reward noise.
    config.rollout = RolloutConfig {
        shadow_epochs: 2,
        shadow_slack: 0.0,
        canary_epochs: 2,
        canary_shards: 1,
        canary_slack: 1e9,
        watch_epochs: 2,
        watch_slack: 1e9,
        ..RolloutConfig::default()
    };
    config.trainer = Some(TrainerConfig {
        min_replay: 16,
        batch_size: 8,
        steps_per_epoch: 4,
        candidate_every: 6,
        hidden: vec![16],
        seed: SEED,
        ..TrainerConfig::default()
    });
    let clock: Arc<SimClock> = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));

    println!(
        "training online over {} ({} segments, {shards} shards), {epochs} epochs, simulated clock",
        args.scenario,
        scenario.city.network.num_segments()
    );
    let service = Arc::new(DispatchService::start(
        Arc::clone(&scenario),
        config.clone(),
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::clone(&registry),
    )?);

    let ingest = |service: &DispatchService, epoch: u32| {
        for shard in 0..shards {
            for spec in epoch_requests(&scenario, shard, epoch) {
                let _ = service.ingest(Event::Request { shard, spec });
            }
        }
    };
    let progress = |service: &DispatchService, epoch: u32| {
        if args.quiet || !(epoch + 1).is_multiple_of(5) {
            return;
        }
        let status = service.trainer_status().expect("trainer configured");
        println!(
            "epoch {}: trainer {} steps, replay {}, {} candidates; registry v{}",
            epoch + 1,
            status.steps,
            status.replay_len,
            status.candidates,
            registry.current().version
        );
    };

    // Phase 1, then a snapshot/restore cycle that must carry the trainer's
    // replay buffer, optimizer moments and cadence, then phase 2.
    let phase1 = epochs / 2;
    ingest(&service, 0);
    let mut scheduler = EpochScheduler::for_service(&service)?;
    {
        let service_cb = Arc::clone(&service);
        scheduler.run(&service, clock.as_ref(), phase1, |epoch, _| {
            progress(&service_cb, epoch);
            ingest(&service_cb, epoch + 1);
        })?;
    }
    let snapshot = service.snapshot()?;
    let status_before = service.trainer_status().expect("trainer configured");
    let obs_registry = Arc::clone(service.obs());
    if !args.quiet {
        println!(
            "snapshotting at epoch {phase1} ({} bytes, trainer at {} steps) and restoring...",
            snapshot.len(),
            status_before.steps
        );
    }
    Arc::try_unwrap(service)
        .map_err(|_| ServeError::Shard {
            shard: 0,
            message: "service still referenced at shutdown".to_owned(),
        })?
        .shutdown();
    let restore_config = ServeConfig {
        obs: Some(obs_registry),
        ..config
    };
    let service = Arc::new(DispatchService::restore(
        Arc::clone(&scenario),
        restore_config,
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::clone(&registry),
        &snapshot,
    )?);
    assert_eq!(
        service.trainer_status().expect("trainer configured"),
        status_before,
        "trainer state must survive the snapshot/restore cycle"
    );
    {
        let service_cb = Arc::clone(&service);
        scheduler.run(&service, clock.as_ref(), epochs - phase1, |i, _| {
            let epoch = phase1 + i;
            progress(&service_cb, epoch);
            if i + 1 < epochs - phase1 {
                ingest(&service_cb, epoch + 1);
            }
        })?;
    }

    let status = service.trainer_status().expect("trainer configured");
    let obs = service.obs();
    let submitted = obs.counter("train.candidates_submitted").value();
    let offered = obs.counter("train.transitions_offered").value();
    let accepted = obs.counter("train.transitions_accepted").value();
    let shed = obs.counter("train.transitions_shed").value();
    println!(
        "\ntrainer after {epochs} epochs: {} steps over {} transitions \
         ({accepted} accepted, {shed} shed), {} candidates emitted, \
         {submitted} submitted to rollout; registry at v{} after {} swaps",
        status.steps,
        offered,
        status.candidates,
        registry.current().version,
        registry.swaps()
    );
    assert!(status.steps > 0, "the trainer must have learned");
    assert!(
        submitted >= 1,
        "at least one self-trained candidate must reach the rollout gate"
    );
    assert_eq!(
        offered,
        accepted + shed,
        "transition conservation must hold"
    );
    assert!(
        obs.counter("train.steps").value() > 0,
        "train.* metrics must be live"
    );
    dump_metrics(args, &service.obs_snapshot())?;
    Arc::try_unwrap(service)
        .map_err(|_| ServeError::Shard {
            shard: 0,
            message: "service still referenced at shutdown".to_owned(),
        })?
        .shutdown();
    println!("serve train demo complete");
    Ok(())
}
