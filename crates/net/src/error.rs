//! Typed errors for the front door's client and listener.

use crate::wire::DecodeError;
use std::fmt;

/// A front-door failure: transport, handshake, or framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A socket operation failed.
    Io(String),
    /// The peer spoke the wrong handshake (carries what it said).
    Handshake(String),
    /// The server refused the connection with `mrnet 1 busy`.
    Busy,
    /// A frame failed to decode.
    Decode(DecodeError),
    /// The connection closed before a complete reply arrived.
    ConnectionClosed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Handshake(got) => write!(f, "bad handshake: {got:?}"),
            NetError::Busy => write!(f, "server at connection capacity"),
            NetError::Decode(e) => write!(f, "frame decode failed: {e}"),
            NetError::ConnectionClosed => write!(f, "connection closed mid-reply"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> Self {
        NetError::Decode(e)
    }
}
