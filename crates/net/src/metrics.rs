//! The front door's observability surface: `net.*` counters and the
//! ingest-to-dispatch latency histogram, registered in the same
//! [`Registry`] the dispatch service publishes into — one scrape covers
//! the whole process, in both `mrobs 1` text and Prometheus exposition.

use mobirescue_obs::{Counter, Histogram, Registry};

/// Handles to every `net.*` metric, fetched once at listener start.
#[derive(Clone)]
pub struct NetMetrics {
    /// Connections accepted (handshake completed).
    pub connections_accepted: Counter,
    /// Connections closed (any reason, after acceptance).
    pub connections_closed: Counter,
    /// Connections refused at the cap with `mrnet 1 busy`.
    pub connections_refused: Counter,
    /// Same cap refusals under the SLO-dashboard name: `busy` sent
    /// because `--max-conns` was reached. Kept alongside
    /// `connections_refused` so existing scrapes keep working.
    pub busy_rejects: Counter,
    /// Frames decoded successfully.
    pub frames_decoded: Counter,
    /// Frames rejected: decode errors, handshake failures, kinds a
    /// client must not send, or a peer hanging up mid-frame.
    pub frames_rejected: Counter,
    /// Requests admitted and ACKed.
    pub requests_acked: Counter,
    /// Requests NACKed with [`crate::NackReason::Shed`] — the client-visible
    /// face of the bounded queues' shed counters.
    pub requests_nacked_shed: Counter,
    /// Requests NACKed as invalid or while draining.
    pub requests_nacked_invalid: Counter,
    /// Ingest-to-dispatch latency: admission into a shard queue until
    /// the end of the epoch that drained it, milliseconds.
    pub ingest_to_dispatch_ms: Histogram,
}

impl NetMetrics {
    /// Fetches (get-or-create) every `net.*` metric from `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            connections_accepted: registry.counter("net.connections_accepted"),
            connections_closed: registry.counter("net.connections_closed"),
            connections_refused: registry.counter("net.connections_refused"),
            busy_rejects: registry.counter("net.busy_rejects"),
            frames_decoded: registry.counter("net.frames_decoded"),
            frames_rejected: registry.counter("net.frames_rejected"),
            requests_acked: registry.counter("net.requests_acked"),
            requests_nacked_shed: registry.counter("net.requests_nacked_shed"),
            requests_nacked_invalid: registry.counter("net.requests_nacked_invalid"),
            ingest_to_dispatch_ms: registry.histogram("net.ingest_to_dispatch_ms"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_land_in_both_wire_formats() {
        let reg = Registry::new();
        let m = NetMetrics::register(&reg);
        m.connections_accepted.inc();
        m.busy_rejects.inc();
        m.frames_decoded.add(3);
        m.requests_acked.add(2);
        m.requests_nacked_shed.inc();
        m.ingest_to_dispatch_ms.record(12);
        let snap = reg.snapshot();
        let text = snap.to_text();
        assert!(text.contains("c net.connections_accepted 1"));
        assert!(text.contains("c net.busy_rejects 1"));
        assert!(text.contains("c net.frames_decoded 3"));
        assert!(text.contains("h net.ingest_to_dispatch_ms 1 12 12"));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE mobirescue_net_requests_acked counter"));
        assert!(prom.contains("mobirescue_net_requests_nacked_shed 1"));
        assert!(prom.contains("# TYPE mobirescue_net_ingest_to_dispatch_ms histogram"));
    }
}
