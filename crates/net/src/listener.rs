//! The TCP listener: thread-per-connection ingestion in front of the
//! dispatch service's bounded queues.
//!
//! Every decoded Request frame is offered through
//! [`DispatchService::ingest_with_retry`]; the outcome goes back to the
//! client as an Ack or a typed Nack, so overload (a queue shed), a
//! malformed request, and a draining server are all *observable on the
//! wire* rather than silent drops. Connection hygiene is deliberate:
//!
//! * a **connection cap** — excess connections get `mrnet 1 busy` and a
//!   close, never an unbounded thread pile;
//! * an **idle timeout** — a connection sending nothing is closed;
//! * a **frame deadline** — once a frame starts, it must complete within
//!   the deadline, which is what defeats slow-loris trickle;
//! * **graceful drain** — shutdown NACKs new requests with `Draining`,
//!   wakes the acceptor, and joins every handler before returning.
//!
//! Timeouts run on real time (`std::time::Instant` and socket read
//! timeouts): socket behavior is wall-clock whatever the service clock
//! is. The service [`Clock`] is used only to *timestamp* admissions for
//! the ingest-to-dispatch histogram, so simulated-clock tests stay
//! deterministic (every latency is exactly zero).

use crate::error::NetError;
use crate::metrics::NetMetrics;
use crate::wire::{Frame, MetricsReport, NackReason, HELLO, HELLO_BUSY, HELLO_OK};
use mobirescue_obs::Level;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_serve::{Clock, DispatchService, Event, RetryPolicy, ServeError};
use mobirescue_sim::RequestSpec;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Listener configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Concurrent connections accepted; excess get `mrnet 1 busy`.
    pub max_connections: usize,
    /// Close a connection that has sent nothing for this long, ms.
    pub idle_timeout_ms: u64,
    /// A started frame must complete within this, ms (slow-loris guard).
    pub frame_timeout_ms: u64,
    /// Socket read poll tick, ms — bounds shutdown latency.
    pub poll_interval_ms: u64,
    /// Retry policy for queue-shed offers. `max_retries: 0` makes every
    /// shed an immediate NACK (NACK count == queue shed counters).
    pub retry: RetryPolicy,
}

impl NetConfig {
    /// A listener on `addr` with moderate limits.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            max_connections: 64,
            idle_timeout_ms: 30_000,
            frame_timeout_ms: 2_000,
            poll_interval_ms: 20,
            retry: RetryPolicy::default(),
        }
    }
}

struct Shared {
    service: Arc<DispatchService>,
    cfg: NetConfig,
    metrics: NetMetrics,
    clock: Arc<dyn Clock>,
    shutdown: AtomicBool,
    active: AtomicUsize,
    /// Epoch tag: bumped by [`NetServer::epoch_started`]. Admissions are
    /// stamped with the current tag; an entry whose tag is *older than
    /// the running epoch's* was queued before that epoch drained the
    /// queues, so when the epoch finishes it has provably been
    /// dispatched.
    epoch_tag: AtomicU64,
    /// `(admission clock ms, epoch tag)` for not-yet-dispatched admits.
    pending: Mutex<Vec<(u64, u64)>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn report(&self) -> MetricsReport {
        let i2d = self.metrics.ingest_to_dispatch_ms.snapshot();
        MetricsReport {
            frames_decoded: self.metrics.frames_decoded.value(),
            requests_acked: self.metrics.requests_acked.value(),
            sheds_nacked: self.metrics.requests_nacked_shed.value(),
            requests_rejected: self.metrics.requests_nacked_invalid.value(),
            connections_accepted: self.metrics.connections_accepted.value(),
            i2d_count: i2d.count(),
            i2d_p50: i2d.p50(),
            i2d_p99: i2d.p99(),
            i2d_p999: i2d.p999(),
        }
    }

    fn log(&self, level: Level, message: String) {
        let epoch = self.epoch_tag.load(Ordering::SeqCst) as u32;
        self.service.obs().events().log(level, epoch, None, message);
    }
}

/// A running TCP front door over one [`DispatchService`].
///
/// The epoch driver must bracket every [`DispatchService::run_epoch`]
/// with [`NetServer::epoch_started`] / [`NetServer::epoch_finished`] so
/// the ingest-to-dispatch histogram knows which admissions each epoch
/// drained. Dropping the server shuts it down gracefully.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_join: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `cfg.addr` and starts accepting connections into `service`.
    ///
    /// `clock` timestamps admissions for the latency histogram — pass
    /// the same clock the service runs on.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the bind fails.
    pub fn start(
        service: Arc<DispatchService>,
        clock: Arc<dyn Clock>,
        cfg: NetConfig,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = NetMetrics::register(service.obs());
        let shared = Arc::new(Shared {
            service,
            cfg,
            metrics,
            clock,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            epoch_tag: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
        });
        shared.log(Level::Info, format!("net: listening on {local_addr}"));
        let accept_shared = Arc::clone(&shared);
        let accept_join = std::thread::spawn(move || accept_loop(&accept_shared, &listener));
        Ok(Self {
            shared,
            local_addr,
            accept_join: Some(accept_join),
        })
    }

    /// The bound address (resolves the port when binding to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Marks the start of a dispatch epoch: admissions from here on
    /// belong to a later epoch than the one about to drain the queues.
    /// Call immediately before [`DispatchService::run_epoch`].
    pub fn epoch_started(&self) {
        self.shared.epoch_tag.fetch_add(1, Ordering::SeqCst);
    }

    /// Marks the end of a dispatch epoch: every admission stamped before
    /// [`NetServer::epoch_started`] has been drained and dispatched, so
    /// its ingest-to-dispatch latency is recorded now. Call immediately
    /// after [`DispatchService::run_epoch`].
    pub fn epoch_finished(&self) {
        let current = self.shared.epoch_tag.load(Ordering::SeqCst);
        let now = self.shared.clock.now_ms();
        let hist = &self.shared.metrics.ingest_to_dispatch_ms;
        lock(&self.shared.pending).retain(|&(enqueued_ms, tag)| {
            if tag < current {
                hist.record(now.saturating_sub(enqueued_ms));
                false
            } else {
                true
            }
        });
    }

    /// The counters a Metrics frame reports, read locally.
    pub fn report(&self) -> MetricsReport {
        self.shared.report()
    }

    /// Drains and stops: new requests are NACKed `Draining`, the
    /// acceptor is woken and joined, then every connection handler.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared
            .log(Level::Info, "net: draining for shutdown".to_owned());
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
        let handlers = std::mem::take(&mut *lock(&self.shared.handlers));
        for join in handlers {
            let _ = join.join();
        }
        // Every connection is drained; under the `epoch`/`off` fsync
        // policies the last acked requests may still sit in the page
        // cache, so force the ingest journal to stable storage before
        // reporting a clean drain.
        if let Err(e) = self.shared.service.wal_sync() {
            self.shared.log(
                Level::Warn,
                format!("net: drain-time journal flush failed: {e}"),
            );
        }
        self.shared.log(
            Level::Info,
            "net: drained, all connections closed".to_owned(),
        );
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.draining() {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            let _ = stream.write_all(HELLO_BUSY.as_bytes());
            shared.metrics.connections_refused.inc();
            shared.metrics.busy_rejects.inc();
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.metrics.connections_accepted.inc();
        let conn_shared = Arc::clone(shared);
        let join = std::thread::spawn(move || {
            handle_connection(&conn_shared, stream);
            conn_shared.metrics.connections_closed.inc();
            conn_shared.active.fetch_sub(1, Ordering::SeqCst);
        });
        lock(&shared.handlers).push(join);
    }
}

/// Reads one `\n`-terminated ASCII line within `deadline`, polling at
/// the socket's read timeout. `None` on EOF, oversize, or timeout.
fn read_line(stream: &mut TcpStream, deadline: Duration) -> Option<String> {
    let start = Instant::now();
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => {
                line.push(byte[0]);
                if byte[0] == b'\n' {
                    return String::from_utf8(line).ok();
                }
                if line.len() > 32 {
                    return None;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if start.elapsed() >= deadline {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let poll = Duration::from_millis(shared.cfg.poll_interval_ms.max(1));
    let _ = stream.set_read_timeout(Some(poll));
    let frame_deadline = Duration::from_millis(shared.cfg.frame_timeout_ms.max(1));
    let idle_deadline = Duration::from_millis(shared.cfg.idle_timeout_ms.max(1));

    match read_line(&mut stream, frame_deadline) {
        Some(line) if line == HELLO => {}
        _ => {
            shared.metrics.frames_rejected.inc();
            return;
        }
    }
    if stream.write_all(HELLO_OK.as_bytes()).is_err() {
        return;
    }

    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_data = Instant::now();
    // Set whenever `buf` holds the start of an incomplete frame: the
    // instant the frame's deadline is measured from.
    let mut frame_start: Option<Instant> = None;
    loop {
        // Drain every complete frame already buffered.
        loop {
            match Frame::decode(&buf) {
                Ok((frame, used)) => {
                    buf.drain(..used);
                    frame_start = (!buf.is_empty()).then(Instant::now);
                    if !process_frame(shared, &mut stream, frame) {
                        return;
                    }
                }
                Err(e) if e.is_truncated() => break,
                Err(e) => {
                    // Framing is lost; the connection cannot recover.
                    shared.metrics.frames_rejected.inc();
                    shared.log(Level::Warn, format!("net: rejecting frame: {e}"));
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF with a buffered frame torso = mid-frame disconnect.
                if !buf.is_empty() {
                    shared.metrics.frames_rejected.inc();
                }
                return;
            }
            Ok(n) => {
                if buf.is_empty() {
                    frame_start = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
                last_data = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining() {
                    return;
                }
                if let Some(started) = frame_start {
                    if started.elapsed() >= frame_deadline {
                        // Slow-loris: a frame that refuses to finish.
                        shared.metrics.frames_rejected.inc();
                        return;
                    }
                } else if last_data.elapsed() >= idle_deadline {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one decoded frame; `false` ends the connection.
fn process_frame(shared: &Shared, stream: &mut TcpStream, frame: Frame) -> bool {
    shared.metrics.frames_decoded.inc();
    let reply = match frame {
        Frame::Request {
            id,
            shard,
            appear_s,
            segment,
        } => {
            if shared.draining() {
                shared.metrics.requests_nacked_invalid.inc();
                Frame::Nack {
                    id,
                    reason: NackReason::Draining,
                }
            } else {
                let event = Event::Request {
                    shard: shard as usize,
                    spec: RequestSpec {
                        appear_s,
                        segment: SegmentId(segment),
                    },
                };
                match shared.service.ingest_with_retry(event, &shared.cfg.retry) {
                    Ok(true) => {
                        shared.metrics.requests_acked.inc();
                        let tag = shared.epoch_tag.load(Ordering::SeqCst);
                        lock(&shared.pending).push((shared.clock.now_ms(), tag));
                        Frame::Ack { id }
                    }
                    Ok(false) => {
                        shared.metrics.requests_nacked_shed.inc();
                        Frame::Nack {
                            id,
                            reason: NackReason::Shed,
                        }
                    }
                    Err(err) => {
                        shared.metrics.requests_nacked_invalid.inc();
                        let reason = match err {
                            ServeError::UnknownShard { .. } => NackReason::UnknownShard,
                            ServeError::World(_) => NackReason::UnknownSegment,
                            _ => NackReason::Internal,
                        };
                        Frame::Nack { id, reason }
                    }
                }
            }
        }
        Frame::MetricsPull => Frame::Metrics(shared.report()),
        // Server-to-client kinds arriving *from* a client are a protocol
        // violation: drop the connection.
        Frame::Ack { .. } | Frame::Nack { .. } | Frame::Metrics(_) => {
            shared.metrics.frames_rejected.inc();
            return false;
        }
    };
    stream.write_all(&reply.encode()).is_ok()
}
