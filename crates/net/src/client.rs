//! A blocking `mrnet 1` client: the load generator's and chaos
//! harness's side of the wire. Raw byte access ([`NetClient::send_raw`])
//! is deliberate — the chaos harness uses it to tear writes, abandon
//! frames mid-byte, and trickle headers.

use crate::error::NetError;
use crate::wire::{Frame, MetricsReport, HELLO, HELLO_BUSY, HELLO_OK};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One handshaken connection to a [`crate::NetServer`].
pub struct NetClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl NetClient {
    /// Connects and performs the `mrnet 1` handshake.
    ///
    /// # Errors
    ///
    /// [`NetError::Busy`] when the server is at its connection cap,
    /// [`NetError::Handshake`] on a version mismatch, [`NetError::Io`]
    /// on transport failure.
    pub fn connect(addr: SocketAddr) -> Result<Self, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(HELLO.as_bytes())?;
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match stream.read(&mut byte) {
                Ok(0) => {
                    // A refused connection may close before its `busy`
                    // line is readable.
                    return Err(NetError::Busy);
                }
                Ok(_) => {
                    line.push(byte[0]);
                    if byte[0] == b'\n' {
                        break;
                    }
                    if line.len() > 32 {
                        return Err(NetError::Handshake(
                            String::from_utf8_lossy(&line).into_owned(),
                        ));
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        let reply = String::from_utf8_lossy(&line).into_owned();
        match reply.as_str() {
            HELLO_OK => Ok(Self {
                stream,
                buf: Vec::new(),
            }),
            HELLO_BUSY => Err(NetError::Busy),
            _ => Err(NetError::Handshake(reply)),
        }
    }

    /// Encodes and sends one frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on transport failure.
    pub fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.stream.write_all(&frame.encode())?;
        Ok(())
    }

    /// Writes raw bytes — for chaos clients sending deliberately broken
    /// traffic (partial frames, torn writes, trickled headers).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on transport failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Blocks until one complete frame arrives.
    ///
    /// # Errors
    ///
    /// [`NetError::ConnectionClosed`] on EOF mid-frame,
    /// [`NetError::Decode`] on a protocol violation, [`NetError::Io`] on
    /// transport failure.
    pub fn recv(&mut self) -> Result<Frame, NetError> {
        let mut chunk = [0u8; 4096];
        loop {
            match Frame::decode(&self.buf) {
                Ok((frame, used)) => {
                    self.buf.drain(..used);
                    return Ok(frame);
                }
                Err(e) if e.is_truncated() => {}
                Err(e) => return Err(e.into()),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::ConnectionClosed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Sends one request and blocks for its Ack/Nack.
    ///
    /// # Errors
    ///
    /// As [`NetClient::send`] / [`NetClient::recv`].
    pub fn request(
        &mut self,
        id: u64,
        shard: u32,
        appear_s: u32,
        segment: u32,
    ) -> Result<Frame, NetError> {
        self.send(&Frame::Request {
            id,
            shard,
            appear_s,
            segment,
        })?;
        self.recv()
    }

    /// Pulls the server's counters.
    ///
    /// # Errors
    ///
    /// As [`NetClient::send`] / [`NetClient::recv`]; also
    /// [`NetError::Decode`] if the reply is not a Metrics frame.
    pub fn pull_metrics(&mut self) -> Result<MetricsReport, NetError> {
        self.send(&Frame::MetricsPull)?;
        match self.recv()? {
            Frame::Metrics(report) => Ok(report),
            other => Err(NetError::Handshake(format!(
                "expected Metrics reply, got {other:?}"
            ))),
        }
    }

    /// A second handle on the same connection (e.g. a dedicated reader
    /// thread while this handle keeps writing). The receive buffer is
    /// *not* shared: split reading and writing between the two handles,
    /// don't read on both.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the socket cannot be duplicated.
    pub fn try_clone(&self) -> Result<NetClient, NetError> {
        Ok(NetClient {
            stream: self.stream.try_clone()?,
            buf: Vec::new(),
        })
    }

    /// Half-closes the write side, signalling EOF to the server while
    /// replies can still drain.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on transport failure.
    pub fn shutdown_write(&mut self) -> Result<(), NetError> {
        self.stream.shutdown(std::net::Shutdown::Write)?;
        Ok(())
    }
}
