//! Golden-file tests pinning the `net.*` observability surface in both
//! wire formats: the `mrobs 1` snapshot text and the Prometheus
//! exposition. A renamed counter, a dropped metric, or a bucket-encoding
//! change shows up as an explicit diff instead of silently breaking
//! dashboards scraping a serving front door.
//!
//! To bless an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p mobirescue-net --test golden
//! ```
//!
//! and commit the updated fixtures together with the rationale.

use mobirescue_net::NetMetrics;
use mobirescue_obs::Registry;

const TEXT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/net_metrics.txt");
const PROM_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/net_metrics.prom");

/// A deterministic registry with every `net.*` metric set to a distinct
/// value, so a swapped pair of counters cannot cancel out in the diff.
fn golden_registry() -> mobirescue_obs::ObsSnapshot {
    let reg = Registry::new();
    let m = NetMetrics::register(&reg);
    m.connections_accepted.add(11);
    m.connections_closed.add(9);
    m.connections_refused.add(2);
    m.busy_rejects.add(1);
    m.frames_decoded.add(406);
    m.frames_rejected.add(5);
    m.requests_acked.add(380);
    m.requests_nacked_shed.add(17);
    m.requests_nacked_invalid.add(3);
    // Latencies covering several log2 buckets plus an outlier.
    for v in [0, 1, 3, 40, 40, 127, 128, 900] {
        m.ingest_to_dispatch_ms.record(v);
    }
    reg.snapshot()
}

fn check(path: &str, generated: &str, what: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, generated).expect("fixture written");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden fixture exists; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        generated, golden,
        "{what} drifted from the golden fixture {path}.\n\
         If the change is intentional, bless it with:\n  \
         UPDATE_GOLDEN=1 cargo test -p mobirescue-net --test golden\n\
         and explain the format change in the commit."
    );
}

#[test]
fn net_metrics_text_matches_golden() {
    check(TEXT_PATH, &golden_registry().to_text(), "mrobs 1 text");
}

#[test]
fn net_metrics_prometheus_matches_golden() {
    check(
        PROM_PATH,
        &golden_registry().to_prometheus(),
        "Prometheus exposition",
    );
}

/// Every metric the listener increments at runtime must be present in
/// the fixture — a registration dropped from [`NetMetrics`] fails here
/// even if the renderings still agree on what remains.
#[test]
fn every_net_metric_is_pinned() {
    let text = golden_registry().to_text();
    for name in [
        "net.connections_accepted",
        "net.connections_closed",
        "net.connections_refused",
        "net.busy_rejects",
        "net.frames_decoded",
        "net.frames_rejected",
        "net.requests_acked",
        "net.requests_nacked_shed",
        "net.requests_nacked_invalid",
        "net.ingest_to_dispatch_ms",
    ] {
        assert!(text.contains(name), "{name} missing from the snapshot");
    }
}
