//! Pins the connection-cap contract at the wire: with the default cap
//! of 64 connections held open, connection 65 is turned away with
//! `mrnet 1 busy` (surfacing as [`NetError::Busy`]) and counted in
//! `net.busy_rejects`, while connection 64 — the last one inside the
//! cap — still gets a real `Ack` for its request. The cap sheds load;
//! it never degrades the connections it already admitted.

use mobirescue_core::scenario::ScenarioConfig;
use mobirescue_net::{Frame, NetClient, NetConfig, NetError, NetServer};
use mobirescue_serve::{Clock, DispatchService, ModelRegistry, ServeConfig, SimClock};
use mobirescue_sim::SimConfig;
use std::sync::Arc;

#[test]
fn connection_65_gets_busy_while_connection_64_still_acks() {
    let scenario = Arc::new(ScenarioConfig::small().florence().build(11));
    let mut config = ServeConfig::new(SimConfig::small(6));
    config.num_shards = 2;
    config.request_queue_capacity = 256;
    let clock: Arc<SimClock> = Arc::new(SimClock::new());
    let registry = Arc::new(ModelRegistry::new(None, None));
    let service = Arc::new(
        DispatchService::start(
            scenario,
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
            registry,
        )
        .expect("service starts"),
    );
    let obs = Arc::clone(service.obs());

    let net_cfg = NetConfig::new("127.0.0.1:0");
    assert_eq!(
        net_cfg.max_connections, 64,
        "the default cap this test pins"
    );
    let cap = net_cfg.max_connections;
    let mut server = NetServer::start(
        Arc::clone(&service),
        Arc::clone(&clock) as Arc<dyn Clock>,
        net_cfg,
    )
    .expect("listener binds on localhost");
    let addr = server.local_addr();

    // Fill the cap. Connecting sequentially means each handshake has
    // completed — and its handler counted itself active — before the
    // next SYN, so connection 65 deterministically sees a full house.
    let mut held: Vec<NetClient> = Vec::with_capacity(cap);
    for i in 0..cap {
        held.push(
            NetClient::connect(addr)
                .unwrap_or_else(|e| panic!("connection {} of {cap} must be admitted: {e}", i + 1)),
        );
    }

    // Connection 65: refused with the typed busy handshake.
    match NetClient::connect(addr) {
        Err(NetError::Busy) => {}
        Err(other) => panic!("connection {} must be Busy, got {other}", cap + 1),
        Ok(_) => panic!("connection {} must be refused at the cap", cap + 1),
    }
    assert_eq!(
        obs.counter("net.busy_rejects").value(),
        1,
        "the refusal lands in net.busy_rejects"
    );
    assert_eq!(obs.counter("net.connections_refused").value(), 1);

    // Connection 64 — admitted, still first-class: its request is ACKed.
    let last = held.last_mut().expect("cap connections are held");
    let reply = last
        .request(9001, 0, 10, 0)
        .expect("request round-trips on an admitted connection");
    assert_eq!(reply, Frame::Ack { id: 9001 }, "connection 64 still ACKs");

    // Freeing one slot readmits: the cap is a live limit, not a latch.
    drop(held.pop());
    let mut readmitted = loop {
        match NetClient::connect(addr) {
            Ok(c) => break c,
            Err(NetError::Busy) => std::thread::yield_now(),
            Err(other) => panic!("readmission after a close failed: {other}"),
        }
    };
    let reply = readmitted
        .request(9002, 1, 20, 1)
        .expect("readmitted connection serves requests");
    assert_eq!(reply, Frame::Ack { id: 9002 });

    drop(readmitted);
    drop(held);
    server.shutdown();
    if let Ok(service) = Arc::try_unwrap(service) {
        service.shutdown();
    }
}
