//! Property tests for the `mrnet 1` wire codec: every frame round-trips
//! byte-exactly, every strict truncation is reported as the typed
//! "read more" error, and any single bit-flip anywhere in a frame is
//! rejected — the FNV-1a seal covers the kind and length bytes too, so
//! there is no flippable bit the decoder trusts.

use mobirescue_net::{Frame, MetricsReport, NackReason};
use proptest::prelude::*;

fn reason(byte: u8) -> NackReason {
    NackReason::from_u8(byte % 5).expect("reasons 0..=4 are valid")
}

/// One frame of every kind, driven by the proptest-drawn scalars.
fn sample_frame(kind: u8, a: u64, b: u64) -> Frame {
    match kind % 5 {
        0 => Frame::Request {
            id: a,
            shard: b as u32,
            appear_s: (b >> 32) as u32,
            segment: (a >> 32) as u32,
        },
        1 => Frame::Ack { id: a },
        2 => Frame::Nack {
            id: a,
            reason: reason(b as u8),
        },
        3 => Frame::MetricsPull,
        _ => Frame::Metrics(MetricsReport {
            frames_decoded: a.wrapping_mul(3),
            requests_acked: b,
            sheds_nacked: a ^ b,
            requests_rejected: a.wrapping_add(b),
            connections_accepted: a,
            i2d_count: b.wrapping_mul(5),
            i2d_p50: a >> 7,
            i2d_p99: b >> 3,
            i2d_p999: a.rotate_left(13),
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode → decode is the identity, and `used` is exactly the
    /// encoding's length even with trailing bytes in the buffer.
    #[test]
    fn every_frame_round_trips(kind in 0u8..5, a in any::<u64>(), b in any::<u64>(), trail in 0usize..16) {
        let frame = sample_frame(kind, a, b);
        let mut bytes = frame.encode();
        let frame_len = bytes.len();
        bytes.extend(std::iter::repeat_n(0xAAu8, trail));
        let (decoded, used) = Frame::decode(&bytes).expect("well-formed frame decodes");
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(used, frame_len);
    }

    /// Every strict prefix of a frame is `Truncated` — the streaming
    /// "read more" signal — never a hard protocol error, never a decode.
    #[test]
    fn every_truncation_is_typed(kind in 0u8..5, a in any::<u64>(), b in any::<u64>(), cut in 0usize..128) {
        let bytes = sample_frame(kind, a, b).encode();
        let cut = cut % bytes.len();
        match Frame::decode(&bytes[..cut]) {
            Err(e) => prop_assert!(
                e.is_truncated(),
                "prefix of {cut}/{} bytes gave non-truncation error {e}",
                bytes.len()
            ),
            Ok((frame, _)) => prop_assert!(
                false,
                "prefix of {cut}/{} bytes decoded as {frame:?}",
                bytes.len()
            ),
        }
    }

    /// Flipping any single bit anywhere in a sealed frame is rejected:
    /// the checksum covers the kind and length header as well as the
    /// payload, and the trailer bytes are the checksum itself.
    #[test]
    fn any_single_bit_flip_is_rejected(
        kind in 0u8..5,
        a in any::<u64>(),
        b in any::<u64>(),
        pos in 0usize..128,
        bit in 0u32..8,
    ) {
        let mut bytes = sample_frame(kind, a, b).encode();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1u8 << bit;
        match Frame::decode(&bytes) {
            Err(_) => {}
            Ok((frame, _)) => prop_assert!(
                false,
                "flip of bit {bit} at byte {pos}/{} decoded as {frame:?}",
                bytes.len()
            ),
        }
    }

    /// A bit-flip confined to the *payload* is always the checksum that
    /// catches it — the header still parses, so the typed error must be
    /// `ChecksumMismatch`, proving the seal (not a length accident) is
    /// what rejects payload corruption.
    #[test]
    fn payload_corruption_is_caught_by_the_seal(
        a in any::<u64>(),
        b in any::<u64>(),
        pos in 0usize..20,
        bit in 0u32..8,
    ) {
        let frame = sample_frame(0, a, b); // Request: 20-byte payload
        let mut bytes = frame.encode();
        bytes[5 + pos] ^= 1u8 << bit;
        match Frame::decode(&bytes) {
            Err(mobirescue_net::DecodeError::ChecksumMismatch { .. }) => {}
            other => prop_assert!(
                false,
                "payload flip of bit {bit} at offset {pos} gave {other:?}"
            ),
        }
    }
}
