//! Pins the serve binary's command-line contract: a typo'd flag must
//! fail loudly (nonzero exit, usage on stderr), never start a multi-hour
//! demo with the option silently ignored.

use std::process::Command;

#[test]
fn unknown_flag_prints_usage_and_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--no-such-flag")
        .output()
        .expect("serve runs");
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown argument \"--no-such-flag\""),
        "stderr names the bad flag: {stderr}"
    );
    assert!(
        stderr.contains("usage: serve"),
        "stderr shows usage: {stderr}"
    );
}

#[test]
fn flag_missing_its_value_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--listen")
        .output()
        .expect("serve runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--listen needs a value"), "{stderr}");
}

#[test]
fn bad_scenario_name_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--listen", "127.0.0.1:0", "--scenario", "atlantis"])
        .output()
        .expect("serve runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scenario"), "{stderr}");
}

#[test]
fn bad_fsync_policy_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--listen", "127.0.0.1:0", "--fsync", "sometimes"])
        .output()
        .expect("serve runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--fsync must be always, epoch or off"),
        "{stderr}"
    );
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--help")
        .output()
        .expect("serve runs");
    assert!(out.status.success(), "--help exits 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: serve"), "{stdout}");
    assert!(stdout.contains("--listen ADDR"), "{stdout}");
    assert!(out.stderr.is_empty(), "help goes to stdout only");
}
