//! Dense feed-forward neural networks with backpropagation.
//!
//! The paper's dispatcher "utilize\[s\] the Deep Neural Network (DNN) (as in
//! \[Pensieve\]) to obtain the optimal policy". This module provides the DNN:
//! an [`Mlp`] of fully connected layers with ReLU hidden activations and a
//! linear output, trained by explicit backpropagation (no autograd crate).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fully connected layer with its accumulated gradients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim` weights.
    w: Vec<f64>,
    b: Vec<f64>,
    #[serde(skip)]
    gw: Vec<f64>,
    #[serde(skip)]
    gb: Vec<f64>,
}

impl Linear {
    /// He-initialized layer.
    fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / in_dim as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
        }
    }

    #[allow(clippy::needless_range_loop)] // index couples several arrays
    fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_dim);
        let mut y = self.b.clone();
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            y[o] += row.iter().zip(x).map(|(w, x)| w * x).sum::<f64>();
        }
        y
    }

    /// Accumulates gradients for `dy` at input `x`; returns `dx`.
    #[allow(clippy::needless_range_loop)] // index couples several arrays
    fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        debug_assert_eq!(dy.len(), self.out_dim);
        let mut dx = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            self.gb[o] += dy[o];
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut self.gw[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += dy[o] * x[i];
                dx[i] += row[i] * dy[o];
            }
        }
        dx
    }

    fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Cached activations of one forward pass, consumed by
/// [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `acts[0]` is the input; `acts[i]` the post-activation output of layer
    /// `i−1`.
    acts: Vec<Vec<f64>>,
}

impl ForwardCache {
    /// The network output of this pass.
    pub fn output(&self) -> &[f64] {
        self.acts.last().expect("cache always holds the input")
    }
}

/// A multi-layer perceptron: ReLU hidden layers, linear output.
///
/// # Examples
///
/// ```
/// use mobirescue_rl::nn::Mlp;
///
/// let mlp = Mlp::new(&[4, 16, 2], 7);
/// let out = mlp.predict(&[0.1, -0.3, 0.5, 0.9]);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes `[input, hidden…, output]`,
    /// deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dimensions");
        assert!(dims.iter().all(|&d| d > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6e6e_0000);
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], &mut rng))
            .collect();
        Self { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("at least one layer").out_dim
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// The layer sizes `[input, hidden…, output]` the network was built
    /// with.
    pub fn layer_dims(&self) -> Vec<usize> {
        let mut dims = vec![self.layers[0].in_dim];
        dims.extend(self.layers.iter().map(|l| l.out_dim));
        dims
    }

    /// Forward pass without caching.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "input has wrong dimension");
        let n = self.layers.len();
        let mut a = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            a = layer.forward(&a);
            if i + 1 < n {
                relu_inplace(&mut a);
            }
        }
        a
    }

    /// Forward pass caching every activation for [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn forward(&self, x: &[f64]) -> ForwardCache {
        assert_eq!(x.len(), self.input_dim(), "input has wrong dimension");
        let n = self.layers.len();
        let mut acts = Vec::with_capacity(n + 1);
        acts.push(x.to_vec());
        for (i, layer) in self.layers.iter().enumerate() {
            let mut a = layer.forward(acts.last().expect("non-empty"));
            if i + 1 < n {
                relu_inplace(&mut a);
            }
            acts.push(a);
        }
        ForwardCache { acts }
    }

    /// Backpropagates `dloss_dout` through the cached pass, *accumulating*
    /// parameter gradients (call [`Mlp::zero_grad`] between batches).
    ///
    /// # Panics
    ///
    /// Panics if the gradient has the wrong dimension.
    pub fn backward(&mut self, cache: &ForwardCache, dloss_dout: &[f64]) {
        assert_eq!(
            dloss_dout.len(),
            self.output_dim(),
            "gradient has wrong dimension"
        );
        let n = self.layers.len();
        let mut dy = dloss_dout.to_vec();
        for i in (0..n).rev() {
            if i + 1 < n {
                // Gradient through the ReLU applied after layer i.
                for (d, &a) in dy.iter_mut().zip(&cache.acts[i + 1]) {
                    if a <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            dy = self.layers[i].backward(&cache.acts[i], &dy);
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(Linear::zero_grad);
    }

    /// Copies another network's parameters into this one (target-network
    /// sync).
    ///
    /// # Panics
    ///
    /// Panics if the architectures differ.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "architecture mismatch"
        );
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            assert_eq!(a.w.len(), b.w.len(), "architecture mismatch");
            a.w.copy_from_slice(&b.w);
            a.b.copy_from_slice(&b.b);
        }
    }

    /// Index of the first non-finite (NaN or ±Inf) parameter in
    /// [`Mlp::visit_params_mut`] order, or `None` when every parameter is
    /// finite.
    pub fn first_non_finite_param(&self) -> Option<usize> {
        let mut idx = 0;
        for layer in &self.layers {
            for p in layer.w.iter().chain(&layer.b) {
                if !p.is_finite() {
                    return Some(idx);
                }
                idx += 1;
            }
        }
        None
    }

    /// Visits every `(parameter, accumulated gradient)` pair mutably, in a
    /// stable order (used by optimizers).
    pub fn visit_params_mut(&mut self, mut f: impl FnMut(usize, &mut f64, f64)) {
        let mut idx = 0;
        for layer in &mut self.layers {
            for (w, &g) in layer.w.iter_mut().zip(&layer.gw) {
                f(idx, w, g);
                idx += 1;
            }
            for (b, &g) in layer.b.iter_mut().zip(&layer.gb) {
                f(idx, b, g);
                idx += 1;
            }
        }
    }
}

fn relu_inplace(a: &mut [f64]) {
    for x in a {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_param_count() {
        let mlp = Mlp::new(&[3, 5, 2], 0);
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 2);
        assert_eq!(mlp.num_params(), 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(mlp.predict(&[0.0; 3]).len(), 2);
    }

    #[test]
    fn forward_cache_matches_predict() {
        let mlp = Mlp::new(&[4, 8, 3], 5);
        let x = [0.3, -0.7, 1.2, 0.0];
        assert_eq!(mlp.forward(&x).output(), mlp.predict(&x).as_slice());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Mlp::new(&[2, 4, 1], 9);
        let b = Mlp::new(&[2, 4, 1], 9);
        let c = Mlp::new(&[2, 4, 1], 10);
        assert_eq!(a.predict(&[1.0, -1.0]), b.predict(&[1.0, -1.0]));
        assert_ne!(a.predict(&[1.0, -1.0]), c.predict(&[1.0, -1.0]));
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut mlp = Mlp::new(&[3, 6, 2], 42);
        let x = [0.5, -0.2, 0.8];
        let target = [1.0, -1.0];
        // Loss = 0.5 Σ (y − t)²; dL/dy = y − t.
        let loss_of = |m: &Mlp| -> f64 {
            let y = m.predict(&x);
            y.iter()
                .zip(&target)
                .map(|(y, t)| 0.5 * (y - t) * (y - t))
                .sum()
        };
        let cache = mlp.forward(&x);
        let dout: Vec<f64> = cache
            .output()
            .iter()
            .zip(&target)
            .map(|(y, t)| y - t)
            .collect();
        mlp.zero_grad();
        mlp.backward(&cache, &dout);

        // Collect analytical gradients.
        let mut analytical = Vec::new();
        mlp.visit_params_mut(|_, _, g| analytical.push(g));

        // Finite differences.
        let eps = 1e-6;
        let n = analytical.len();
        for k in (0..n).step_by(7) {
            let mut plus = mlp.clone();
            plus.visit_params_mut(|i, w, _| {
                if i == k {
                    *w += eps;
                }
            });
            let mut minus = mlp.clone();
            minus.visit_params_mut(|i, w, _| {
                if i == k {
                    *w -= eps;
                }
            });
            let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!(
                (numeric - analytical[k]).abs() < 1e-4,
                "param {k}: numeric {numeric} vs analytical {}",
                analytical[k]
            );
        }
    }

    #[test]
    fn copy_params_makes_networks_identical() {
        let mut a = Mlp::new(&[2, 4, 2], 1);
        let b = Mlp::new(&[2, 4, 2], 2);
        assert_ne!(a.predict(&[0.5, 0.5]), b.predict(&[0.5, 0.5]));
        a.copy_params_from(&b);
        assert_eq!(a.predict(&[0.5, 0.5]), b.predict(&[0.5, 0.5]));
    }

    #[test]
    fn non_finite_params_are_located_in_visit_order() {
        let mut mlp = Mlp::new(&[2, 3, 1], 4);
        assert_eq!(mlp.first_non_finite_param(), None);
        let poison_at = 7;
        mlp.visit_params_mut(|i, w, _| {
            if i == poison_at {
                *w = f64::NAN;
            }
        });
        assert_eq!(mlp.first_non_finite_param(), Some(poison_at));
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn wrong_input_dim_panics() {
        let mlp = Mlp::new(&[3, 2], 0);
        let _ = mlp.predict(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_dim_rejected() {
        let _ = Mlp::new(&[3], 0);
    }
}
