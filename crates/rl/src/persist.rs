//! Plain-text persistence for trained networks.
//!
//! A production dispatcher trains offline (Section IV-C4's historical
//! phase) and ships the weights; this module provides a dependency-free
//! textual format (one header line, one line per layer) so trained policies
//! survive process restarts without pulling in a serialization framework
//! beyond the workspace's offered crates.

use crate::nn::Mlp;
use std::fmt::Write as _;
use std::str::FromStr;

/// Errors from parsing a persisted network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNetworkError {
    /// The header line is missing or malformed.
    BadHeader,
    /// A parameter value failed to parse.
    BadNumber,
    /// The parameter count does not match the architecture.
    WrongLength,
}

impl std::fmt::Display for ParseNetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseNetworkError::BadHeader => write!(f, "missing or malformed header line"),
            ParseNetworkError::BadNumber => write!(f, "unparseable parameter value"),
            ParseNetworkError::WrongLength => {
                write!(f, "parameter count does not match the architecture")
            }
        }
    }
}

impl std::error::Error for ParseNetworkError {}

/// Serializes an MLP to the text format:
///
/// ```text
/// mlp <in> <h1> ... <out>
/// <param_0> <param_1> ...
/// ```
///
/// Parameters are emitted in [`Mlp::visit_params_mut`] order with full
/// `f64` round-trip precision.
pub fn mlp_to_text(net: &Mlp) -> String {
    // Recover the layer sizes by probing: input/output dims are public;
    // intermediate sizes come from a serde-free walk over parameters is not
    // possible, so the Mlp exposes them via `layer_dims`.
    let mut out = String::from("mlp");
    for d in net.layer_dims() {
        let _ = write!(out, " {d}");
    }
    out.push('\n');
    let mut params = Vec::with_capacity(net.num_params());
    let mut probe = net.clone();
    probe.visit_params_mut(|_, w, _| params.push(*w));
    for (i, p) in params.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        // `{:?}` on f64 is the shortest representation that round-trips.
        let _ = write!(out, "{p:?}");
    }
    out.push('\n');
    out
}

/// Parses a network produced by [`mlp_to_text`].
///
/// # Errors
///
/// Returns a [`ParseNetworkError`] when the header, numbers or parameter
/// count are malformed.
pub fn mlp_from_text(text: &str) -> Result<Mlp, ParseNetworkError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(ParseNetworkError::BadHeader)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("mlp") {
        return Err(ParseNetworkError::BadHeader);
    }
    let dims: Vec<usize> = parts
        .map(usize::from_str)
        .collect::<Result<_, _>>()
        .map_err(|_| ParseNetworkError::BadHeader)?;
    if dims.len() < 2 {
        return Err(ParseNetworkError::BadHeader);
    }
    let params_line = lines.next().ok_or(ParseNetworkError::WrongLength)?;
    let params: Vec<f64> = params_line
        .split_whitespace()
        .map(f64::from_str)
        .collect::<Result<_, _>>()
        .map_err(|_| ParseNetworkError::BadNumber)?;
    let mut net = Mlp::new(&dims, 0);
    if params.len() != net.num_params() {
        return Err(ParseNetworkError::WrongLength);
    }
    net.visit_params_mut(|i, w, _| *w = params[i]);
    Ok(net)
}

/// Reasons a network fails the [`probe_mlp`] admission probe.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeError {
    /// A parameter is NaN or ±Inf; carries its `visit_params_mut` index.
    NonFiniteParam(usize),
    /// The output for probe row `row` is NaN or ±Inf.
    NonFiniteOutput(usize),
    /// The output for probe row `row` exceeds the sanity bound.
    UnboundedOutput {
        /// Probe batch row that produced the value.
        row: usize,
        /// The offending output value.
        value: f64,
        /// The configured `|output|` bound.
        bound: f64,
    },
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::NonFiniteParam(i) => write!(f, "parameter {i} is not finite"),
            ProbeError::NonFiniteOutput(row) => {
                write!(f, "probe input {row} produced a non-finite output")
            }
            ProbeError::UnboundedOutput { row, value, bound } => write!(
                f,
                "probe input {row} produced |{value}| > sanity bound {bound}"
            ),
        }
    }
}

impl std::error::Error for ProbeError {}

/// Deterministic probe batch for networks with `dim` inputs: all-zeros,
/// all-ones, all-halves, the two alternating 0/1 patterns, and a unit ramp.
/// The rows cover the `[0, 1]` range the dispatcher's squashed features
/// live in, so a policy that explodes on them would explode in service.
pub fn probe_inputs(dim: usize) -> Vec<Vec<f64>> {
    let ramp: Vec<f64> = (0..dim)
        .map(|i| i as f64 / (dim.max(2) - 1) as f64)
        .collect();
    vec![
        vec![0.0; dim],
        vec![1.0; dim],
        vec![0.5; dim],
        (0..dim).map(|i| (i % 2) as f64).collect(),
        (0..dim).map(|i| ((i + 1) % 2) as f64).collect(),
        ramp,
    ]
}

/// Structural admission probe: every parameter must be finite and every
/// output on the [`probe_inputs`] batch must be finite and within
/// `max_abs_output`.
///
/// # Errors
///
/// Returns the first [`ProbeError`] encountered, parameters before outputs.
pub fn probe_mlp(net: &Mlp, max_abs_output: f64) -> Result<(), ProbeError> {
    if let Some(i) = net.first_non_finite_param() {
        return Err(ProbeError::NonFiniteParam(i));
    }
    for (row, x) in probe_inputs(net.input_dim()).iter().enumerate() {
        for &y in &net.predict(x) {
            if !y.is_finite() {
                return Err(ProbeError::NonFiniteOutput(row));
            }
            if y.abs() > max_abs_output {
                return Err(ProbeError::UnboundedOutput {
                    row,
                    value: y,
                    bound: max_abs_output,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exactly() {
        let mut net = Mlp::new(&[3, 7, 2], 11);
        // Dirty the parameters so we are not round-tripping initialization.
        net.visit_params_mut(|i, w, _| *w += i as f64 * 0.001);
        let text = mlp_to_text(&net);
        let back = mlp_from_text(&text).expect("round trip parses");
        let x = [0.3, -0.8, 1.5];
        assert_eq!(net.predict(&x), back.predict(&x));
        assert_eq!(back.num_params(), net.num_params());
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert_eq!(mlp_from_text(""), Err(ParseNetworkError::BadHeader));
        assert_eq!(
            mlp_from_text("nope 3 2\n0 0"),
            Err(ParseNetworkError::BadHeader)
        );
        assert_eq!(mlp_from_text("mlp 3\n"), Err(ParseNetworkError::BadHeader));
        assert_eq!(
            mlp_from_text("mlp 2 2\n1 2 x"),
            Err(ParseNetworkError::BadNumber)
        );
        assert_eq!(
            mlp_from_text("mlp 2 2\n1 2 3"),
            Err(ParseNetworkError::WrongLength)
        );
        let err = ParseNetworkError::WrongLength.to_string();
        assert!(err.contains("parameter count"));
    }

    #[test]
    fn probe_accepts_healthy_networks() {
        let net = Mlp::new(&[6, 8, 1], 3);
        assert_eq!(probe_mlp(&net, 1e6), Ok(()));
        assert_eq!(probe_inputs(6).len(), 6);
        assert!(probe_inputs(6).iter().all(|row| row.len() == 6));
    }

    #[test]
    fn probe_rejects_non_finite_params_and_outputs() {
        let mut nan = Mlp::new(&[4, 3, 1], 0);
        nan.visit_params_mut(|i, w, _| {
            if i == 5 {
                *w = f64::NAN;
            }
        });
        assert_eq!(probe_mlp(&nan, 1e6), Err(ProbeError::NonFiniteParam(5)));

        // All parameters finite, but the magnitude explodes past the bound.
        let mut big = Mlp::new(&[2, 1], 0);
        big.visit_params_mut(|_, w, _| *w = 1e9);
        match probe_mlp(&big, 1e6) {
            Err(ProbeError::UnboundedOutput { bound, .. }) => assert_eq!(bound, 1e6),
            other => panic!("expected UnboundedOutput, got {other:?}"),
        }
        let msg = ProbeError::NonFiniteOutput(2).to_string();
        assert!(msg.contains("non-finite"));
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut net = Mlp::new(&[1, 1], 0);
        net.visit_params_mut(|i, w, _| *w = if i == 0 { 1e-300 } else { -12345.678901234567 });
        let back = mlp_from_text(&mlp_to_text(&net)).unwrap();
        assert_eq!(net.predict(&[2.0]), back.predict(&[2.0]));
    }
}
