//! Reinforcement-learning substrate for the MobiRescue dispatcher
//! (Section IV-C), implemented from scratch.
//!
//! The paper trains a DNN-based RL policy (citing Pensieve) whose state is
//! the predicted request distribution plus team positions, whose action is a
//! destination per team, and whose reward is `αN^q − βT^d − γN^m`. The
//! pieces live here, free of any ML dependency:
//!
//! * [`nn`] — dense MLP with explicit backpropagation (gradient-checked);
//! * [`adam`] — Adam and SGD optimizers;
//! * [`replay`] — bounded experience replay;
//! * [`dqn`] — Double-DQN agent with target network and action masking;
//! * [`qscore`] — Q-learning over action features (the dispatcher's
//!   policy head: shared weights across destination zones);
//! * [`reinforce`] — Monte-Carlo policy gradient, for ablations.

#![warn(missing_docs)]

pub mod adam;
pub mod dqn;
pub mod nn;
pub mod persist;
pub mod qscore;
pub mod reinforce;
pub mod replay;

pub use adam::{Adam, Sgd};
pub use dqn::{DqnAgent, DqnConfig};
pub use nn::{ForwardCache, Mlp};
pub use persist::{mlp_from_text, mlp_to_text, ParseNetworkError};
pub use qscore::{PairTransition, QScore, QScoreConfig};
pub use reinforce::{Reinforce, ReinforceConfig};
pub use replay::{pair_from_line, pair_to_line, PairReplay, ReplayBuffer, Transition};
