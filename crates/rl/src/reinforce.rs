//! REINFORCE (Monte-Carlo policy gradient) — the policy-based alternative
//! to the value-based DQN dispatcher, used for ablations.

use crate::adam::Adam;
use crate::nn::Mlp;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// REINFORCE hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ReinforceConfig {
    /// State vector dimension.
    pub state_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden layer sizes.
    pub hidden: Vec<usize>,
    /// Discount factor γ.
    pub gamma: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG / initialization seed.
    pub seed: u64,
}

impl ReinforceConfig {
    /// Defaults for a small control problem.
    pub fn new(state_dim: usize, num_actions: usize) -> Self {
        Self {
            state_dim,
            num_actions,
            hidden: vec![32],
            gamma: 0.98,
            lr: 5e-3,
            seed: 0,
        }
    }
}

/// A softmax-policy REINFORCE agent.
#[derive(Debug)]
pub struct Reinforce {
    config: ReinforceConfig,
    policy: Mlp,
    adam: Adam,
    rng: StdRng,
    /// Current-episode `(state, action, reward)` log.
    episode: Vec<(Vec<f64>, usize, f64)>,
}

impl Reinforce {
    /// Creates an agent from `config`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(config: ReinforceConfig) -> Self {
        assert!(
            config.state_dim > 0 && config.num_actions > 0,
            "dimensions must be positive"
        );
        let mut dims = vec![config.state_dim];
        dims.extend_from_slice(&config.hidden);
        dims.push(config.num_actions);
        let policy = Mlp::new(&dims, config.seed);
        let adam = Adam::new(&policy, config.lr);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x7265_696e);
        Self {
            config,
            policy,
            adam,
            rng,
            episode: Vec::new(),
        }
    }

    /// Action probabilities in `state`.
    pub fn probabilities(&self, state: &[f64]) -> Vec<f64> {
        softmax(&self.policy.predict(state))
    }

    /// Samples an action from the softmax policy.
    pub fn act(&mut self, state: &[f64]) -> usize {
        let probs = self.probabilities(state);
        let mut u = self.rng.random::<f64>();
        for (i, p) in probs.iter().enumerate() {
            if u <= *p {
                return i;
            }
            u -= p;
        }
        probs.len() - 1
    }

    /// The greedy (most probable) action.
    pub fn act_greedy(&self, state: &[f64]) -> usize {
        let probs = self.probabilities(state);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are never NaN"))
            .map(|(i, _)| i)
            .expect("non-empty action set")
    }

    /// Records one step of the running episode.
    pub fn record(&mut self, state: Vec<f64>, action: usize, reward: f64) {
        self.episode.push((state, action, reward));
    }

    /// Ends the episode: computes normalized discounted returns and applies
    /// one policy-gradient step. Returns the episode's total reward.
    pub fn finish_episode(&mut self) -> f64 {
        if self.episode.is_empty() {
            return 0.0;
        }
        let n = self.episode.len();
        let mut returns = vec![0.0; n];
        let mut g = 0.0;
        for i in (0..n).rev() {
            g = self.episode[i].2 + self.config.gamma * g;
            returns[i] = g;
        }
        let total: f64 = self.episode.iter().map(|e| e.2).sum();
        // Normalize returns for variance reduction.
        let mean = returns.iter().sum::<f64>() / n as f64;
        let var = returns.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n as f64;
        let std = var.sqrt().max(1e-8);
        self.policy.zero_grad();
        let episode = std::mem::take(&mut self.episode);
        for ((state, action, _), ret) in episode.into_iter().zip(returns) {
            let advantage = (ret - mean) / std;
            let cache = self.policy.forward(&state);
            let probs = softmax(cache.output());
            // d(−log π(a|s))/dlogits = π − onehot(a), scaled by advantage.
            let mut dout: Vec<f64> = probs.iter().map(|p| p * advantage).collect();
            dout[action] -= advantage;
            self.policy.backward(&cache, &dout);
        }
        self.adam.step(&mut self.policy, n);
        total
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_are_a_distribution() {
        let agent = Reinforce::new(ReinforceConfig::new(3, 4));
        let p = agent.probabilities(&[0.5, -0.5, 1.0]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn learns_a_contextual_bandit() {
        // Two states; the rewarded action equals the state index.
        let mut cfg = ReinforceConfig::new(2, 2);
        cfg.seed = 11;
        let mut agent = Reinforce::new(cfg);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..400 {
            for _ in 0..8 {
                let s = rng.random_range(0..2usize);
                let state = if s == 0 {
                    vec![1.0, 0.0]
                } else {
                    vec![0.0, 1.0]
                };
                let a = agent.act(&state);
                let r = if a == s { 1.0 } else { -1.0 };
                agent.record(state, a, r);
            }
            agent.finish_episode();
        }
        assert_eq!(agent.act_greedy(&[1.0, 0.0]), 0);
        assert_eq!(agent.act_greedy(&[0.0, 1.0]), 1);
    }

    #[test]
    fn finish_episode_returns_total_reward_and_clears() {
        let mut agent = Reinforce::new(ReinforceConfig::new(1, 2));
        agent.record(vec![0.0], 0, 1.0);
        agent.record(vec![0.0], 1, 2.0);
        assert_eq!(agent.finish_episode(), 3.0);
        assert_eq!(agent.finish_episode(), 0.0, "episode log cleared");
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1_000.0, 1_000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }
}
