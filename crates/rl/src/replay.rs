//! Experience replay buffer.
//!
//! Section IV-C4: the RL model is trained offline on sampled historical
//! dispatch data and *kept training online* while running. Both modes feed
//! transitions through this bounded ring buffer.

use crate::qscore::PairTransition;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One `(s, a, r, s′)` transition, with the valid-action mask of the next
/// state so the TD target only maximizes over feasible actions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// State before the action.
    pub state: Vec<f64>,
    /// Action index taken.
    pub action: usize,
    /// Reward received (Equation 5 in the dispatcher).
    pub reward: f64,
    /// State after the action.
    pub next_state: Vec<f64>,
    /// Valid actions in `next_state`; empty means "all valid".
    pub next_valid: Vec<bool>,
    /// Whether the episode ended at `next_state`.
    pub done: bool,
}

/// A bounded FIFO replay buffer with uniform sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Transition>,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            items: Vec::new(),
            next: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transition, evicting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.next] = t;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Uniformly samples `k` transitions (with replacement).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or `k == 0`.
    pub fn sample<'a>(&'a self, rng: &mut StdRng, k: usize) -> Vec<&'a Transition> {
        assert!(!self.items.is_empty(), "cannot sample an empty buffer");
        assert!(k > 0, "sample size must be positive");
        (0..k)
            .map(|_| &self.items[rng.random_range(0..self.items.len())])
            .collect()
    }

    /// The stored transitions, in slot order (eviction order is tracked by
    /// [`ReplayBuffer::cursor`], not by position).
    pub fn items(&self) -> &[Transition] {
        &self.items
    }

    /// The ring cursor: the slot the next eviction will overwrite once the
    /// buffer is full.
    pub fn cursor(&self) -> usize {
        self.next
    }

    /// Rebuilds a buffer from [`ReplayBuffer::items`] /
    /// [`ReplayBuffer::cursor`] parts, e.g. after a snapshot restore.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `items.len() > capacity`, or the cursor
    /// is out of range.
    pub fn from_parts(capacity: usize, items: Vec<Transition>, cursor: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(items.len() <= capacity, "more items than capacity");
        assert!(cursor < capacity, "cursor out of range");
        Self {
            capacity,
            items,
            next: cursor,
        }
    }
}

/// A bounded FIFO replay ring over [`PairTransition`]s — the pairwise
/// (candidate-feature) transition form the online dispatcher emits — with
/// uniform sampling and an exact text round-trip for snapshot persistence.
///
/// Same eviction discipline as [`ReplayBuffer`]: append until full, then
/// overwrite the oldest slot.
#[derive(Debug, Clone, PartialEq)]
pub struct PairReplay {
    capacity: usize,
    items: Vec<PairTransition>,
    next: usize,
}

impl PairReplay {
    /// Creates a ring holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            items: Vec::new(),
            next: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transition, evicting the oldest once full.
    pub fn push(&mut self, t: PairTransition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.next] = t;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Uniformly samples `k` transitions (with replacement).
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty or `k == 0`.
    pub fn sample<'a>(&'a self, rng: &mut StdRng, k: usize) -> Vec<&'a PairTransition> {
        assert!(!self.items.is_empty(), "cannot sample an empty buffer");
        assert!(k > 0, "sample size must be positive");
        (0..k)
            .map(|_| &self.items[rng.random_range(0..self.items.len())])
            .collect()
    }

    /// The stored transitions, in slot order.
    pub fn items(&self) -> &[PairTransition] {
        &self.items
    }

    /// The ring cursor (next slot to overwrite once full).
    pub fn cursor(&self) -> usize {
        self.next
    }

    /// Rebuilds a ring from parts, e.g. after a snapshot restore.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `items.len() > capacity`, or the cursor
    /// is out of range.
    pub fn from_parts(capacity: usize, items: Vec<PairTransition>, cursor: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(items.len() <= capacity, "more items than capacity");
        assert!(cursor < capacity, "cursor out of range");
        Self {
            capacity,
            items,
            next: cursor,
        }
    }

    /// Serializes the ring as line-oriented text: a header line
    /// `pairreplay <capacity> <len> <cursor>` followed by one
    /// [`pair_to_line`] line per stored transition. Floats use `{:?}` so
    /// the round-trip is bit-exact.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "pairreplay {} {} {}\n",
            self.capacity,
            self.items.len(),
            self.next
        );
        for t in &self.items {
            out.push_str(&pair_to_line(t));
            out.push('\n');
        }
        out
    }

    /// Parses [`PairReplay::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty pairreplay text")?;
        let mut it = header.split_whitespace();
        if it.next() != Some("pairreplay") {
            return Err(format!("bad pairreplay header: {header:?}"));
        }
        let capacity: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad pairreplay capacity: {header:?}"))?;
        let len: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad pairreplay length: {header:?}"))?;
        let cursor: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad pairreplay cursor: {header:?}"))?;
        if it.next().is_some() {
            return Err(format!("trailing fields in pairreplay header: {header:?}"));
        }
        if capacity == 0 || len > capacity || cursor >= capacity {
            return Err(format!("inconsistent pairreplay header: {header:?}"));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            let line = lines.next().ok_or("pairreplay text ends early")?;
            items.push(
                pair_from_line(line).ok_or_else(|| format!("bad pairreplay line: {line:?}"))?,
            );
        }
        if lines.next().is_some() {
            return Err("trailing lines after pairreplay items".to_owned());
        }
        Ok(Self {
            capacity,
            items,
            next: cursor,
        })
    }
}

/// One-line text form of a [`PairTransition`]:
/// `<reward> <dim> f... <ncand> (<dim> c...)*`, floats in `{:?}` form so
/// parsing them back is bit-exact.
pub fn pair_to_line(t: &PairTransition) -> String {
    let mut out = format!("{:?} {}", t.reward, t.features.len());
    for f in &t.features {
        let _ = write!(out, " {f:?}");
    }
    let _ = write!(out, " {}", t.next_candidates.len());
    for c in &t.next_candidates {
        let _ = write!(out, " {}", c.len());
        for f in c {
            let _ = write!(out, " {f:?}");
        }
    }
    out
}

/// Parses [`pair_to_line`] output; `None` on any malformed field.
pub fn pair_from_line(line: &str) -> Option<PairTransition> {
    let mut it = line.split_whitespace();
    let reward: f64 = it.next()?.parse().ok()?;
    let dim: usize = it.next()?.parse().ok()?;
    let mut features = Vec::with_capacity(dim);
    for _ in 0..dim {
        features.push(it.next()?.parse().ok()?);
    }
    let ncand: usize = it.next()?.parse().ok()?;
    let mut next_candidates = Vec::with_capacity(ncand);
    for _ in 0..ncand {
        let clen: usize = it.next()?.parse().ok()?;
        let mut cand = Vec::with_capacity(clen);
        for _ in 0..clen {
            cand.push(it.next()?.parse().ok()?);
        }
        next_candidates.push(cand);
    }
    it.next().is_none().then_some(PairTransition {
        features,
        reward,
        next_candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(r: f64) -> Transition {
        Transition {
            state: vec![r],
            action: 0,
            reward: r,
            next_state: vec![r],
            next_valid: Vec::new(),
            done: false,
        }
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f64));
        }
        assert_eq!(buf.len(), 3);
        let rewards: Vec<f64> = buf.items.iter().map(|x| x.reward).collect();
        // Slots 0 and 1 were overwritten by 3 and 4.
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
        assert!(!rewards.contains(&0.0));
    }

    #[test]
    fn sampling_covers_contents() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..10 {
            buf.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let sample = buf.sample(&mut rng, 200);
        assert_eq!(sample.len(), 200);
        let distinct: std::collections::HashSet<u64> =
            sample.iter().map(|t| t.reward as u64).collect();
        assert!(distinct.len() >= 8, "sampling missed most of the buffer");
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn sampling_empty_panics() {
        let buf = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = buf.sample(&mut rng, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }

    fn p(r: f64) -> PairTransition {
        PairTransition {
            features: vec![r, r + 0.5],
            reward: r,
            next_candidates: vec![vec![r, 0.0], vec![1.0 / 3.0, r]],
        }
    }

    #[test]
    fn pair_ring_evicts_fifo() {
        let mut ring = PairReplay::new(3);
        for i in 0..5 {
            ring.push(p(i as f64));
        }
        assert_eq!(ring.len(), 3);
        let rewards: Vec<f64> = ring.items().iter().map(|t| t.reward).collect();
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
        assert!(!rewards.contains(&0.0) && !rewards.contains(&1.0));
    }

    #[test]
    fn pair_text_round_trips_bit_exact() {
        let mut ring = PairReplay::new(4);
        for i in 0..6 {
            ring.push(p(i as f64 + 0.1));
        }
        ring.push(PairTransition {
            features: vec![f64::MIN_POSITIVE, -0.0],
            reward: 1e-300,
            next_candidates: Vec::new(),
        });
        let text = ring.to_text();
        let back = PairReplay::from_text(&text).expect("parses");
        assert_eq!(back, ring);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn pair_text_rejects_malformed() {
        assert!(PairReplay::from_text("").is_err());
        assert!(PairReplay::from_text("replay 4 0 0").is_err());
        assert!(PairReplay::from_text("pairreplay 4 2 0\n1.0 1 2.0 0").is_err());
        assert!(PairReplay::from_text("pairreplay 4 1 0\n1.0 1 2.0 nope").is_err());
        assert!(PairReplay::from_text("pairreplay 0 0 0").is_err());
        assert!(PairReplay::from_text("pairreplay 2 3 0").is_err());
    }

    #[test]
    fn pair_sampling_stays_in_bounds_and_reproduces() {
        let mut ring = PairReplay::new(8);
        for i in 0..8 {
            ring.push(p(i as f64));
        }
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let sa: Vec<f64> = ring.sample(&mut a, 64).iter().map(|t| t.reward).collect();
        let sb: Vec<f64> = ring.sample(&mut b, 64).iter().map(|t| t.reward).collect();
        assert_eq!(sa, sb, "same seed must sample identically");
        assert!(sa.iter().all(|r| (0.0..8.0).contains(r)));
    }
}
