//! Experience replay buffer.
//!
//! Section IV-C4: the RL model is trained offline on sampled historical
//! dispatch data and *kept training online* while running. Both modes feed
//! transitions through this bounded ring buffer.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// One `(s, a, r, s′)` transition, with the valid-action mask of the next
/// state so the TD target only maximizes over feasible actions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// State before the action.
    pub state: Vec<f64>,
    /// Action index taken.
    pub action: usize,
    /// Reward received (Equation 5 in the dispatcher).
    pub reward: f64,
    /// State after the action.
    pub next_state: Vec<f64>,
    /// Valid actions in `next_state`; empty means "all valid".
    pub next_valid: Vec<bool>,
    /// Whether the episode ended at `next_state`.
    pub done: bool,
}

/// A bounded FIFO replay buffer with uniform sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Transition>,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            items: Vec::new(),
            next: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transition, evicting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.next] = t;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Uniformly samples `k` transitions (with replacement).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or `k == 0`.
    pub fn sample<'a>(&'a self, rng: &mut StdRng, k: usize) -> Vec<&'a Transition> {
        assert!(!self.items.is_empty(), "cannot sample an empty buffer");
        assert!(k > 0, "sample size must be positive");
        (0..k)
            .map(|_| &self.items[rng.random_range(0..self.items.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(r: f64) -> Transition {
        Transition {
            state: vec![r],
            action: 0,
            reward: r,
            next_state: vec![r],
            next_valid: Vec::new(),
            done: false,
        }
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f64));
        }
        assert_eq!(buf.len(), 3);
        let rewards: Vec<f64> = buf.items.iter().map(|x| x.reward).collect();
        // Slots 0 and 1 were overwritten by 3 and 4.
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
        assert!(!rewards.contains(&0.0));
    }

    #[test]
    fn sampling_covers_contents() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..10 {
            buf.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let sample = buf.sample(&mut rng, 200);
        assert_eq!(sample.len(), 200);
        let distinct: std::collections::HashSet<u64> =
            sample.iter().map(|t| t.reward as u64).collect();
        assert!(distinct.len() >= 8, "sampling missed most of the buffer");
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn sampling_empty_panics() {
        let buf = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = buf.sample(&mut rng, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }
}
