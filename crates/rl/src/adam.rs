//! Optimizers: Adam and plain SGD.

use crate::nn::Mlp;
use serde::{Deserialize, Serialize};

/// Adam optimizer state, tied to a specific network's parameter count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates Adam with the usual defaults (β₁ = 0.9, β₂ = 0.999) for
    /// `net`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(net: &Mlp, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        let n = net.num_params();
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Applies one Adam step using the gradients accumulated in `net`
    /// (scaled by `1 / batch_size`), then leaves the gradients untouched —
    /// callers zero them when starting the next batch.
    ///
    /// # Panics
    ///
    /// Panics if `net` has a different parameter count than the optimizer
    /// was built for, or `batch_size == 0`.
    pub fn step(&mut self, net: &mut Mlp, batch_size: usize) {
        assert_eq!(net.num_params(), self.m.len(), "optimizer/network mismatch");
        assert!(batch_size > 0, "batch size must be positive");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let scale = 1.0 / batch_size as f64;
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params_mut(|i, w, g| {
            let g = g * scale;
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            *w -= lr * mhat / (vhat.sqrt() + eps);
        });
    }
}

/// Plain SGD, useful as an ablation against Adam.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }

    /// Applies one SGD step (gradients scaled by `1 / batch_size`).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn step(&self, net: &mut Mlp, batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        let scale = self.lr / batch_size as f64;
        net.visit_params_mut(|_, w, g| *w -= scale * g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Train y = 2x − 1 with a tiny MLP; loss must shrink drastically.
    fn train_regression<F: FnMut(&mut Mlp, usize)>(mut step: F) -> f64 {
        let mut net = Mlp::new(&[1, 8, 1], 3);
        let data: Vec<(f64, f64)> = (0..16)
            .map(|i| (i as f64 / 8.0 - 1.0, 2.0 * (i as f64 / 8.0 - 1.0) - 1.0))
            .collect();
        for _ in 0..400 {
            net.zero_grad();
            for &(x, t) in &data {
                let cache = net.forward(&[x]);
                let d = cache.output()[0] - t;
                net.backward(&cache, &[d]);
            }
            step(&mut net, data.len());
        }
        data.iter()
            .map(|&(x, t)| {
                let y = net.predict(&[x])[0];
                (y - t) * (y - t)
            })
            .sum::<f64>()
            / data.len() as f64
    }

    #[test]
    fn adam_fits_a_line() {
        let mut adam: Option<Adam> = None;
        let mse = train_regression(|net, bs| {
            let adam = adam.get_or_insert_with(|| Adam::new(net, 0.01));
            adam.step(net, bs);
        });
        assert!(mse < 1e-3, "Adam final MSE {mse}");
    }

    #[test]
    fn sgd_fits_a_line_more_slowly() {
        let sgd = Sgd::new(0.05);
        let mse = train_regression(|net, bs| sgd.step(net, bs));
        assert!(mse < 1e-2, "SGD final MSE {mse}");
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn non_positive_lr_rejected() {
        let net = Mlp::new(&[1, 1], 0);
        let _ = Adam::new(&net, 0.0);
    }

    #[test]
    #[should_panic(expected = "optimizer/network mismatch")]
    fn mismatched_network_rejected() {
        let a = Mlp::new(&[1, 1], 0);
        let mut b = Mlp::new(&[2, 2], 0);
        let mut adam = Adam::new(&a, 0.01);
        adam.step(&mut b, 1);
    }
}
