//! Optimizers: Adam and plain SGD.

use crate::nn::Mlp;
use serde::{Deserialize, Serialize};

/// Adam optimizer state, tied to a specific network's parameter count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates Adam with the usual defaults (β₁ = 0.9, β₂ = 0.999) for
    /// `net`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(net: &Mlp, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        let n = net.num_params();
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Applies one Adam step using the gradients accumulated in `net`
    /// (scaled by `1 / batch_size`), then leaves the gradients untouched —
    /// callers zero them when starting the next batch.
    ///
    /// # Panics
    ///
    /// Panics if `net` has a different parameter count than the optimizer
    /// was built for, or `batch_size == 0`.
    pub fn step(&mut self, net: &mut Mlp, batch_size: usize) {
        assert_eq!(net.num_params(), self.m.len(), "optimizer/network mismatch");
        assert!(batch_size > 0, "batch size must be positive");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let scale = 1.0 / batch_size as f64;
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params_mut(|i, w, g| {
            let g = g * scale;
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            *w -= lr * mhat / (vhat.sqrt() + eps);
        });
    }

    /// Serializes the optimizer as one line of text:
    /// `adam <lr> <beta1> <beta2> <eps> <t> <n> m... v...`, floats in
    /// `{:?}` form so the round-trip is bit-exact (a restored optimizer
    /// continues training identically to one that was never serialized).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "adam {:?} {:?} {:?} {:?} {} {}",
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            self.t,
            self.m.len()
        );
        for x in self.m.iter().chain(self.v.iter()) {
            let _ = write!(out, " {x:?}");
        }
        out.push('\n');
        out
    }

    /// Parses [`Adam::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let line = text.trim_end_matches('\n');
        let mut it = line.split_whitespace();
        if it.next() != Some("adam") {
            return Err("bad adam header".to_owned());
        }
        let mut float = |name: &str| -> Result<f64, String> {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad adam {name}"))
        };
        let lr = float("lr")?;
        let beta1 = float("beta1")?;
        let beta2 = float("beta2")?;
        let eps = float("eps")?;
        let t: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("bad adam step count")?;
        let n: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("bad adam moment count")?;
        let mut moments = Vec::with_capacity(2 * n);
        for _ in 0..2 * n {
            moments.push(
                it.next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("missing adam moment")?,
            );
        }
        if it.next().is_some() {
            return Err("trailing fields in adam text".to_owned());
        }
        if !lr.is_finite() || lr <= 0.0 {
            return Err("adam learning rate must be positive".to_owned());
        }
        let v = moments.split_off(n);
        Ok(Self {
            lr,
            beta1,
            beta2,
            eps,
            t,
            m: moments,
            v,
        })
    }
}

/// Plain SGD, useful as an ablation against Adam.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }

    /// Applies one SGD step (gradients scaled by `1 / batch_size`).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn step(&self, net: &mut Mlp, batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        let scale = self.lr / batch_size as f64;
        net.visit_params_mut(|_, w, g| *w -= scale * g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Train y = 2x − 1 with a tiny MLP; loss must shrink drastically.
    fn train_regression<F: FnMut(&mut Mlp, usize)>(mut step: F) -> f64 {
        let mut net = Mlp::new(&[1, 8, 1], 3);
        let data: Vec<(f64, f64)> = (0..16)
            .map(|i| (i as f64 / 8.0 - 1.0, 2.0 * (i as f64 / 8.0 - 1.0) - 1.0))
            .collect();
        for _ in 0..400 {
            net.zero_grad();
            for &(x, t) in &data {
                let cache = net.forward(&[x]);
                let d = cache.output()[0] - t;
                net.backward(&cache, &[d]);
            }
            step(&mut net, data.len());
        }
        data.iter()
            .map(|&(x, t)| {
                let y = net.predict(&[x])[0];
                (y - t) * (y - t)
            })
            .sum::<f64>()
            / data.len() as f64
    }

    #[test]
    fn adam_fits_a_line() {
        let mut adam: Option<Adam> = None;
        let mse = train_regression(|net, bs| {
            let adam = adam.get_or_insert_with(|| Adam::new(net, 0.01));
            adam.step(net, bs);
        });
        assert!(mse < 1e-3, "Adam final MSE {mse}");
    }

    #[test]
    fn sgd_fits_a_line_more_slowly() {
        let sgd = Sgd::new(0.05);
        let mse = train_regression(|net, bs| sgd.step(net, bs));
        assert!(mse < 1e-2, "SGD final MSE {mse}");
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn non_positive_lr_rejected() {
        let net = Mlp::new(&[1, 1], 0);
        let _ = Adam::new(&net, 0.0);
    }

    #[test]
    fn adam_text_round_trips_and_resumes_identically() {
        // Train a few steps, serialize, keep training both the original and
        // the restored copy: they must stay bit-identical.
        let mut net = Mlp::new(&[2, 4, 1], 7);
        let mut adam = Adam::new(&net, 0.01);
        let batch = [([0.1, -0.4], 0.3), ([0.9, 0.2], -1.1)];
        let pass = |net: &mut Mlp, adam: &mut Adam| {
            net.zero_grad();
            for &(x, t) in &batch {
                let cache = net.forward(&x);
                let d = cache.output()[0] - t;
                net.backward(&cache, &[d]);
            }
            adam.step(net, batch.len());
        };
        for _ in 0..5 {
            pass(&mut net, &mut adam);
        }
        let text = adam.to_text();
        let mut restored = Adam::from_text(&text).expect("parses");
        assert_eq!(restored, adam);
        assert_eq!(restored.to_text(), text, "serialization is stable");
        let mut net2 = net.clone();
        for _ in 0..5 {
            pass(&mut net, &mut adam);
            pass(&mut net2, &mut restored);
        }
        assert_eq!(restored, adam, "restored optimizer diverged");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        net.visit_params_mut(|_, w, _| a.push(*w));
        net2.visit_params_mut(|_, w, _| b.push(*w));
        assert_eq!(a, b, "networks diverged after restore");
    }

    #[test]
    fn adam_text_rejects_malformed() {
        assert!(Adam::from_text("").is_err());
        assert!(Adam::from_text("sgd 0.1").is_err());
        assert!(Adam::from_text("adam 0.1 0.9 0.999 1e-8 3 2 0.0 0.0 0.0").is_err());
        assert!(Adam::from_text("adam nope 0.9 0.999 1e-8 0 0").is_err());
        assert!(Adam::from_text("adam -0.1 0.9 0.999 1e-8 0 0").is_err());
        let net = Mlp::new(&[1, 1], 0);
        let adam = Adam::new(&net, 0.01);
        let trailing = format!("{} 9.9", adam.to_text().trim_end());
        assert!(Adam::from_text(&trailing).is_err());
    }

    #[test]
    #[should_panic(expected = "optimizer/network mismatch")]
    fn mismatched_network_rejected() {
        let a = Mlp::new(&[1, 1], 0);
        let mut b = Mlp::new(&[2, 2], 0);
        let mut adam = Adam::new(&a, 0.01);
        adam.step(&mut b, 1);
    }
}
