//! Deep Q-learning with experience replay, a target network and action
//! masking.
//!
//! The rescue dispatcher has a discrete action set (destination zones plus
//! "return to the dispatching center") whose feasibility changes as roads
//! flood, so both action selection and the TD target accept a valid-action
//! mask.

use crate::adam::Adam;
use crate::nn::Mlp;
use crate::replay::{ReplayBuffer, Transition};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// DQN hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DqnConfig {
    /// State vector dimension.
    pub state_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden layer sizes.
    pub hidden: Vec<usize>,
    /// Discount factor γ.
    pub gamma: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Minibatch size per learning step.
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub replay_capacity: usize,
    /// Transitions required before learning starts.
    pub min_replay: usize,
    /// Copy online → target every this many learning steps.
    pub target_sync_every: u64,
    /// Initial exploration rate.
    pub eps_start: f64,
    /// Final exploration rate.
    pub eps_end: f64,
    /// Steps over which ε anneals linearly.
    pub eps_decay_steps: u64,
    /// Use the Double-DQN target (online argmax, target evaluation).
    pub double_dqn: bool,
    /// RNG / initialization seed.
    pub seed: u64,
}

impl DqnConfig {
    /// Reasonable defaults for a small dispatch problem.
    pub fn new(state_dim: usize, num_actions: usize) -> Self {
        Self {
            state_dim,
            num_actions,
            hidden: vec![64, 64],
            gamma: 0.95,
            lr: 1e-3,
            batch_size: 32,
            replay_capacity: 20_000,
            min_replay: 200,
            target_sync_every: 250,
            eps_start: 1.0,
            eps_end: 0.05,
            eps_decay_steps: 5_000,
            double_dqn: true,
            seed: 0,
        }
    }
}

/// A DQN agent.
///
/// # Examples
///
/// ```
/// use mobirescue_rl::dqn::{DqnAgent, DqnConfig};
///
/// let mut agent = DqnAgent::new(DqnConfig::new(4, 3));
/// let action = agent.act(&[0.0, 1.0, 0.0, 0.5], &[true, true, false]);
/// assert!(action < 2, "masked action 2 must never be chosen");
/// ```
#[derive(Debug)]
pub struct DqnAgent {
    config: DqnConfig,
    online: Mlp,
    target: Mlp,
    adam: Adam,
    replay: ReplayBuffer,
    rng: StdRng,
    act_steps: u64,
    learn_steps: u64,
}

impl DqnAgent {
    /// Creates an agent from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim`, `num_actions` or `batch_size` is zero.
    pub fn new(config: DqnConfig) -> Self {
        assert!(
            config.state_dim > 0 && config.num_actions > 0,
            "dimensions must be positive"
        );
        assert!(config.batch_size > 0, "batch size must be positive");
        let mut dims = vec![config.state_dim];
        dims.extend_from_slice(&config.hidden);
        dims.push(config.num_actions);
        let online = Mlp::new(&dims, config.seed);
        let mut target = Mlp::new(&dims, config.seed.wrapping_add(1));
        target.copy_params_from(&online);
        let adam = Adam::new(&online, config.lr);
        let replay = ReplayBuffer::new(config.replay_capacity);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x6471_6e00);
        Self {
            config,
            online,
            target,
            adam,
            replay,
            rng,
            act_steps: 0,
            learn_steps: 0,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Current exploration rate (linear anneal).
    pub fn epsilon(&self) -> f64 {
        let f = (self.act_steps as f64 / self.config.eps_decay_steps as f64).min(1.0);
        self.config.eps_start + (self.config.eps_end - self.config.eps_start) * f
    }

    /// Q-values of every action in `state`.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.online.predict(state)
    }

    /// ε-greedy action among the valid ones. An empty mask means all
    /// actions are valid.
    ///
    /// # Panics
    ///
    /// Panics if the mask length mismatches the action count or no action
    /// is valid.
    pub fn act(&mut self, state: &[f64], valid: &[bool]) -> usize {
        self.act_steps += 1;
        let eps = self.epsilon();
        if self.rng.random::<f64>() < eps {
            let candidates: Vec<usize> = valid_indices(valid, self.config.num_actions);
            candidates[self.rng.random_range(0..candidates.len())]
        } else {
            self.act_greedy(state, valid)
        }
    }

    /// Greedy (exploitation-only) action among the valid ones.
    ///
    /// # Panics
    ///
    /// Panics if the mask length mismatches the action count or no action
    /// is valid.
    pub fn act_greedy(&self, state: &[f64], valid: &[bool]) -> usize {
        let q = self.online.predict(state);
        argmax_masked(&q, valid).expect("at least one valid action")
    }

    /// Stores a transition without learning (callers throttling update
    /// frequency pair this with explicit [`DqnAgent::learn_step`] calls).
    pub fn store(&mut self, transition: Transition) {
        self.replay.push(transition);
    }

    /// Stores a transition and, if warmed up, performs one learning step.
    /// Returns the TD loss when a step happened.
    pub fn observe(&mut self, transition: Transition) -> Option<f64> {
        self.replay.push(transition);
        if self.replay.len() >= self.config.min_replay.max(self.config.batch_size) {
            Some(self.learn_step())
        } else {
            None
        }
    }

    /// One minibatch TD update; returns the mean squared TD error.
    ///
    /// # Panics
    ///
    /// Panics if the replay buffer is empty.
    pub fn learn_step(&mut self) -> f64 {
        let batch_size = self.config.batch_size;
        let batch: Vec<Transition> = self
            .replay
            .sample(&mut self.rng, batch_size)
            .into_iter()
            .cloned()
            .collect();
        self.online.zero_grad();
        let mut loss = 0.0;
        for t in &batch {
            let target_q = if t.done {
                t.reward
            } else {
                let next_best = if self.config.double_dqn {
                    let online_next = self.online.predict(&t.next_state);
                    let a = argmax_masked(&online_next, &t.next_valid)
                        .expect("next state has a valid action");
                    self.target.predict(&t.next_state)[a]
                } else {
                    let target_next = self.target.predict(&t.next_state);
                    let a = argmax_masked(&target_next, &t.next_valid)
                        .expect("next state has a valid action");
                    target_next[a]
                };
                t.reward + self.config.gamma * next_best
            };
            let cache = self.online.forward(&t.state);
            let q = cache.output()[t.action];
            let err = q - target_q;
            loss += err * err;
            let mut dout = vec![0.0; self.config.num_actions];
            dout[t.action] = err; // d(0.5 err²)/dq
            self.online.backward(&cache, &dout);
        }
        self.adam.step(&mut self.online, batch_size);
        self.learn_steps += 1;
        if self
            .learn_steps
            .is_multiple_of(self.config.target_sync_every)
        {
            self.sync_target();
        }
        loss / batch_size as f64
    }

    /// Copies the online network into the target network.
    pub fn sync_target(&mut self) {
        self.target.copy_params_from(&self.online);
    }

    /// Number of learning steps performed so far.
    pub fn learn_steps(&self) -> u64 {
        self.learn_steps
    }
}

fn valid_indices(valid: &[bool], n: usize) -> Vec<usize> {
    if valid.is_empty() {
        return (0..n).collect();
    }
    assert_eq!(valid.len(), n, "mask length must equal the action count");
    let out: Vec<usize> = (0..n).filter(|&i| valid[i]).collect();
    assert!(!out.is_empty(), "no valid action");
    out
}

fn argmax_masked(q: &[f64], valid: &[bool]) -> Option<usize> {
    let ok = |i: usize| valid.is_empty() || valid[i];
    (0..q.len())
        .filter(|&i| ok(i))
        .max_by(|&a, &b| q[a].partial_cmp(&q[b]).expect("Q values are never NaN"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 6-state corridor: start at 0, `right` (action 1) moves toward the
    /// goal at state 5 (+1 reward, episode ends), `left` (action 0) moves
    /// back. Optimal policy: always right.
    fn corridor_step(state: usize, action: usize) -> (usize, f64, bool) {
        let next = if action == 1 {
            state + 1
        } else {
            state.saturating_sub(1)
        };
        if next == 5 {
            (next, 1.0, true)
        } else {
            (next, -0.01, false)
        }
    }

    fn one_hot(s: usize) -> Vec<f64> {
        let mut v = vec![0.0; 6];
        v[s] = 1.0;
        v
    }

    #[test]
    fn learns_the_corridor() {
        let mut cfg = DqnConfig::new(6, 2);
        cfg.hidden = vec![24];
        cfg.eps_decay_steps = 1_500;
        cfg.min_replay = 64;
        cfg.target_sync_every = 50;
        cfg.seed = 7;
        let mut agent = DqnAgent::new(cfg);
        for _episode in 0..250 {
            let mut s = 0usize;
            for _ in 0..30 {
                let a = agent.act(&one_hot(s), &[]);
                let (s2, r, done) = corridor_step(s, a);
                agent.observe(Transition {
                    state: one_hot(s),
                    action: a,
                    reward: r,
                    next_state: one_hot(s2),
                    next_valid: Vec::new(),
                    done,
                });
                s = s2;
                if done {
                    break;
                }
            }
        }
        // The greedy policy must walk straight to the goal.
        let mut s = 0usize;
        for step in 0..6 {
            let a = agent.act_greedy(&one_hot(s), &[]);
            assert_eq!(a, 1, "greedy policy went left at state {s} (step {step})");
            let (s2, _, done) = corridor_step(s, a);
            s = s2;
            if done {
                return;
            }
        }
        panic!("never reached the goal");
    }

    #[test]
    fn masking_blocks_invalid_actions() {
        let mut agent = DqnAgent::new(DqnConfig::new(3, 4));
        for _ in 0..100 {
            let a = agent.act(&[0.1, 0.2, 0.3], &[false, true, false, true]);
            assert!(a == 1 || a == 3);
        }
        let g = agent.act_greedy(&[0.1, 0.2, 0.3], &[false, false, true, false]);
        assert_eq!(g, 2);
    }

    #[test]
    fn epsilon_anneals() {
        let mut cfg = DqnConfig::new(2, 2);
        cfg.eps_decay_steps = 10;
        let mut agent = DqnAgent::new(cfg);
        assert_eq!(agent.epsilon(), 1.0);
        for _ in 0..20 {
            let _ = agent.act(&[0.0, 0.0], &[]);
        }
        assert!((agent.epsilon() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn learning_reduces_td_loss_on_a_bandit() {
        // Single state, two actions with rewards 0 / 1, episodes of length 1.
        let mut cfg = DqnConfig::new(1, 2);
        cfg.min_replay = 16;
        cfg.seed = 3;
        let mut agent = DqnAgent::new(cfg);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for i in 0..800 {
            let a = agent.act(&[1.0], &[]);
            let r = if a == 1 { 1.0 } else { 0.0 };
            if let Some(loss) = agent.observe(Transition {
                state: vec![1.0],
                action: a,
                reward: r,
                next_state: vec![1.0],
                next_valid: Vec::new(),
                done: true,
            }) {
                if first_loss.is_none() && i > 20 {
                    first_loss = Some(loss);
                }
                last_loss = loss;
            }
        }
        assert!(last_loss < first_loss.unwrap(), "loss did not shrink");
        assert_eq!(agent.act_greedy(&[1.0], &[]), 1);
        assert!(agent.learn_steps() > 0);
    }

    #[test]
    #[should_panic(expected = "no valid action")]
    fn all_masked_panics() {
        let mut agent = DqnAgent::new(DqnConfig::new(1, 2));
        let _ = agent.act(&[0.0], &[false, false]);
    }
}
