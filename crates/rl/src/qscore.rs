//! Q-learning over *action features* (a scoring network).
//!
//! Instead of one output head per discrete action, the network scores a
//! feature vector describing a `(state, action)` pair; the policy picks the
//! best-scored candidate. With shared weights across actions the learner
//! generalizes across zones/teams from very little data — the property the
//! dispatch policy needs, since one day of disaster provides only a few
//! hundred rounds.

use crate::adam::Adam;
use crate::nn::Mlp;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Hyperparameters of the scoring learner.
#[derive(Debug, Clone, PartialEq)]
pub struct QScoreConfig {
    /// Dimension of one `(state, action)` feature vector.
    pub feature_dim: usize,
    /// Hidden layers of the scoring network.
    pub hidden: Vec<usize>,
    /// TD discount γ.
    pub gamma: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Minibatch size per learning step.
    pub batch_size: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Transitions required before learning starts.
    pub min_replay: usize,
    /// Sync the target network every this many learning steps.
    pub target_sync_every: u64,
    /// Initial exploration rate.
    pub eps_start: f64,
    /// Final exploration rate.
    pub eps_end: f64,
    /// Acting steps over which ε anneals linearly.
    pub eps_decay_steps: u64,
    /// RNG / init seed.
    pub seed: u64,
}

impl QScoreConfig {
    /// Defaults for a small dispatch problem.
    pub fn new(feature_dim: usize) -> Self {
        Self {
            feature_dim,
            hidden: vec![32, 32],
            gamma: 0.9,
            lr: 1e-3,
            batch_size: 32,
            replay_capacity: 50_000,
            min_replay: 200,
            target_sync_every: 200,
            eps_start: 0.5,
            eps_end: 0.02,
            eps_decay_steps: 5_000,
            seed: 0,
        }
    }
}

/// One stored transition: the chosen pair's features, the observed reward,
/// and the feature vectors of every candidate in the next state.
#[derive(Debug, Clone, PartialEq)]
pub struct PairTransition {
    /// Features of the chosen `(state, action)` pair.
    pub features: Vec<f64>,
    /// Reward observed after acting.
    pub reward: f64,
    /// Candidate features available in the next state (empty = terminal).
    pub next_candidates: Vec<Vec<f64>>,
}

/// A Q-network over action features with replay and a target network.
#[derive(Debug)]
pub struct QScore {
    config: QScoreConfig,
    online: Mlp,
    target: Mlp,
    adam: Adam,
    replay: Vec<PairTransition>,
    replay_next: usize,
    rng: StdRng,
    act_steps: u64,
    learn_steps: u64,
}

impl QScore {
    /// Creates the learner.
    ///
    /// # Panics
    ///
    /// Panics if `feature_dim` or `batch_size` is zero.
    pub fn new(config: QScoreConfig) -> Self {
        assert!(config.feature_dim > 0, "feature dimension must be positive");
        assert!(config.batch_size > 0, "batch size must be positive");
        let mut dims = vec![config.feature_dim];
        dims.extend_from_slice(&config.hidden);
        dims.push(1);
        let online = Mlp::new(&dims, config.seed);
        let mut target = Mlp::new(&dims, config.seed.wrapping_add(1));
        target.copy_params_from(&online);
        let adam = Adam::new(&online, config.lr);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x7173_636f_7265);
        Self {
            config,
            online,
            target,
            adam,
            replay: Vec::new(),
            replay_next: 0,
            rng,
            act_steps: 0,
            learn_steps: 0,
        }
    }

    /// Rebuilds a learner around an already-trained scoring network (e.g.
    /// one loaded through [`crate::persist::mlp_from_text`]) — the model
    /// hot-swap path of a serving runtime. The target network starts
    /// synced to `online`, the replay buffer empty, and `config.hidden` is
    /// overwritten with the loaded network's actual hidden sizes.
    ///
    /// # Panics
    ///
    /// Panics if the network's input dimension differs from
    /// `config.feature_dim` or its output is not a single score.
    pub fn from_mlp(mut config: QScoreConfig, online: Mlp) -> Self {
        assert_eq!(
            online.input_dim(),
            config.feature_dim,
            "network input dimension must match the feature dimension"
        );
        assert_eq!(
            online.output_dim(),
            1,
            "scoring network must output one value"
        );
        let dims = online.layer_dims();
        config.hidden = dims[1..dims.len() - 1].to_vec();
        let target = online.clone();
        let adam = Adam::new(&online, config.lr);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x7173_636f_7265);
        Self {
            config,
            online,
            target,
            adam,
            replay: Vec::new(),
            replay_next: 0,
            rng,
            act_steps: 0,
            learn_steps: 0,
        }
    }

    /// The online scoring network (checkpointing / persistence).
    pub fn online(&self) -> &Mlp {
        &self.online
    }

    /// The configuration.
    pub fn config(&self) -> &QScoreConfig {
        &self.config
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        let f = (self.act_steps as f64 / self.config.eps_decay_steps as f64).min(1.0);
        self.config.eps_start + (self.config.eps_end - self.config.eps_start) * f
    }

    /// Q-value of one pair.
    pub fn q(&self, features: &[f64]) -> f64 {
        self.online.predict(features)[0]
    }

    /// Index of the best-scored candidate.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn best(&self, candidates: &[Vec<f64>]) -> usize {
        assert!(!candidates.is_empty(), "no candidates to score");
        candidates
            .iter()
            .enumerate()
            .max_by(|a, b| {
                self.q(a.1)
                    .partial_cmp(&self.q(b.1))
                    .expect("Q values are never NaN")
            })
            .map(|(i, _)| i)
            .expect("non-empty candidates")
    }

    /// ε-greedy selection among candidates.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn act(&mut self, candidates: &[Vec<f64>]) -> usize {
        assert!(!candidates.is_empty(), "no candidates to score");
        self.act_steps += 1;
        if self.rng.random::<f64>() < self.epsilon() {
            self.rng.random_range(0..candidates.len())
        } else {
            self.best(candidates)
        }
    }

    /// Stores a transition (ring buffer).
    pub fn store(&mut self, t: PairTransition) {
        if self.replay.len() < self.config.replay_capacity {
            self.replay.push(t);
        } else {
            self.replay[self.replay_next] = t;
            self.replay_next = (self.replay_next + 1) % self.config.replay_capacity;
        }
    }

    /// Stores and, once warmed up, learns. Returns the TD loss if a step
    /// happened.
    pub fn observe(&mut self, t: PairTransition) -> Option<f64> {
        self.store(t);
        (self.replay.len() >= self.config.min_replay.max(self.config.batch_size))
            .then(|| self.learn_step())
    }

    /// One minibatch TD step; returns the mean squared TD error.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been stored yet.
    pub fn learn_step(&mut self) -> f64 {
        assert!(!self.replay.is_empty(), "nothing to learn from");
        let bs = self.config.batch_size;
        self.online.zero_grad();
        let mut loss = 0.0;
        for _ in 0..bs {
            let t = self.replay[self.rng.random_range(0..self.replay.len())].clone();
            let target_q = if t.next_candidates.is_empty() {
                t.reward
            } else {
                let best_next = t
                    .next_candidates
                    .iter()
                    .map(|c| self.target.predict(c)[0])
                    .fold(f64::NEG_INFINITY, f64::max);
                t.reward + self.config.gamma * best_next
            };
            let cache = self.online.forward(&t.features);
            let err = cache.output()[0] - target_q;
            loss += err * err;
            self.online.backward(&cache, &[err]);
        }
        self.adam.step(&mut self.online, bs);
        self.learn_steps += 1;
        if self
            .learn_steps
            .is_multiple_of(self.config.target_sync_every)
        {
            self.target.copy_params_from(&self.online);
        }
        loss / bs as f64
    }

    /// Learning steps performed so far.
    pub fn learn_steps(&self) -> u64 {
        self.learn_steps
    }

    /// Acting steps performed so far.
    pub fn act_steps(&self) -> u64 {
        self.act_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Candidates are `(value, noise)` pairs; reward equals the value. The
    /// learner must score by the first feature.
    #[test]
    fn learns_to_rank_by_value_feature() {
        let mut cfg = QScoreConfig::new(2);
        cfg.eps_decay_steps = 800;
        cfg.min_replay = 32;
        cfg.seed = 5;
        let mut q = QScore::new(cfg);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_500 {
            let candidates: Vec<Vec<f64>> = (0..4)
                .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
                .collect();
            let a = q.act(&candidates);
            let reward = candidates[a][0];
            q.observe(PairTransition {
                features: candidates[a].clone(),
                reward,
                next_candidates: Vec::new(),
            });
        }
        // Greedy choice must pick the max-value candidate.
        let test: Vec<Vec<f64>> = vec![vec![0.1, 0.9], vec![0.9, 0.1], vec![0.5, 0.5]];
        assert_eq!(q.best(&test), 1);
        assert!(q.learn_steps() > 0);
    }

    #[test]
    fn epsilon_anneals_with_acting() {
        let mut cfg = QScoreConfig::new(1);
        cfg.eps_decay_steps = 10;
        let mut q = QScore::new(cfg);
        assert_eq!(q.epsilon(), 0.5);
        for _ in 0..20 {
            let _ = q.act(&[vec![0.0]]);
        }
        assert!((q.epsilon() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn bootstrapped_targets_propagate_value() {
        // Two-step chain: choosing "go" (feature 1) leads to a next state
        // whose candidates include a high-reward option; "stop" ends with
        // zero. Q(go) must exceed Q(stop).
        let mut cfg = QScoreConfig::new(1);
        cfg.min_replay = 16;
        cfg.gamma = 0.9;
        cfg.seed = 2;
        let mut q = QScore::new(cfg);
        for _ in 0..800 {
            q.observe(PairTransition {
                features: vec![1.0],
                reward: 0.0,
                next_candidates: vec![vec![2.0]],
            });
            q.observe(PairTransition {
                features: vec![2.0],
                reward: 1.0,
                next_candidates: Vec::new(),
            });
            q.observe(PairTransition {
                features: vec![0.0],
                reward: 0.0,
                next_candidates: Vec::new(),
            });
        }
        assert!(
            q.q(&[1.0]) > q.q(&[0.0]) + 0.3,
            "go {} stop {}",
            q.q(&[1.0]),
            q.q(&[0.0])
        );
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_rejected() {
        let mut q = QScore::new(QScoreConfig::new(1));
        let _ = q.act(&[]);
    }
}
