//! Property-based tests for the RL substrate.

use mobirescue_rl::nn::Mlp;
use mobirescue_rl::qscore::{QScore, QScoreConfig};
use mobirescue_rl::reinforce::{Reinforce, ReinforceConfig};
use mobirescue_rl::replay::{ReplayBuffer, Transition};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Gradient check on arbitrary small architectures and inputs.
    #[test]
    fn backprop_matches_finite_differences(
        seed in 0u64..500,
        hidden in 2usize..6,
        x in prop::collection::vec(-2.0f64..2.0, 3),
    ) {
        let mut mlp = Mlp::new(&[3, hidden, 1], seed);
        let target = 0.7;
        let cache = mlp.forward(&x);
        let err = cache.output()[0] - target;
        mlp.zero_grad();
        mlp.backward(&cache, &[err]);
        let mut grads = Vec::new();
        mlp.visit_params_mut(|_, _, g| grads.push(g));
        let loss = |m: &Mlp| {
            let y = m.predict(&x)[0];
            0.5 * (y - target) * (y - target)
        };
        let eps = 1e-6;
        for k in (0..grads.len()).step_by(5) {
            let mut plus = mlp.clone();
            plus.visit_params_mut(|i, w, _| if i == k { *w += eps });
            let mut minus = mlp.clone();
            minus.visit_params_mut(|i, w, _| if i == k { *w -= eps });
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            prop_assert!((numeric - grads[k]).abs() < 1e-4,
                "param {k}: numeric {numeric} vs analytic {}", grads[k]);
        }
    }

    /// The replay buffer never exceeds capacity and always retains the most
    /// recent item.
    #[test]
    fn replay_bounds(capacity in 1usize..20, pushes in 1usize..80) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(Transition {
                state: vec![i as f64],
                action: 0,
                reward: i as f64,
                next_state: vec![],
                next_valid: vec![],
                done: true,
            });
        }
        prop_assert_eq!(buf.len(), pushes.min(capacity));
        let mut rng = StdRng::seed_from_u64(0);
        let sample = buf.sample(&mut rng, 64);
        // Every sampled reward is one of the last `capacity` pushes.
        let floor = pushes.saturating_sub(capacity) as f64;
        prop_assert!(sample.iter().all(|t| t.reward >= floor));
    }

    /// Softmax policies always output proper distributions.
    #[test]
    fn reinforce_distribution(
        state in prop::collection::vec(-5.0f64..5.0, 4),
        actions in 2usize..8,
        seed in 0u64..100,
    ) {
        let mut cfg = ReinforceConfig::new(4, actions);
        cfg.seed = seed;
        let agent = Reinforce::new(cfg);
        let p = agent.probabilities(&state);
        prop_assert_eq!(p.len(), actions);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x > 0.0));
        let greedy = agent.act_greedy(&state);
        prop_assert!(p.iter().all(|&x| x <= p[greedy]));
    }

    /// QScore's greedy choice is consistent with its own Q values.
    #[test]
    fn qscore_best_is_argmax(
        seed in 0u64..100,
        candidates in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 3), 1..10),
    ) {
        let mut cfg = QScoreConfig::new(3);
        cfg.seed = seed;
        let q = QScore::new(cfg);
        let best = q.best(&candidates);
        let best_q = q.q(&candidates[best]);
        for c in &candidates {
            prop_assert!(q.q(c) <= best_q + 1e-12);
        }
    }

    /// Persisting a network is byte-stable: save → load → save produces the
    /// identical text over arbitrary architectures and perturbed weights
    /// (the serving hot-swap path relies on this).
    #[test]
    fn persist_save_load_save_is_byte_stable(
        seed in 0u64..200,
        input in 1usize..6,
        hidden in prop::collection::vec(1usize..8, 0..3),
        scale in -3.0f64..3.0,
    ) {
        let mut dims = vec![input];
        dims.extend_from_slice(&hidden);
        dims.push(1);
        let mut net = Mlp::new(&dims, seed);
        // Stretch weights away from the tidy init so the text covers
        // long/short float spellings, negative zeros included.
        net.visit_params_mut(|i, w, _| *w *= scale * (i as f64 + 0.5));
        let text = mobirescue_rl::persist::mlp_to_text(&net);
        let reloaded =
            mobirescue_rl::persist::mlp_from_text(&text).expect("own output parses");
        prop_assert_eq!(mobirescue_rl::persist::mlp_to_text(&reloaded), text);
        prop_assert_eq!(reloaded.layer_dims(), net.layer_dims());
    }
}
