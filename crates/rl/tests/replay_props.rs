//! Property tests for the replay buffers backing the online trainer:
//! FIFO-exact bounded eviction, in-bounds reproducible sampling, and a
//! text round-trip that leaves a restored ring indistinguishable from a
//! twin that was never snapshotted.

use mobirescue_rl::{PairReplay, PairTransition};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A transition tagged with its push index, so eviction order is
/// observable through the reward field.
fn tagged(i: usize, salt: u64) -> PairTransition {
    let x = (i as f64) + (salt as f64) * 1e-6;
    PairTransition {
        features: vec![x, -x, x * 0.5],
        reward: i as f64,
        next_candidates: if i.is_multiple_of(3) {
            Vec::new()
        } else {
            vec![vec![x, 1.0], vec![0.25, x]]
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ring holds exactly the last `capacity` pushes, no matter how
    /// many arrive: everything older is evicted, everything newer kept.
    #[test]
    fn eviction_is_fifo_exact(capacity in 1usize..32, pushes in 0usize..96, salt in 0u64..1000) {
        let mut ring = PairReplay::new(capacity);
        for i in 0..pushes {
            ring.push(tagged(i, salt));
        }
        prop_assert_eq!(ring.len(), pushes.min(capacity));
        let mut kept: Vec<usize> = ring.items().iter().map(|t| t.reward as usize).collect();
        kept.sort_unstable();
        let expected: Vec<usize> = (pushes.saturating_sub(capacity)..pushes).collect();
        prop_assert_eq!(kept, expected, "the survivors must be exactly the newest pushes");
    }

    /// Sampling only ever returns stored transitions, and the same seed
    /// reproduces the same draw sequence through the vendored rand shim.
    #[test]
    fn sampling_is_in_bounds_and_seed_reproducible(
        capacity in 1usize..32,
        pushes in 1usize..96,
        k in 1usize..64,
        seed in 0u64..1_000_000,
    ) {
        let mut ring = PairReplay::new(capacity);
        for i in 0..pushes {
            ring.push(tagged(i, seed));
        }
        let stored_lo = pushes.saturating_sub(capacity) as f64;
        let stored_hi = (pushes - 1) as f64;
        let mut a = StdRng::seed_from_u64(seed);
        let sample: Vec<f64> = ring.sample(&mut a, k).iter().map(|t| t.reward).collect();
        prop_assert_eq!(sample.len(), k);
        for r in &sample {
            prop_assert!(
                (stored_lo..=stored_hi).contains(r),
                "sampled a transition ({r}) that is not in the ring"
            );
        }
        let mut b = StdRng::seed_from_u64(seed);
        let again: Vec<f64> = ring.sample(&mut b, k).iter().map(|t| t.reward).collect();
        prop_assert_eq!(sample, again, "same seed must reproduce the sample");
    }

    /// Round-tripping through the snapshot text and pushing more
    /// transitions afterwards is indistinguishable from a twin ring that
    /// was never serialized: same contents, same cursor, same future
    /// evictions, same samples.
    #[test]
    fn push_after_restore_equals_never_snapshotted_twin(
        capacity in 1usize..24,
        before in 0usize..48,
        after in 0usize..48,
        seed in 0u64..1_000_000,
    ) {
        let mut twin = PairReplay::new(capacity);
        for i in 0..before {
            twin.push(tagged(i, seed));
        }
        let mut restored = PairReplay::from_text(&twin.to_text()).expect("round-trip parses");
        prop_assert_eq!(&restored, &twin, "restore must be exact");
        for i in before..before + after {
            twin.push(tagged(i, seed));
            restored.push(tagged(i, seed));
        }
        prop_assert_eq!(&restored, &twin, "divergence after post-restore pushes");
        prop_assert_eq!(restored.cursor(), twin.cursor());
        prop_assert_eq!(restored.to_text(), twin.to_text());
        if !twin.is_empty() {
            let mut ra = StdRng::seed_from_u64(seed ^ 0xabc);
            let mut rb = StdRng::seed_from_u64(seed ^ 0xabc);
            let sa: Vec<f64> = twin.sample(&mut ra, 16).iter().map(|t| t.reward).collect();
            let sb: Vec<f64> = restored.sample(&mut rb, 16).iter().map(|t| t.reward).collect();
            prop_assert_eq!(sa, sb, "restored ring must sample like its twin");
        }
    }
}
