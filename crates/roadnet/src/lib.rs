//! Road-network substrate for the MobiRescue reproduction.
//!
//! The paper (Section III-A) represents the city as a directed graph
//! `G = (E, V)` of landmarks and road segments, obtained from OpenStreetMap,
//! partitioned into 7 council-district regions, and — after the disaster —
//! reduced to the *remaining available* network G̃ by satellite flood
//! imaging. This crate provides:
//!
//! * [`geo`] — WGS-84 points, haversine distances, bounding boxes;
//! * [`graph`] — the directed landmark/segment graph with road classes and
//!   speed limits;
//! * [`routing`] — Dijkstra shortest paths parameterized by a pluggable
//!   [`routing::TravelCost`];
//! * [`regions`] — the region partition used throughout the paper's analysis;
//! * [`damage`] — per-segment flood condition implementing `TravelCost`
//!   (this *is* G̃);
//! * [`connectivity`] — reachability and strongly connected components of
//!   the damaged network;
//! * [`generator`] — a procedural Charlotte-like city (grid + arterials +
//!   downtown, hospitals, depot) replacing the OSM import;
//! * [`csr`], [`planner`], [`pool`] — the routing acceleration layer:
//!   frozen CSR adjacency, epoch-scoped cost snapshots, a shared
//!   shortest-path cache keyed by damage generation, and a std-only
//!   scoped thread pool for per-team SSSP fan-out. Results are
//!   bit-identical to [`routing::Router`] by construction.
//!
//! # Examples
//!
//! ```
//! use mobirescue_roadnet::generator::CityConfig;
//! use mobirescue_roadnet::routing::{FreeFlow, Router};
//!
//! let city = CityConfig::small().build(42);
//! let router = Router::new(&city.network);
//! let hospital = city.hospitals[0];
//! let route = router.shortest_path(&FreeFlow, city.depot, hospital);
//! assert!(route.is_some());
//! ```

#![warn(missing_docs)]

pub mod connectivity;
pub mod csr;
pub mod damage;
pub mod generator;
pub mod geo;
pub mod graph;
pub mod planner;
pub mod pool;
pub mod regions;
pub mod routing;

pub use connectivity::{largest_component_size, reachable_from, strongly_connected_components};
pub use csr::{CostSnapshot, CsrGraph};
pub use damage::{NetworkCondition, SegmentCondition};
pub use generator::{City, CityConfig};
pub use geo::{BoundingBox, GeoPoint};
pub use graph::{Landmark, LandmarkId, RoadClass, RoadNetwork, RoadSegment, SegmentId};
pub use planner::{PlannerStats, RoutePlanner};
pub use regions::{RegionId, RegionPartition};
pub use routing::{FreeFlow, Route, Router, ShortestPaths, TravelCost};
