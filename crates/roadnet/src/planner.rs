//! Epoch-scoped route planning: one shared, cached view of shortest
//! paths per damage generation.
//!
//! The paper's dispatcher re-routes every rescue team each 5-minute epoch
//! over the remaining road network G̃. Within one epoch the damage
//! condition is frozen, so every consumer (RL dispatcher, Schedule/Rescue
//! baselines, sim engine, serve shards, metrics) is asking for shortest
//! paths under the *same* cost model — yet the naive path re-ran a full
//! Dijkstra per query. [`RoutePlanner`] memoizes:
//!
//! * the **cost snapshot** (flat per-edge weights, [`crate::csr`]) —
//!   materialized once per [`NetworkCondition`] generation;
//! * **shortest-path trees** keyed by `(generation, source landmark)` —
//!   each team's tree is computed once per epoch and shared by every
//!   consumer;
//! * point and multi-target queries use the CSR early-exit Dijkstra when
//!   no tree is cached, and are answered from the tree when one is.
//!
//! Invalidation is automatic: every damage mutation draws a fresh
//! process-unique generation ([`NetworkCondition::generation`]), and the
//! planner drops condition-scoped entries the moment it sees a new
//! generation. Free-flow entries (generation 0) are immutable and kept
//! for the planner's lifetime.
//!
//! All methods take `&self`; the planner is `Sync` and is shared across
//! the scoped worker threads of [`crate::pool`] by [`RoutePlanner::prewarm`].

use crate::csr::{CostSnapshot, CsrGraph, Goal};
use crate::damage::{NetworkCondition, FREE_FLOW_GENERATION};
use crate::graph::{LandmarkId, RoadNetwork};
use crate::pool::parallel_map;
use crate::routing::{Route, ShortestPaths};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache effectiveness counters (cumulative since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerStats {
    /// Queries answered from a cached shortest-path tree.
    pub hits: u64,
    /// Queries that ran a Dijkstra (full or early-exit).
    pub misses: u64,
}

struct Cache {
    /// Snapshot of the most recent condition generation (one at a time —
    /// epochs are sequential).
    snapshot: Option<Arc<CostSnapshot>>,
    /// Full trees keyed by `(generation, source landmark)`.
    trees: HashMap<(u64, u32), Arc<ShortestPaths>>,
}

/// Shared routing front-end over a frozen [`CsrGraph`] with per-epoch
/// memoization. See the module docs for the caching model; results are
/// bit-identical to [`crate::routing::Router`] by the CSR equivalence
/// contract.
pub struct RoutePlanner<'a> {
    net: &'a RoadNetwork,
    csr: CsrGraph,
    free_flow: Arc<CostSnapshot>,
    cache: Mutex<Cache>,
    hits: AtomicU64,
    misses: AtomicU64,
    prewarmed: AtomicU64,
}

impl std::fmt::Debug for RoutePlanner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("RoutePlanner")
            .field("landmarks", &self.csr.num_landmarks())
            .field("edges", &self.csr.num_edges())
            .field("stats", &stats)
            .finish()
    }
}

impl<'a> RoutePlanner<'a> {
    /// Builds the CSR view of `net` and an empty cache.
    pub fn new(net: &'a RoadNetwork) -> Self {
        let csr = CsrGraph::build(net);
        let free_flow = Arc::new(csr.snapshot_free_flow(net));
        Self {
            net,
            csr,
            free_flow,
            cache: Mutex::new(Cache {
                snapshot: None,
                trees: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            prewarmed: AtomicU64::new(0),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &'a RoadNetwork {
        self.net
    }

    /// The frozen CSR adjacency (for benchmarks and direct CSR runs).
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Cumulative cache counters.
    pub fn stats(&self) -> PlannerStats {
        PlannerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Trees computed by prewarm calls (cumulative). Not part of
    /// [`PlannerStats`] — that struct's shape is persisted in the serve
    /// snapshot wire format and must stay fixed.
    pub fn prewarmed(&self) -> u64 {
        self.prewarmed.load(Ordering::Relaxed)
    }

    /// Publishes the planner's counters into an observability registry
    /// under `prefix` (e.g. `routing`): `{prefix}.cache_hits` /
    /// `{prefix}.cache_misses` / `{prefix}.prewarmed_trees` counters
    /// (mirrored — the planner's atomics stay the source of truth) and a
    /// `{prefix}.cached_trees` gauge. Call at any publication point; the
    /// values are cumulative so re-publishing just refreshes them.
    pub fn publish(&self, registry: &mobirescue_obs::Registry, prefix: &str) {
        let stats = self.stats();
        registry
            .counter(&format!("{prefix}.cache_hits"))
            .set(stats.hits);
        registry
            .counter(&format!("{prefix}.cache_misses"))
            .set(stats.misses);
        registry
            .counter(&format!("{prefix}.prewarmed_trees"))
            .set(self.prewarmed());
        registry
            .gauge(&format!("{prefix}.cached_trees"))
            .set(self.cached_trees() as i64);
    }

    /// Number of shortest-path trees currently cached (all generations).
    pub fn cached_trees(&self) -> usize {
        self.cache
            .lock()
            .expect("planner cache poisoned")
            .trees
            .len()
    }

    /// The cost snapshot for `cond`, materializing it (and evicting
    /// entries of older generations) when the generation is new.
    fn snapshot_for(&self, cond: &NetworkCondition) -> Arc<CostSnapshot> {
        let generation = cond.generation();
        let mut cache = self.cache.lock().expect("planner cache poisoned");
        match &cache.snapshot {
            Some(snap) if snap.generation() == generation => Arc::clone(snap),
            _ => {
                let snap = Arc::new(self.csr.snapshot_condition(self.net, cond));
                cache.snapshot = Some(Arc::clone(&snap));
                // A new generation supersedes every older condition; only
                // immutable free-flow trees survive the epoch boundary.
                cache
                    .trees
                    .retain(|&(gen, _), _| gen == generation || gen == FREE_FLOW_GENERATION);
                snap
            }
        }
    }

    fn cached_tree(&self, generation: u64, from: LandmarkId) -> Option<Arc<ShortestPaths>> {
        let cache = self.cache.lock().expect("planner cache poisoned");
        cache.trees.get(&(generation, from.0)).map(Arc::clone)
    }

    fn insert_tree(&self, generation: u64, tree: Arc<ShortestPaths>) {
        let mut cache = self.cache.lock().expect("planner cache poisoned");
        cache
            .trees
            .entry((generation, tree.source().0))
            .or_insert(tree);
    }

    /// Full shortest-path tree from `from` under `snap`, cached by
    /// `(snap.generation(), from)`. The tree is computed outside the cache
    /// lock so concurrent misses on different sources run in parallel.
    fn tree(&self, snap: &Arc<CostSnapshot>, from: LandmarkId) -> Arc<ShortestPaths> {
        if let Some(tree) = self.cached_tree(snap.generation(), from) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return tree;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let tree = Arc::new(self.csr.shortest_paths(snap, from));
        self.insert_tree(snap.generation(), Arc::clone(&tree));
        tree
    }

    /// Shortest-path tree from `from` under `cond` (cached per epoch).
    pub fn paths_from(&self, cond: &NetworkCondition, from: LandmarkId) -> Arc<ShortestPaths> {
        let snap = self.snapshot_for(cond);
        self.tree(&snap, from)
    }

    /// Shortest-path tree from `from` under free flow (cached forever).
    pub fn free_flow_paths_from(&self, from: LandmarkId) -> Arc<ShortestPaths> {
        let free_flow = Arc::clone(&self.free_flow);
        self.tree(&free_flow, from)
    }

    fn point_query(&self, snap: &CostSnapshot, from: LandmarkId, to: LandmarkId) -> Option<Route> {
        if let Some(tree) = self.cached_tree(snap.generation(), from) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return tree.route_to(self.net, to);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.csr
            .dijkstra(snap, from, Goal::One(to))
            .route_to(self.net, to)
    }

    /// Shortest route from `from` to `to` under `cond`, or `None` when
    /// unreachable. Served from the cached tree when one exists;
    /// otherwise an early-exit point query (not cached — partial trees
    /// are never stored).
    pub fn route(
        &self,
        cond: &NetworkCondition,
        from: LandmarkId,
        to: LandmarkId,
    ) -> Option<Route> {
        let snap = self.snapshot_for(cond);
        self.point_query(&snap, from, to)
    }

    /// Shortest route from `from` to `to` under free flow.
    pub fn free_flow_route(&self, from: LandmarkId, to: LandmarkId) -> Option<Route> {
        let free_flow = Arc::clone(&self.free_flow);
        self.point_query(&free_flow, from, to)
    }

    /// Among `targets`, the one with the least travel time from `from`
    /// under `cond`: `(index into targets, travel time)`, or `None` when
    /// no target is reachable (or `targets` is empty). Uses the cached
    /// tree when present, else a multi-target early-exit Dijkstra that
    /// stops once all distinct targets are settled.
    pub fn nearest_target(
        &self,
        cond: &NetworkCondition,
        from: LandmarkId,
        targets: &[LandmarkId],
    ) -> Option<(usize, f64)> {
        if targets.is_empty() {
            return None;
        }
        let snap = self.snapshot_for(cond);
        let sp = match self.cached_tree(snap.generation(), from) {
            Some(tree) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                tree
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Arc::new(self.csr.dijkstra(&snap, from, Goal::Multi(targets)))
            }
        };
        targets
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| sp.travel_time_s(t).map(|d| (i, d)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("travel times are never NaN"))
    }

    /// Computes (and caches) the shortest-path trees of every listed
    /// source under `cond`, fanning the misses across up to `threads`
    /// scoped workers. This is the per-epoch entry point: dispatchers
    /// prewarm all team locations once, and every subsequent query in the
    /// epoch is a cache hit. Duplicate and already-cached sources are
    /// skipped.
    pub fn prewarm(&self, cond: &NetworkCondition, sources: &[LandmarkId], threads: usize) {
        let snap = self.snapshot_for(cond);
        self.prewarm_snapshot(&snap, sources, threads);
    }

    /// Free-flow analogue of [`RoutePlanner::prewarm`].
    pub fn prewarm_free_flow(&self, sources: &[LandmarkId], threads: usize) {
        let free_flow = Arc::clone(&self.free_flow);
        self.prewarm_snapshot(&free_flow, sources, threads);
    }

    fn prewarm_snapshot(&self, snap: &Arc<CostSnapshot>, sources: &[LandmarkId], threads: usize) {
        let generation = snap.generation();
        let mut missing = Vec::new();
        {
            let cache = self.cache.lock().expect("planner cache poisoned");
            for &from in sources {
                if !cache.trees.contains_key(&(generation, from.0)) && !missing.contains(&from) {
                    missing.push(from);
                }
            }
        }
        self.hits
            .fetch_add((sources.len() - missing.len()) as u64, Ordering::Relaxed);
        self.misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        self.prewarmed
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        if missing.is_empty() {
            return;
        }
        let trees = parallel_map(threads, &missing, |_, &from| {
            Arc::new(self.csr.shortest_paths(snap, from))
        });
        let mut cache = self.cache.lock().expect("planner cache poisoned");
        for tree in trees {
            cache
                .trees
                .entry((generation, tree.source().0))
                .or_insert(tree);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::graph::{RoadClass, SegmentId};
    use crate::routing::{FreeFlow, Router};

    /// 5x5 grid, 600 m spacing.
    fn grid5() -> (RoadNetwork, Vec<LandmarkId>) {
        let mut net = RoadNetwork::new();
        let origin = GeoPoint::new(35.0, -80.0);
        let mut ids = Vec::new();
        for r in 0..5 {
            for c in 0..5 {
                ids.push(net.add_landmark(origin.offset_m(c as f64 * 600.0, r as f64 * 600.0)));
            }
        }
        for r in 0..5 {
            for c in 0..5 {
                let i = r * 5 + c;
                if c + 1 < 5 {
                    net.add_two_way(ids[i], ids[i + 1], RoadClass::Residential);
                }
                if r + 1 < 5 {
                    net.add_two_way(ids[i], ids[i + 5], RoadClass::Residential);
                }
            }
        }
        (net, ids)
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (net, ids) = grid5();
        let planner = RoutePlanner::new(&net);
        let cond = NetworkCondition::pristine(&net);
        let a = planner.paths_from(&cond, ids[0]);
        let b = planner.paths_from(&cond, ids[0]);
        assert!(Arc::ptr_eq(&a, &b), "second query must share the tree");
        let stats = planner.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(planner.cached_trees(), 1);
    }

    #[test]
    fn generation_bump_invalidates_but_results_stay_correct() {
        let (net, ids) = grid5();
        let planner = RoutePlanner::new(&net);
        let mut cond = NetworkCondition::pristine(&net);
        let before = planner.paths_from(&cond, ids[0]);
        let blocked: SegmentId = net.out_segments(ids[0])[0];
        cond.block(blocked);
        let after = planner.paths_from(&cond, ids[0]);
        assert!(
            !Arc::ptr_eq(&before, &after),
            "stale tree must not be reused"
        );
        // The fresh tree matches a naive run under the mutated condition.
        let naive = Router::new(&net).shortest_paths_from(&cond, ids[0]);
        assert_eq!(after.travel_times(), naive.travel_times());
        // Old-generation tree was evicted; only the new one remains.
        assert_eq!(planner.cached_trees(), 1);
    }

    #[test]
    fn free_flow_trees_survive_condition_churn() {
        let (net, ids) = grid5();
        let planner = RoutePlanner::new(&net);
        let ff = planner.free_flow_paths_from(ids[3]);
        let mut cond = NetworkCondition::pristine(&net);
        planner.paths_from(&cond, ids[0]);
        cond.block(net.out_segments(ids[0])[0]);
        planner.paths_from(&cond, ids[0]);
        let ff_again = planner.free_flow_paths_from(ids[3]);
        assert!(Arc::ptr_eq(&ff, &ff_again));
    }

    #[test]
    fn route_and_nearest_match_naive_router() {
        let (net, ids) = grid5();
        let planner = RoutePlanner::new(&net);
        let router = Router::new(&net);
        let mut cond = NetworkCondition::pristine(&net);
        cond.block(net.out_segments(ids[12])[0]);
        cond.set_speed_factor(net.out_segments(ids[6])[1], 0.5);
        for &to in &[ids[24], ids[7], ids[0]] {
            assert_eq!(
                planner.route(&cond, ids[0], to),
                router.shortest_path(&cond, ids[0], to)
            );
            assert_eq!(
                planner.free_flow_route(ids[0], to),
                router.shortest_path(&FreeFlow, ids[0], to)
            );
        }
        let targets = [ids[24], ids[4], ids[20], ids[4]];
        assert_eq!(
            planner.nearest_target(&cond, ids[0], &targets),
            router.nearest_target(&cond, ids[0], &targets)
        );
        assert_eq!(planner.nearest_target(&cond, ids[0], &[]), None);
    }

    #[test]
    fn prewarm_fills_cache_in_parallel() {
        let (net, ids) = grid5();
        let planner = RoutePlanner::new(&net);
        let cond = NetworkCondition::pristine(&net);
        let sources: Vec<LandmarkId> = ids.iter().copied().take(10).collect();
        planner.prewarm(&cond, &sources, 4);
        assert_eq!(planner.cached_trees(), 10);
        assert_eq!(planner.stats().misses, 10);
        // Every post-prewarm query is a hit, and matches a naive run.
        let router = Router::new(&net);
        for &from in &sources {
            let tree = planner.paths_from(&cond, from);
            let naive = router.shortest_paths_from(&cond, from);
            assert_eq!(tree.travel_times(), naive.travel_times());
        }
        assert_eq!(planner.stats().hits, 10);
        // Re-prewarming the same sources computes nothing new.
        planner.prewarm(&cond, &sources, 4);
        assert_eq!(planner.stats().misses, 10);
    }

    #[test]
    fn publish_mirrors_counters_into_registry() {
        let (net, ids) = grid5();
        let planner = RoutePlanner::new(&net);
        let cond = NetworkCondition::pristine(&net);
        planner.prewarm(&cond, &ids[..4], 2);
        planner.paths_from(&cond, ids[0]);
        assert_eq!(planner.prewarmed(), 4);
        let reg = mobirescue_obs::Registry::new();
        planner.publish(&reg, "routing");
        let snap = reg.snapshot();
        assert_eq!(snap.counters["routing.cache_hits"], 1);
        assert_eq!(snap.counters["routing.cache_misses"], 4);
        assert_eq!(snap.counters["routing.prewarmed_trees"], 4);
        assert_eq!(snap.gauges["routing.cached_trees"], 4);
        // Re-publishing refreshes rather than double counts.
        planner.publish(&reg, "routing");
        assert_eq!(reg.snapshot().counters["routing.cache_hits"], 1);
    }

    #[test]
    fn point_queries_prefer_cached_tree() {
        let (net, ids) = grid5();
        let planner = RoutePlanner::new(&net);
        let cond = NetworkCondition::pristine(&net);
        // Miss: early-exit query, not cached.
        planner.route(&cond, ids[0], ids[24]);
        assert_eq!(planner.cached_trees(), 0);
        assert_eq!(planner.stats().misses, 1);
        // Cache the tree, then the same query is a hit.
        planner.paths_from(&cond, ids[0]);
        planner.route(&cond, ids[0], ids[24]);
        let stats = planner.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }
}
