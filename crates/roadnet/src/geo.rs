//! Geographic primitives: points, bounding boxes and distances.
//!
//! All distances are in meters. Coordinates are WGS-84 degrees, matching the
//! schema of the paper's GPS dataset (latitude, longitude).

use serde::{Deserialize, Serialize};

/// Mean Earth radius in meters, used by the haversine distance.
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// A WGS-84 position (degrees latitude / longitude).
///
/// # Examples
///
/// ```
/// use mobirescue_roadnet::geo::GeoPoint;
///
/// let charlotte = GeoPoint::new(35.2271, -80.8431);
/// let raleigh = GeoPoint::new(35.7796, -78.6382);
/// let d = charlotte.distance_m(raleigh);
/// assert!((d - 209_000.0).abs() < 5_000.0, "≈209 km, got {d}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude and longitude in degrees.
    pub fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Great-circle (haversine) distance to `other`, in meters.
    pub fn distance_m(self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Returns the point displaced by `east_m` meters east and `north_m`
    /// meters north, using a local equirectangular approximation.
    ///
    /// Accurate to well under a meter at city scale, which is all the
    /// procedural city generator needs.
    pub fn offset_m(self, east_m: f64, north_m: f64) -> GeoPoint {
        let dlat = north_m / EARTH_RADIUS_M;
        let dlon = east_m / (EARTH_RADIUS_M * self.lat.to_radians().cos());
        GeoPoint::new(self.lat + dlat.to_degrees(), self.lon + dlon.to_degrees())
    }

    /// Local planar coordinates of `self` relative to `origin`, in meters
    /// (east, north). Inverse of [`GeoPoint::offset_m`] at city scale.
    pub fn local_xy_m(self, origin: GeoPoint) -> (f64, f64) {
        let north = (self.lat - origin.lat).to_radians() * EARTH_RADIUS_M;
        let east =
            (self.lon - origin.lon).to_radians() * EARTH_RADIUS_M * origin.lat.to_radians().cos();
        (east, north)
    }

    /// Midpoint between `self` and `other` (arithmetic in degrees; fine at
    /// city scale away from the antimeridian).
    pub fn midpoint(self, other: GeoPoint) -> GeoPoint {
        GeoPoint::new((self.lat + other.lat) / 2.0, (self.lon + other.lon) / 2.0)
    }
}

/// An axis-aligned latitude/longitude rectangle.
///
/// The paper crops its dataset with the bounding box south-west
/// (35.6022, −79.0735), north-east (36.0070, −78.2592); the data-cleaning
/// stage filters positions outside the box of interest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// South-west corner.
    pub south_west: GeoPoint,
    /// North-east corner.
    pub north_east: GeoPoint,
}

impl BoundingBox {
    /// Creates a bounding box from its south-west and north-east corners.
    ///
    /// # Panics
    ///
    /// Panics if the corners are not in south-west / north-east order.
    pub fn new(south_west: GeoPoint, north_east: GeoPoint) -> Self {
        assert!(
            south_west.lat <= north_east.lat && south_west.lon <= north_east.lon,
            "corners must be given in (south-west, north-east) order"
        );
        Self {
            south_west,
            north_east,
        }
    }

    /// The smallest box containing every point of `iter`, or `None` when the
    /// iterator is empty.
    pub fn enclosing<I: IntoIterator<Item = GeoPoint>>(iter: I) -> Option<Self> {
        let mut it = iter.into_iter();
        let first = it.next()?;
        let (mut s, mut w, mut n, mut e) = (first.lat, first.lon, first.lat, first.lon);
        for p in it {
            s = s.min(p.lat);
            n = n.max(p.lat);
            w = w.min(p.lon);
            e = e.max(p.lon);
        }
        Some(Self::new(GeoPoint::new(s, w), GeoPoint::new(n, e)))
    }

    /// Whether `p` lies inside the box (inclusive).
    pub fn contains(&self, p: GeoPoint) -> bool {
        p.lat >= self.south_west.lat
            && p.lat <= self.north_east.lat
            && p.lon >= self.south_west.lon
            && p.lon <= self.north_east.lon
    }

    /// Center of the box.
    pub fn center(&self) -> GeoPoint {
        self.south_west.midpoint(self.north_east)
    }

    /// Grows the box by `margin_m` meters on every side.
    pub fn expanded_m(&self, margin_m: f64) -> BoundingBox {
        BoundingBox::new(
            self.south_west.offset_m(-margin_m, -margin_m),
            self.north_east.offset_m(margin_m, margin_m),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_zero_for_same_point() {
        let p = GeoPoint::new(35.2271, -80.8431);
        assert_eq!(p.distance_m(p), 0.0);
    }

    #[test]
    fn haversine_symmetric() {
        let a = GeoPoint::new(35.2, -80.8);
        let b = GeoPoint::new(35.3, -80.7);
        assert!((a.distance_m(b) - b.distance_m(a)).abs() < 1e-9);
    }

    #[test]
    fn one_degree_latitude_is_about_111_km() {
        let a = GeoPoint::new(35.0, -80.0);
        let b = GeoPoint::new(36.0, -80.0);
        let d = a.distance_m(b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn offset_round_trips_through_local_xy() {
        let origin = GeoPoint::new(35.2271, -80.8431);
        let moved = origin.offset_m(1500.0, -2300.0);
        let (east, north) = moved.local_xy_m(origin);
        assert!((east - 1500.0).abs() < 0.5, "east {east}");
        assert!((north + 2300.0).abs() < 0.5, "north {north}");
    }

    #[test]
    fn offset_distance_matches_haversine() {
        let origin = GeoPoint::new(35.2271, -80.8431);
        let moved = origin.offset_m(3000.0, 4000.0);
        let d = origin.distance_m(moved);
        assert!((d - 5000.0).abs() < 5.0, "got {d}");
    }

    #[test]
    fn bbox_contains_and_center() {
        let bb = BoundingBox::new(GeoPoint::new(35.0, -81.0), GeoPoint::new(36.0, -80.0));
        assert!(bb.contains(GeoPoint::new(35.5, -80.5)));
        assert!(bb.contains(bb.south_west));
        assert!(bb.contains(bb.north_east));
        assert!(!bb.contains(GeoPoint::new(34.9, -80.5)));
        assert!(!bb.contains(GeoPoint::new(35.5, -79.9)));
        let c = bb.center();
        assert!((c.lat - 35.5).abs() < 1e-12 && (c.lon + 80.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "south-west")]
    fn bbox_rejects_swapped_corners() {
        let _ = BoundingBox::new(GeoPoint::new(36.0, -80.0), GeoPoint::new(35.0, -81.0));
    }

    #[test]
    fn enclosing_covers_all_points() {
        let pts = [
            GeoPoint::new(35.1, -80.9),
            GeoPoint::new(35.9, -80.1),
            GeoPoint::new(35.4, -80.6),
        ];
        let bb = BoundingBox::enclosing(pts).unwrap();
        for p in pts {
            assert!(bb.contains(p));
        }
        assert!(BoundingBox::enclosing(std::iter::empty()).is_none());
    }

    #[test]
    fn expanded_box_contains_original() {
        let bb = BoundingBox::new(GeoPoint::new(35.0, -81.0), GeoPoint::new(36.0, -80.0));
        let big = bb.expanded_m(1000.0);
        assert!(big.contains(bb.south_west) && big.contains(bb.north_east));
        assert!(!bb.contains(big.south_west));
    }
}
