//! Connectivity analysis of the (possibly damaged) road network.
//!
//! Flooding cuts the network into islands; dispatchers and the analysis
//! pipeline both need to reason about which landmarks remain mutually
//! reachable (the paper's Ẽ is only useful alongside knowing who can reach
//! whom). This module provides reachability sets and strongly connected
//! components under any [`TravelCost`].

use crate::graph::{LandmarkId, RoadNetwork};
use crate::routing::TravelCost;

/// Landmarks reachable from `from` by driving (forward BFS over passable
/// segments).
pub fn reachable_from<C: TravelCost>(net: &RoadNetwork, cost: &C, from: LandmarkId) -> Vec<bool> {
    let mut seen = vec![false; net.num_landmarks()];
    let mut queue = std::collections::VecDeque::new();
    seen[from.index()] = true;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &sid in net.out_segments(u) {
            let seg = net.segment(sid);
            if cost.travel_time_s(seg).is_some() && !seen[seg.to.index()] {
                seen[seg.to.index()] = true;
                queue.push_back(seg.to);
            }
        }
    }
    seen
}

/// Strongly connected components under `cost` (Kosaraju's algorithm).
/// Returns one component id per landmark, with ids in `0..num_components`.
pub fn strongly_connected_components<C: TravelCost>(
    net: &RoadNetwork,
    cost: &C,
) -> (Vec<usize>, usize) {
    let n = net.num_landmarks();
    let passable = |sid| cost.travel_time_s(net.segment(sid)).is_some();

    // Pass 1: iterative DFS finish order on the forward graph.
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // (node, next out-edge index) stack.
        let mut stack = vec![(LandmarkId(start as u32), 0usize)];
        visited[start] = true;
        while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
            let outs = net.out_segments(u);
            let mut advanced = false;
            while *idx < outs.len() {
                let sid = outs[*idx];
                *idx += 1;
                if !passable(sid) {
                    continue;
                }
                let v = net.segment(sid).to;
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    stack.push((v, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                order.push(u);
                stack.pop();
            }
        }
    }

    // Pass 2: reverse-graph DFS in decreasing finish order.
    let mut component = vec![usize::MAX; n];
    let mut num_components = 0;
    for &root in order.iter().rev() {
        if component[root.index()] != usize::MAX {
            continue;
        }
        let mut stack = vec![root];
        component[root.index()] = num_components;
        while let Some(u) = stack.pop() {
            for &sid in net.in_segments(u) {
                if !passable(sid) {
                    continue;
                }
                let v = net.segment(sid).from;
                if component[v.index()] == usize::MAX {
                    component[v.index()] = num_components;
                    stack.push(v);
                }
            }
        }
        num_components += 1;
    }
    (component, num_components)
}

/// Size of the largest strongly connected component under `cost` — a
/// one-number summary of how badly flooding has fragmented the city.
pub fn largest_component_size<C: TravelCost>(net: &RoadNetwork, cost: &C) -> usize {
    let (components, count) = strongly_connected_components(net, cost);
    let mut sizes = vec![0usize; count];
    for c in components {
        sizes[c] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::damage::NetworkCondition;
    use crate::generator::CityConfig;
    use crate::geo::GeoPoint;
    use crate::graph::RoadClass;
    use crate::routing::FreeFlow;

    #[test]
    fn pristine_grid_is_one_component() {
        let city = CityConfig::small().build(2);
        let (comp, count) = strongly_connected_components(&city.network, &FreeFlow);
        assert_eq!(count, 1);
        assert!(comp.iter().all(|&c| c == 0));
        assert_eq!(
            largest_component_size(&city.network, &FreeFlow),
            city.network.num_landmarks()
        );
    }

    #[test]
    fn one_way_pair_forms_two_components() {
        let mut net = RoadNetwork::new();
        let a = net.add_landmark(GeoPoint::new(35.0, -80.0));
        let b = net.add_landmark(GeoPoint::new(35.01, -80.0));
        net.add_segment(a, b, RoadClass::Residential);
        let (comp, count) = strongly_connected_components(&net, &FreeFlow);
        assert_eq!(count, 2);
        assert_ne!(comp[a.index()], comp[b.index()]);
    }

    #[test]
    fn reachability_matches_components_on_bidirectional_graphs() {
        let city = CityConfig::small().build(3);
        // Block a band of segments to split the grid.
        let mut cond = NetworkCondition::pristine(&city.network);
        for seg in city.network.segments() {
            let mid = city.network.segment_midpoint(seg.id);
            let (_, north) = mid.local_xy_m(city.center);
            if (-300.0..300.0).contains(&north) {
                cond.block(seg.id);
            }
        }
        let (comp, count) = strongly_connected_components(&city.network, &cond);
        assert!(count >= 2, "the band should split the grid");
        // Reachability from the depot agrees with its component on this
        // symmetric (two-way) network.
        let reach = reachable_from(&city.network, &cond, city.depot);
        let depot_comp = comp[city.depot.index()];
        for lm in city.network.landmark_ids() {
            if comp[lm.index()] == depot_comp {
                assert!(reach[lm.index()], "{lm} in depot component but unreachable");
            }
        }
    }

    #[test]
    fn flood_shrinks_the_largest_component() {
        let city = CityConfig::small().build(4);
        let mut cond = NetworkCondition::pristine(&city.network);
        let before = largest_component_size(&city.network, &cond);
        for sid in city.network.segment_ids().take(200) {
            cond.block(sid);
        }
        let after = largest_component_size(&city.network, &cond);
        assert!(after < before);
    }
}
