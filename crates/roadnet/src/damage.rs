//! Flood damage applied to the road network.
//!
//! The paper obtains the *remaining available road network*
//! G̃ = (Ẽ, Ṽ) from satellite imaging: segments inside flood zones are
//! impassable, and segments in wet-but-passable areas are slowed. A
//! [`NetworkCondition`] captures this per-segment state and implements
//! [`TravelCost`] so routing automatically respects G̃.

use crate::graph::{RoadNetwork, RoadSegment, SegmentId};
use crate::routing::TravelCost;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Generation reserved for the static free-flow cost model (never assigned
/// to a [`NetworkCondition`]).
pub(crate) const FREE_FLOW_GENERATION: u64 = 0;

/// Process-wide generation counter. Every [`NetworkCondition`] value with
/// distinct contents carries a distinct generation: a fresh one is drawn at
/// construction and after every mutation, so cached cost snapshots keyed by
/// generation (see [`crate::planner::RoutePlanner`]) can never be stale.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(FREE_FLOW_GENERATION + 1);

fn fresh_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Condition of a single road segment under the current disaster state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentCondition {
    /// Whether the segment is passable at all (member of Ẽ).
    pub operable: bool,
    /// Multiplier on the free-flow speed in `(0, 1]`; `1.0` means dry.
    pub speed_factor: f64,
}

impl Default for SegmentCondition {
    fn default() -> Self {
        Self {
            operable: true,
            speed_factor: 1.0,
        }
    }
}

/// Per-segment condition of the whole network: the concrete representation of
/// G̃ plus flood-related slowdowns.
///
/// # Examples
///
/// ```
/// use mobirescue_roadnet::geo::GeoPoint;
/// use mobirescue_roadnet::graph::{RoadClass, RoadNetwork};
/// use mobirescue_roadnet::damage::NetworkCondition;
/// use mobirescue_roadnet::routing::{Router, TravelCost};
///
/// let mut net = RoadNetwork::new();
/// let a = net.add_landmark(GeoPoint::new(35.00, -80.00));
/// let b = net.add_landmark(GeoPoint::new(35.01, -80.00));
/// let (ab, _) = net.add_two_way(a, b, RoadClass::Residential);
///
/// let mut cond = NetworkCondition::pristine(&net);
/// cond.block(ab);
/// assert!(Router::new(&net).shortest_path(&cond, a, b).is_none());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkCondition {
    conditions: Vec<SegmentCondition>,
    /// Cache-invalidation tag: process-unique for these contents. A clone
    /// shares its source's generation (same contents, same cached costs);
    /// every mutation draws a fresh one.
    generation: u64,
}

impl PartialEq for NetworkCondition {
    fn eq(&self, other: &Self) -> bool {
        // The generation is a cache tag, not part of the condition's value:
        // two independently built but identical conditions are equal.
        self.conditions == other.conditions
    }
}

impl NetworkCondition {
    /// Every segment passable at full speed (the pre-disaster network).
    pub fn pristine(net: &RoadNetwork) -> Self {
        Self {
            conditions: vec![SegmentCondition::default(); net.num_segments()],
            generation: fresh_generation(),
        }
    }

    /// The condition's cost generation: a process-unique tag shared only by
    /// clones with identical contents. [`crate::planner::RoutePlanner`]
    /// keys its per-epoch cost snapshots and shortest-path cache on this,
    /// so any damage event (block/unblock/slowdown) automatically
    /// invalidates every cached route derived from the old state.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of segments tracked.
    pub fn len(&self) -> usize {
        self.conditions.len()
    }

    /// Whether the condition tracks zero segments.
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }

    /// Condition of a segment.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn condition(&self, seg: SegmentId) -> SegmentCondition {
        self.conditions[seg.index()]
    }

    /// Marks `seg` impassable (removes it from Ẽ).
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn block(&mut self, seg: SegmentId) {
        self.conditions[seg.index()].operable = false;
        self.generation = fresh_generation();
    }

    /// Restores `seg` to passable (keeping its speed factor).
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn unblock(&mut self, seg: SegmentId) {
        self.conditions[seg.index()].operable = true;
        self.generation = fresh_generation();
    }

    /// Sets the speed multiplier of `seg`.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range or `factor` is not in `(0, 1]`.
    pub fn set_speed_factor(&mut self, seg: SegmentId, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "speed factor must be in (0, 1], got {factor}"
        );
        self.conditions[seg.index()].speed_factor = factor;
        self.generation = fresh_generation();
    }

    /// Whether `seg` is passable.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn is_operable(&self, seg: SegmentId) -> bool {
        self.conditions[seg.index()].operable
    }

    /// Number of passable segments `|Ẽ|`.
    pub fn operable_count(&self) -> usize {
        self.conditions.iter().filter(|c| c.operable).count()
    }

    /// Ids of all passable segments.
    pub fn operable_segments(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.conditions
            .iter()
            .enumerate()
            .filter(|(_, c)| c.operable)
            .map(|(i, _)| SegmentId(i as u32))
    }
}

impl TravelCost for NetworkCondition {
    fn travel_time_s(&self, seg: &RoadSegment) -> Option<f64> {
        let c = self.conditions[seg.id.index()];
        c.operable.then(|| seg.free_flow_time_s() / c.speed_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::graph::RoadClass;
    use crate::routing::{FreeFlow, Router};

    fn line() -> (RoadNetwork, Vec<SegmentId>) {
        let mut net = RoadNetwork::new();
        let mut prev = net.add_landmark(GeoPoint::new(35.0, -80.0));
        let mut fwd = Vec::new();
        for i in 1..4 {
            let next = net.add_landmark(GeoPoint::new(35.0 + 0.01 * i as f64, -80.0));
            let (f, _) = net.add_two_way(prev, next, RoadClass::Residential);
            fwd.push(f);
            prev = next;
        }
        (net, fwd)
    }

    #[test]
    fn pristine_matches_free_flow() {
        let (net, _) = line();
        let cond = NetworkCondition::pristine(&net);
        for seg in net.segments() {
            assert_eq!(cond.travel_time_s(seg), FreeFlow.travel_time_s(seg));
        }
        assert_eq!(cond.operable_count(), net.num_segments());
    }

    #[test]
    fn blocked_segment_is_impassable() {
        let (net, fwd) = line();
        let mut cond = NetworkCondition::pristine(&net);
        cond.block(fwd[1]);
        assert!(!cond.is_operable(fwd[1]));
        assert_eq!(cond.operable_count(), net.num_segments() - 1);
        assert!(cond.travel_time_s(net.segment(fwd[1])).is_none());
        // The line has no detour, so routing across the cut fails.
        let router = Router::new(&net);
        let a = net.segment(fwd[0]).from;
        let d = net.segment(fwd[2]).to;
        assert!(router.shortest_path(&cond, a, d).is_none());
        cond.unblock(fwd[1]);
        assert!(router.shortest_path(&cond, a, d).is_some());
    }

    #[test]
    fn speed_factor_slows_travel() {
        let (net, fwd) = line();
        let mut cond = NetworkCondition::pristine(&net);
        let seg = net.segment(fwd[0]);
        let base = cond.travel_time_s(seg).unwrap();
        cond.set_speed_factor(fwd[0], 0.5);
        assert!((cond.travel_time_s(seg).unwrap() - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn zero_speed_factor_rejected() {
        let (net, fwd) = line();
        let mut cond = NetworkCondition::pristine(&net);
        cond.set_speed_factor(fwd[0], 0.0);
    }

    #[test]
    fn generation_tracks_every_mutation() {
        let (net, fwd) = line();
        let mut a = NetworkCondition::pristine(&net);
        let b = NetworkCondition::pristine(&net);
        // Distinct values never share a generation, even when equal.
        assert_eq!(a, b);
        assert_ne!(a.generation(), b.generation());
        // A clone shares contents and generation until either mutates.
        let c = a.clone();
        assert_eq!(c.generation(), a.generation());
        let before = a.generation();
        a.block(fwd[0]);
        assert_ne!(a.generation(), before);
        assert_eq!(c.generation(), before);
        let blocked = a.generation();
        a.unblock(fwd[0]);
        assert_ne!(a.generation(), blocked);
        let unblocked = a.generation();
        a.set_speed_factor(fwd[0], 0.5);
        assert_ne!(a.generation(), unblocked);
        // Equality ignores the tag: a is back to operable but slowed.
        assert_ne!(a, c);
    }

    #[test]
    fn operable_segments_iterates_unblocked() {
        let (net, fwd) = line();
        let mut cond = NetworkCondition::pristine(&net);
        cond.block(fwd[0]);
        let ids: Vec<_> = cond.operable_segments().collect();
        assert_eq!(ids.len(), net.num_segments() - 1);
        assert!(!ids.contains(&fwd[0]));
    }
}
