//! Frozen CSR (compressed sparse row) view of a [`RoadNetwork`] plus
//! epoch-scoped cost snapshots — the data layer of the routing
//! acceleration stack (see `DESIGN.md`, "Routing acceleration").
//!
//! The naive [`crate::routing::Router`] chases `Vec<Vec<SegmentId>>`
//! adjacency and calls a trait-dispatched [`TravelCost`] on every edge
//! relaxation. [`CsrGraph`] freezes the same adjacency into three flat
//! arrays (`offsets`/`heads`/`segs`) built once per network, and
//! [`CostSnapshot`] materializes a [`TravelCost`] into one flat `Vec<f64>`
//! of per-edge travel times, computed once per
//! [`NetworkCondition`](crate::damage::NetworkCondition) generation.
//!
//! # Exact-equivalence contract
//!
//! The CSR Dijkstra must produce **bit-identical** distances and
//! predecessor routes to [`Router`](crate::routing::Router) under the same
//! cost model. This holds by construction:
//!
//! * edge slots of a landmark appear in exactly
//!   [`RoadNetwork::out_segments`] order, so relaxations happen in the
//!   same sequence;
//! * per-edge weights are the same `f64` value the trait object would
//!   return (the snapshot calls the very same [`TravelCost`] impl), with
//!   `f64::INFINITY` standing in for "impassable";
//! * the binary heap reuses [`crate::routing::HeapEntry`], so tie-breaks
//!   between equal-cost frontier nodes resolve identically.
//!
//! Property tests in `crates/roadnet/tests/` compare both paths on random
//! networks under random damage.

use crate::damage::{NetworkCondition, FREE_FLOW_GENERATION};
use crate::graph::{LandmarkId, RoadNetwork, SegmentId};
use crate::routing::{HeapEntry, ShortestPaths, TravelCost};
use std::collections::BinaryHeap;

/// Flat adjacency arrays of a [`RoadNetwork`], frozen at build time.
///
/// For landmark `u`, its out-edges occupy slots
/// `offsets[u] .. offsets[u + 1]`; slot `e` stores the head landmark in
/// `heads[e]` and the originating segment id in `segs[e]`. Slot order
/// within a landmark equals [`RoadNetwork::out_segments`] order — part of
/// the equivalence contract with the naive router.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    heads: Vec<u32>,
    segs: Vec<SegmentId>,
}

impl CsrGraph {
    /// Freezes `net`'s adjacency into CSR form.
    pub fn build(net: &RoadNetwork) -> Self {
        let mut offsets = Vec::with_capacity(net.num_landmarks() + 1);
        let mut heads = Vec::with_capacity(net.num_segments());
        let mut segs = Vec::with_capacity(net.num_segments());
        offsets.push(0);
        for lm in net.landmark_ids() {
            for &sid in net.out_segments(lm) {
                heads.push(net.segment(sid).to.0);
                segs.push(sid);
            }
            offsets.push(segs.len() as u32);
        }
        Self {
            offsets,
            heads,
            segs,
        }
    }

    /// Number of landmarks (graph vertices).
    pub fn num_landmarks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edge slots (= directed segments of the source network).
    pub fn num_edges(&self) -> usize {
        self.segs.len()
    }

    /// Materializes an arbitrary cost model into a snapshot tagged with
    /// `generation`. Callers are responsible for the tag being unique to
    /// the cost contents — use [`CsrGraph::snapshot_condition`] /
    /// [`CsrGraph::snapshot_free_flow`] for the two standard models.
    pub(crate) fn materialize<C: TravelCost>(
        &self,
        net: &RoadNetwork,
        cost: &C,
        generation: u64,
    ) -> CostSnapshot {
        let weights = self
            .segs
            .iter()
            .map(|&sid| {
                cost.travel_time_s(net.segment(sid))
                    .unwrap_or(f64::INFINITY)
            })
            .collect();
        CostSnapshot {
            weights,
            generation,
        }
    }

    /// Snapshot of a damage condition, tagged with its
    /// [`NetworkCondition::generation`].
    pub fn snapshot_condition(&self, net: &RoadNetwork, cond: &NetworkCondition) -> CostSnapshot {
        self.materialize(net, cond, cond.generation())
    }

    /// Snapshot of the static free-flow cost model (generation 0, never
    /// invalidated).
    pub fn snapshot_free_flow(&self, net: &RoadNetwork) -> CostSnapshot {
        self.materialize(net, &crate::routing::FreeFlow, FREE_FLOW_GENERATION)
    }

    /// CSR Dijkstra from `from` under `snap`, with the given stopping
    /// rule. Identical relaxation order, weights, and heap behavior to
    /// [`crate::routing::Router`]'s Dijkstra — see the module docs.
    ///
    /// # Panics
    ///
    /// Panics if `from` (or any target) is out of range, or if the
    /// snapshot's edge count does not match this graph.
    pub(crate) fn dijkstra(
        &self,
        snap: &CostSnapshot,
        from: LandmarkId,
        goal: Goal<'_>,
    ) -> ShortestPaths {
        let n = self.num_landmarks();
        assert!(from.index() < n, "unknown landmark {from}");
        assert_eq!(
            snap.weights.len(),
            self.num_edges(),
            "cost snapshot built for a different graph"
        );
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_seg: Vec<Option<SegmentId>> = vec![None; n];
        let mut settled = vec![false; n];
        // Multi-target bookkeeping: stop once every distinct target is
        // settled instead of exhausting the graph.
        let (mut remaining, is_target) = match goal {
            Goal::Multi(targets) => {
                let mut mark = vec![false; n];
                let mut distinct = 0usize;
                for &t in targets {
                    assert!(t.index() < n, "unknown landmark {t}");
                    if !mark[t.index()] {
                        mark[t.index()] = true;
                        distinct += 1;
                    }
                }
                (distinct, mark)
            }
            _ => (0, Vec::new()),
        };
        dist[from.index()] = 0.0;
        if matches!(goal, Goal::Multi(_)) && remaining == 0 {
            return ShortestPaths::from_parts(from, dist, prev_seg);
        }
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            cost: 0.0,
            node: from.0,
        });
        while let Some(HeapEntry { cost: d, node }) = heap.pop() {
            let u = node as usize;
            if settled[u] {
                continue;
            }
            settled[u] = true;
            match goal {
                Goal::All => {}
                Goal::One(g) => {
                    if g.0 == node {
                        break;
                    }
                }
                Goal::Multi(_) => {
                    if is_target[u] {
                        remaining -= 1;
                        if remaining == 0 {
                            break;
                        }
                    }
                }
            }
            let lo = self.offsets[u] as usize;
            let hi = self.offsets[u + 1] as usize;
            for e in lo..hi {
                let w = snap.weights[e];
                if !w.is_finite() {
                    continue;
                }
                debug_assert!(w >= 0.0, "negative travel time on {}", self.segs[e]);
                let nd = d + w;
                let v = self.heads[e] as usize;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev_seg[v] = Some(self.segs[e]);
                    heap.push(HeapEntry {
                        cost: nd,
                        node: self.heads[e],
                    });
                }
            }
        }
        ShortestPaths::from_parts(from, dist, prev_seg)
    }

    /// Full shortest-path tree from `from` under `snap`.
    pub fn shortest_paths(&self, snap: &CostSnapshot, from: LandmarkId) -> ShortestPaths {
        self.dijkstra(snap, from, Goal::All)
    }
}

/// Stopping rule for the CSR Dijkstra.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Goal<'t> {
    /// Settle the whole reachable graph (full tree).
    All,
    /// Stop once this landmark is settled (point query).
    One(LandmarkId),
    /// Stop once every listed landmark is settled (dispatch fan-in).
    Multi(&'t [LandmarkId]),
}

/// Per-edge travel times materialized from one [`TravelCost`], valid for
/// exactly one cost generation.
///
/// `f64::INFINITY` marks an impassable edge (removed from G̃). The
/// `generation` tag ties the snapshot to the
/// [`NetworkCondition`](crate::damage::NetworkCondition) contents it was
/// built from; any damage mutation draws a fresh generation, so a stale
/// snapshot can never be mistaken for current.
#[derive(Debug, Clone)]
pub struct CostSnapshot {
    weights: Vec<f64>,
    generation: u64,
}

impl CostSnapshot {
    /// The cost generation this snapshot was materialized from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of edge weights (matches [`CsrGraph::num_edges`]).
    pub fn num_edges(&self) -> usize {
        self.weights.len()
    }

    /// Number of passable edges under this snapshot.
    pub fn passable_edges(&self) -> usize {
        self.weights.iter().filter(|w| w.is_finite()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::graph::RoadClass;
    use crate::routing::{FreeFlow, Router};

    /// 4x4 grid of residential streets, 800 m spacing.
    fn grid4() -> (RoadNetwork, Vec<LandmarkId>) {
        let mut net = RoadNetwork::new();
        let origin = GeoPoint::new(35.0, -80.0);
        let mut ids = Vec::new();
        for r in 0..4 {
            for c in 0..4 {
                ids.push(net.add_landmark(origin.offset_m(c as f64 * 800.0, r as f64 * 800.0)));
            }
        }
        for r in 0..4 {
            for c in 0..4 {
                let i = r * 4 + c;
                if c + 1 < 4 {
                    net.add_two_way(ids[i], ids[i + 1], RoadClass::Residential);
                }
                if r + 1 < 4 {
                    net.add_two_way(ids[i], ids[i + 4], RoadClass::Arterial);
                }
            }
        }
        (net, ids)
    }

    #[test]
    fn csr_preserves_adjacency_order() {
        let (net, _) = grid4();
        let csr = CsrGraph::build(&net);
        assert_eq!(csr.num_landmarks(), net.num_landmarks());
        assert_eq!(csr.num_edges(), net.num_segments());
        for lm in net.landmark_ids() {
            let lo = csr.offsets[lm.index()] as usize;
            let hi = csr.offsets[lm.index() + 1] as usize;
            assert_eq!(&csr.segs[lo..hi], net.out_segments(lm));
            for e in lo..hi {
                assert_eq!(csr.heads[e], net.segment(csr.segs[e]).to.0);
            }
        }
    }

    #[test]
    fn full_tree_bit_identical_to_naive() {
        let (net, ids) = grid4();
        let csr = CsrGraph::build(&net);
        let snap = csr.snapshot_free_flow(&net);
        let router = Router::new(&net);
        for &from in &ids {
            let fast = csr.shortest_paths(&snap, from);
            let slow = router.shortest_paths_from(&FreeFlow, from);
            // Bit-identical, not approximately equal.
            assert_eq!(fast.travel_times(), slow.travel_times());
            for &to in &ids {
                assert_eq!(fast.route_to(&net, to), slow.route_to(&net, to));
            }
        }
    }

    #[test]
    fn damaged_snapshot_matches_condition() {
        let (net, ids) = grid4();
        let csr = CsrGraph::build(&net);
        let mut cond = NetworkCondition::pristine(&net);
        cond.block(net.out_segments(ids[5])[0]);
        cond.set_speed_factor(net.out_segments(ids[0])[0], 0.25);
        let snap = csr.snapshot_condition(&net, &cond);
        assert_eq!(snap.generation(), cond.generation());
        assert_eq!(snap.passable_edges(), cond.operable_count());
        let router = Router::new(&net);
        for &from in &ids {
            let fast = csr.shortest_paths(&snap, from);
            let slow = router.shortest_paths_from(&cond, from);
            assert_eq!(fast.travel_times(), slow.travel_times());
        }
    }

    #[test]
    fn multi_target_settles_all_targets_exactly() {
        let (net, ids) = grid4();
        let csr = CsrGraph::build(&net);
        let snap = csr.snapshot_free_flow(&net);
        let full = csr.shortest_paths(&snap, ids[0]);
        let targets = [ids[3], ids[12], ids[3]];
        let partial = csr.dijkstra(&snap, ids[0], Goal::Multi(&targets));
        for &t in &targets {
            assert_eq!(partial.travel_time_s(t), full.travel_time_s(t));
            assert_eq!(partial.route_to(&net, t), full.route_to(&net, t));
        }
    }

    #[test]
    fn point_query_matches_naive_route() {
        let (net, ids) = grid4();
        let csr = CsrGraph::build(&net);
        let snap = csr.snapshot_free_flow(&net);
        let router = Router::new(&net);
        for &to in &ids {
            let fast = csr
                .dijkstra(&snap, ids[0], Goal::One(to))
                .route_to(&net, to);
            let slow = router.shortest_path(&FreeFlow, ids[0], to);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn empty_target_list_short_circuits() {
        let (net, ids) = grid4();
        let csr = CsrGraph::build(&net);
        let snap = csr.snapshot_free_flow(&net);
        let sp = csr.dijkstra(&snap, ids[0], Goal::Multi(&[]));
        assert_eq!(sp.travel_time_s(ids[0]), Some(0.0));
        assert_eq!(sp.travel_time_s(ids[1]), None);
    }
}
