//! Shortest-path routing on the road network.
//!
//! The paper routes rescue teams with "an existing routing algorithm (e.g.,
//! the Dijkstra algorithm)" over the *remaining available* road network G̃.
//! Routing here is therefore parameterized by a [`TravelCost`]: the pristine
//! network uses [`FreeFlow`], while a flood-damaged network supplies a
//! [`crate::damage::NetworkCondition`] that blocks inundated segments and
//! slows wet ones.

use crate::graph::{LandmarkId, RoadNetwork, RoadSegment, SegmentId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Per-segment travel cost model.
///
/// Returning `None` marks the segment as impassable (removed from G̃).
pub trait TravelCost {
    /// Travel time over `seg` in seconds, or `None` if the segment is
    /// impassable.
    fn travel_time_s(&self, seg: &RoadSegment) -> Option<f64>;
}

/// Free-flow travel cost: every segment is passable at its speed limit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FreeFlow;

impl TravelCost for FreeFlow {
    fn travel_time_s(&self, seg: &RoadSegment) -> Option<f64> {
        Some(seg.free_flow_time_s())
    }
}

impl<T: TravelCost + ?Sized> TravelCost for &T {
    fn travel_time_s(&self, seg: &RoadSegment) -> Option<f64> {
        (**self).travel_time_s(seg)
    }
}

/// A shortest driving route between two landmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Road segments in driving order (`Φ_kj` in the paper). Empty when the
    /// origin equals the destination.
    pub segments: Vec<SegmentId>,
    /// Landmarks visited, starting at the origin and ending at the
    /// destination (always at least one element).
    pub landmarks: Vec<LandmarkId>,
    /// Total driving delay in seconds (`t_kj = Σ l_e / v_e`).
    pub travel_time_s: f64,
    /// Total length in meters.
    pub length_m: f64,
}

/// Min-heap entry shared by the naive Dijkstra here and the CSR variant in
/// [`crate::csr`] — identical ordering (cost, then node id) is part of the
/// exact-equivalence contract between the two implementations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct HeapEntry {
    pub(crate) cost: f64,
    pub(crate) node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; costs are finite and never NaN.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("travel costs are never NaN")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a single-source shortest-path run.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: LandmarkId,
    dist: Vec<f64>,
    prev_seg: Vec<Option<SegmentId>>,
}

impl ShortestPaths {
    /// Assembles a result from raw Dijkstra output (the CSR routing path in
    /// [`crate::csr`] produces the same representation).
    pub(crate) fn from_parts(
        source: LandmarkId,
        dist: Vec<f64>,
        prev_seg: Vec<Option<SegmentId>>,
    ) -> Self {
        Self {
            source,
            dist,
            prev_seg,
        }
    }

    /// The source landmark of this run.
    pub fn source(&self) -> LandmarkId {
        self.source
    }

    /// Travel time in seconds from the source to `to`, or `None` when
    /// unreachable.
    pub fn travel_time_s(&self, to: LandmarkId) -> Option<f64> {
        let d = self.dist[to.index()];
        d.is_finite().then_some(d)
    }

    /// All travel times, `f64::INFINITY` marking unreachable landmarks.
    pub fn travel_times(&self) -> &[f64] {
        &self.dist
    }

    /// Reconstructs the route from the source to `to`, or `None` when
    /// unreachable.
    ///
    /// Every call walks the predecessor chain once — O(route length) — to
    /// assemble the segment list, the landmark list, and `length_m` in a
    /// single pass; there is no cheaper way to produce the segments, and
    /// `length_m` rides along for free. Callers that only need the travel
    /// time must use [`ShortestPaths::travel_time_s`] (O(1)) instead of
    /// reconstructing a route.
    pub fn route_to(&self, net: &RoadNetwork, to: LandmarkId) -> Option<Route> {
        if !self.dist[to.index()].is_finite() {
            return None;
        }
        let mut segments = Vec::new();
        let mut landmarks = vec![to];
        let mut length_m = 0.0;
        let mut cur = to;
        while let Some(sid) = self.prev_seg[cur.index()] {
            let seg = net.segment(sid);
            segments.push(sid);
            length_m += seg.length_m;
            cur = seg.from;
            landmarks.push(cur);
        }
        segments.reverse();
        landmarks.reverse();
        debug_assert_eq!(landmarks[0], self.source);
        Some(Route {
            segments,
            landmarks,
            travel_time_s: self.dist[to.index()],
            length_m,
        })
    }
}

/// Dijkstra router over a [`RoadNetwork`].
///
/// # Examples
///
/// ```
/// use mobirescue_roadnet::geo::GeoPoint;
/// use mobirescue_roadnet::graph::{RoadClass, RoadNetwork};
/// use mobirescue_roadnet::routing::{FreeFlow, Router};
///
/// let mut net = RoadNetwork::new();
/// let a = net.add_landmark(GeoPoint::new(35.00, -80.00));
/// let b = net.add_landmark(GeoPoint::new(35.01, -80.00));
/// let c = net.add_landmark(GeoPoint::new(35.02, -80.00));
/// net.add_two_way(a, b, RoadClass::Residential);
/// net.add_two_way(b, c, RoadClass::Residential);
///
/// let route = Router::new(&net).shortest_path(&FreeFlow, a, c).unwrap();
/// assert_eq!(route.landmarks, vec![a, b, c]);
/// assert!(route.travel_time_s > 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Router<'a> {
    net: &'a RoadNetwork,
}

impl<'a> Router<'a> {
    /// Creates a router over `net`.
    pub fn new(net: &'a RoadNetwork) -> Self {
        Self { net }
    }

    /// The underlying network.
    pub fn network(&self) -> &'a RoadNetwork {
        self.net
    }

    /// Single-source Dijkstra under `cost`, optionally stopping early once
    /// `goal` is settled.
    fn dijkstra<C: TravelCost>(
        &self,
        cost: &C,
        from: LandmarkId,
        goal: Option<LandmarkId>,
    ) -> ShortestPaths {
        let n = self.net.num_landmarks();
        assert!(from.index() < n, "unknown landmark {from}");
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_seg: Vec<Option<SegmentId>> = vec![None; n];
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::new();
        dist[from.index()] = 0.0;
        heap.push(HeapEntry {
            cost: 0.0,
            node: from.0,
        });
        while let Some(HeapEntry { cost: d, node }) = heap.pop() {
            let u = LandmarkId(node);
            if settled[u.index()] {
                continue;
            }
            settled[u.index()] = true;
            if goal == Some(u) {
                break;
            }
            for &sid in self.net.out_segments(u) {
                let seg = self.net.segment(sid);
                let Some(w) = cost.travel_time_s(seg) else {
                    continue;
                };
                debug_assert!(w >= 0.0, "negative travel time on {sid}");
                let nd = d + w;
                if nd < dist[seg.to.index()] {
                    dist[seg.to.index()] = nd;
                    prev_seg[seg.to.index()] = Some(sid);
                    heap.push(HeapEntry {
                        cost: nd,
                        node: seg.to.0,
                    });
                }
            }
        }
        ShortestPaths {
            source: from,
            dist,
            prev_seg,
        }
    }

    /// Shortest-path tree from `from` to every landmark.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn shortest_paths_from<C: TravelCost>(&self, cost: &C, from: LandmarkId) -> ShortestPaths {
        self.dijkstra(cost, from, None)
    }

    /// Shortest route from `from` to `to`, or `None` when unreachable under
    /// `cost`.
    ///
    /// # Panics
    ///
    /// Panics if either landmark is out of range.
    pub fn shortest_path<C: TravelCost>(
        &self,
        cost: &C,
        from: LandmarkId,
        to: LandmarkId,
    ) -> Option<Route> {
        assert!(
            to.index() < self.net.num_landmarks(),
            "unknown landmark {to}"
        );
        self.dijkstra(cost, from, Some(to)).route_to(self.net, to)
    }

    /// Among `targets`, the one with the least travel time from `from`.
    /// Returns `(index into targets, travel time)`, or `None` when no target
    /// is reachable (or `targets` is empty).
    pub fn nearest_target<C: TravelCost>(
        &self,
        cost: &C,
        from: LandmarkId,
        targets: &[LandmarkId],
    ) -> Option<(usize, f64)> {
        let sp = self.shortest_paths_from(cost, from);
        targets
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| sp.travel_time_s(t).map(|d| (i, d)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("travel times are never NaN"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::graph::RoadClass;

    /// 3x3 grid of residential streets, 1 km spacing.
    fn grid3() -> (RoadNetwork, Vec<LandmarkId>) {
        let mut net = RoadNetwork::new();
        let origin = GeoPoint::new(35.0, -80.0);
        let mut ids = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                ids.push(net.add_landmark(origin.offset_m(c as f64 * 1000.0, r as f64 * 1000.0)));
            }
        }
        for r in 0..3 {
            for c in 0..3 {
                let i = r * 3 + c;
                if c + 1 < 3 {
                    net.add_two_way(ids[i], ids[i + 1], RoadClass::Residential);
                }
                if r + 1 < 3 {
                    net.add_two_way(ids[i], ids[i + 3], RoadClass::Residential);
                }
            }
        }
        (net, ids)
    }

    #[test]
    fn manhattan_route_on_grid() {
        let (net, ids) = grid3();
        let route = Router::new(&net)
            .shortest_path(&FreeFlow, ids[0], ids[8])
            .unwrap();
        assert_eq!(route.segments.len(), 4, "two east + two north hops");
        assert!(
            (route.length_m - 4000.0).abs() < 5.0,
            "got {}",
            route.length_m
        );
        let expect_t = route.length_m / RoadClass::Residential.speed_limit_mps();
        assert!((route.travel_time_s - expect_t).abs() < 1e-6);
    }

    #[test]
    fn route_to_self_is_empty() {
        let (net, ids) = grid3();
        let route = Router::new(&net)
            .shortest_path(&FreeFlow, ids[4], ids[4])
            .unwrap();
        assert!(route.segments.is_empty());
        assert_eq!(route.landmarks, vec![ids[4]]);
        assert_eq!(route.travel_time_s, 0.0);
    }

    #[test]
    fn route_segments_are_contiguous() {
        let (net, ids) = grid3();
        let route = Router::new(&net)
            .shortest_path(&FreeFlow, ids[2], ids[6])
            .unwrap();
        let mut cur = ids[2];
        for &sid in &route.segments {
            let seg = net.segment(sid);
            assert_eq!(seg.from, cur);
            cur = seg.to;
        }
        assert_eq!(cur, ids[6]);
    }

    #[test]
    fn blocked_segments_force_detour() {
        struct BlockMiddleRow;
        impl TravelCost for BlockMiddleRow {
            fn travel_time_s(&self, seg: &RoadSegment) -> Option<f64> {
                // Block every segment touching the center landmark (index 4).
                if seg.from.0 == 4 || seg.to.0 == 4 {
                    None
                } else {
                    Some(seg.free_flow_time_s())
                }
            }
        }
        let (net, ids) = grid3();
        let router = Router::new(&net);
        let direct = router.shortest_path(&FreeFlow, ids[3], ids[5]).unwrap();
        let detour = router
            .shortest_path(&BlockMiddleRow, ids[3], ids[5])
            .unwrap();
        assert!(detour.travel_time_s > direct.travel_time_s);
        assert!(detour.landmarks.iter().all(|&lm| lm != ids[4]));
    }

    #[test]
    fn unreachable_returns_none() {
        let mut net = RoadNetwork::new();
        let a = net.add_landmark(GeoPoint::new(35.0, -80.0));
        let b = net.add_landmark(GeoPoint::new(35.1, -80.0));
        // One-way from a to b only.
        net.add_segment(a, b, RoadClass::Residential);
        let router = Router::new(&net);
        assert!(router.shortest_path(&FreeFlow, a, b).is_some());
        assert!(router.shortest_path(&FreeFlow, b, a).is_none());
    }

    #[test]
    fn nearest_target_picks_closest_reachable() {
        let (net, ids) = grid3();
        let router = Router::new(&net);
        let targets = [ids[8], ids[1]];
        let (idx, t) = router.nearest_target(&FreeFlow, ids[0], &targets).unwrap();
        assert_eq!(idx, 1);
        assert!((t - 1000.0 / RoadClass::Residential.speed_limit_mps()).abs() < 1e-6);
        assert!(router.nearest_target(&FreeFlow, ids[0], &[]).is_none());
    }

    #[test]
    fn shortest_paths_satisfy_triangle_inequality() {
        let (net, ids) = grid3();
        let router = Router::new(&net);
        let from_0 = router.shortest_paths_from(&FreeFlow, ids[0]);
        for &mid in &ids {
            let from_mid = router.shortest_paths_from(&FreeFlow, mid);
            for &to in &ids {
                let direct = from_0.travel_time_s(to).unwrap();
                let via = from_0.travel_time_s(mid).unwrap() + from_mid.travel_time_s(to).unwrap();
                assert!(direct <= via + 1e-9, "d({to}) {direct} > via {mid} {via}");
            }
        }
    }

    #[test]
    fn point_query_early_exit_stops_at_goal() {
        use std::cell::Cell;
        // Counts edge-cost evaluations: one per relaxation attempt, so a
        // run that settles fewer nodes evaluates strictly fewer edges.
        struct Counting<'a>(&'a Cell<usize>);
        impl TravelCost for Counting<'_> {
            fn travel_time_s(&self, seg: &RoadSegment) -> Option<f64> {
                self.0.set(self.0.get() + 1);
                Some(seg.free_flow_time_s())
            }
        }
        let (net, ids) = grid3();
        let router = Router::new(&net);
        let calls = Cell::new(0);
        router.shortest_paths_from(&Counting(&calls), ids[0]);
        let full = calls.get();
        assert_eq!(full, net.num_segments(), "full tree relaxes every edge");
        calls.set(0);
        // Goal adjacent to the source: the query must stop after settling
        // the goal, far short of exhausting the graph.
        router.shortest_path(&Counting(&calls), ids[0], ids[1]);
        let early = calls.get();
        assert!(
            early < full / 2,
            "early exit evaluated {early} of {full} edges"
        );
    }

    #[test]
    fn early_exit_matches_full_run() {
        let (net, ids) = grid3();
        let router = Router::new(&net);
        let full = router.shortest_paths_from(&FreeFlow, ids[0]);
        for &to in &ids {
            let r = router.shortest_path(&FreeFlow, ids[0], to).unwrap();
            assert!((r.travel_time_s - full.travel_time_s(to).unwrap()).abs() < 1e-9);
        }
    }
}
