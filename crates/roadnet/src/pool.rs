//! Std-only scoped thread pool for fanning independent routing work
//! across cores.
//!
//! The workspace vendors its few dependencies as std-only shims, so this
//! follows the same spirit: no rayon, just [`std::thread::scope`] over a
//! channel work queue. [`parallel_map`] is shaped for the per-epoch
//! dispatch pattern — a batch of independent single-source shortest-path
//! runs (one per rescue team) whose results must come back **in input
//! order** so downstream dispatch stays deterministic regardless of
//! thread count.

use std::sync::mpsc;
use std::sync::Mutex;

/// Number of worker threads worth spawning on this machine.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, using up to `threads` scoped workers, and
/// returns the results in input order.
///
/// Every index is queued up front and the sender dropped before workers
/// start, so `recv` under the queue lock never blocks: it either pops the
/// next index or observes the closed channel and exits. Results land in
/// their input slot, so the output is identical to the sequential
/// `items.iter().map(..)` no matter how the items interleave across
/// threads. `threads <= 1` (or a batch of one) runs inline with zero
/// spawn overhead.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let (tx, rx) = mpsc::channel();
    for i in 0..items.len() {
        tx.send(i).expect("receiver is alive");
    }
    drop(tx);
    let queue = Mutex::new(rx);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock poisoned").recv();
                let Ok(i) = next else { break };
                let r = f(i, &items[i]);
                *slots[i].lock().expect("slot lock poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("every queued index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * x
        });
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        for threads in [0, 1, 2, 3, 7, 64] {
            let out = parallel_map(threads, &items, |_, &x| x.wrapping_mul(2654435761));
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..256).collect();
        let out = parallel_map(4, &items, |_, &x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(parallel_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
